//! Machine-readable audit reports.
//!
//! Every verifier pass produces one [`AuditReport`]: per-check pass/fail
//! ([`CheckOutcome`]), the individual [`Violation`]s with their encoding
//! coordinates (level, slab offset, word), and summary statistics about
//! the structure examined. Reports serialize to JSON (the CI `audit` job
//! uploads them as artifacts) and carry enough context that a violation
//! can be located in a hex dump of the slabs without re-running anything.

use serde::Serialize;

/// Cap on individually recorded violations per report; beyond it only the
/// per-check counters keep growing ([`AuditReport::truncated_violations`]
/// says how many were dropped). A corrupt slab can trip millions of words
/// at once — the first few dozen locate the damage, the rest is noise.
pub const MAX_RECORDED_VIOLATIONS: usize = 64;

/// The structural checks the verifier can run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize)]
pub enum CheckKind {
    /// Every word/entry tag decodes to a valid variant (leaf/internal
    /// discriminant, NHI codes inside the `Option<NextHop>` code range).
    TagDecode,
    /// Child base + fanout lands in-bounds in the *next* level's slab,
    /// and per-level fanout accounting balances.
    ChildBounds,
    /// Level slabs partition the word array: offsets start at zero, end
    /// at the array length, and descend strictly level by level (which
    /// together with [`CheckKind::ChildBounds`] makes traversal acyclic).
    LevelOrder,
    /// Leaf-pushing completeness: every root-to-leaf path terminates at a
    /// leaf word within the 32-bit address depth.
    LeafCompleteness,
    /// Next-hop vectors: slab width is an exact multiple of the VNID
    /// arity, every referenced vector exists, and the arity covers every
    /// registered virtual network.
    NhiVector,
    /// Jump-table prefix-expansion consistency against the source table
    /// (or source stride trie) the jump trie was built from.
    JumpConsistency,
    /// Lookup parity against an independently built oracle structure.
    OracleParity,
    /// Structure-specific internal invariants (arena accounting,
    /// full-binary identity, presence masks, ...).
    Invariants,
    /// Dead-slab / unreachable-node accounting. Informational: dead words
    /// waste memory but cannot corrupt a lookup.
    Reachability,
}

impl CheckKind {
    /// Stable lowercase label used in JSON and log lines.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            CheckKind::TagDecode => "tag_decode",
            CheckKind::ChildBounds => "child_bounds",
            CheckKind::LevelOrder => "level_order",
            CheckKind::LeafCompleteness => "leaf_completeness",
            CheckKind::NhiVector => "nhi_vector",
            CheckKind::JumpConsistency => "jump_consistency",
            CheckKind::OracleParity => "oracle_parity",
            CheckKind::Invariants => "invariants",
            CheckKind::Reachability => "reachability",
        }
    }
}

/// Whether a violation makes the structure unsafe to publish.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum Severity {
    /// Accounting finding (dead slabs, stale vectors): reported, never
    /// fails the audit.
    Info,
    /// Structural corruption: the audit fails and the table must not be
    /// published.
    Error,
}

/// Coordinates of a violation inside the encoding.
#[derive(Debug, Clone, Copy, Default, Serialize)]
pub struct Coordinates {
    /// Pipeline level (slab index) the offending word lives in.
    pub level: Option<u32>,
    /// Absolute offset of the word in its slab array.
    pub offset: Option<u64>,
    /// The raw word value, when one word is at fault.
    pub word: Option<u64>,
}

impl Coordinates {
    /// No specific location (aggregate violations).
    #[must_use]
    pub fn none() -> Self {
        Self::default()
    }

    /// A specific word in a specific level slab.
    #[must_use]
    pub fn word(level: usize, offset: usize, word: u64) -> Self {
        Self {
            level: u32::try_from(level).ok(),
            offset: Some(offset as u64),
            word: Some(word),
        }
    }

    /// A whole level, no single word at fault.
    #[must_use]
    pub fn level(level: usize) -> Self {
        Self {
            level: u32::try_from(level).ok(),
            offset: None,
            word: None,
        }
    }
}

/// One rule violation found by a check.
#[derive(Debug, Clone, Serialize)]
pub struct Violation {
    /// The check that found it.
    pub check: CheckKind,
    /// Error (fails the audit) or Info (accounting only).
    pub severity: Severity,
    /// Where in the encoding it sits.
    pub coordinates: Coordinates,
    /// Human-readable description.
    pub message: String,
}

/// Pass/fail summary of one check.
#[derive(Debug, Clone, Serialize)]
pub struct CheckOutcome {
    /// Which check.
    pub check: CheckKind,
    /// True when the check ran and found zero `Error` violations.
    pub passed: bool,
    /// Error-severity violations counted (all, not just recorded ones).
    pub errors: u64,
    /// Info-severity findings counted.
    pub infos: u64,
}

/// Summary statistics about the audited structure.
#[derive(Debug, Clone, Copy, Default, Serialize)]
pub struct AuditStats {
    /// Total node words / entries / arena nodes examined.
    pub nodes: u64,
    /// Level (pipeline stage) count.
    pub levels: u64,
    /// Leaf count (NHI vectors stored).
    pub leaves: u64,
    /// Total NHI slab entries (leaves × arity).
    pub nhi_entries: u64,
    /// NHI vector width (virtual networks served).
    pub arity: u64,
    /// Words/entries unreachable from the root (dead slabs).
    pub dead_words: u64,
    /// NHI vectors no leaf references (stale entries).
    pub stale_nhi_vectors: u64,
}

/// The result of one verifier pass over one structure.
#[derive(Debug, Clone, Serialize)]
pub struct AuditReport {
    /// What was audited (e.g. `"flat"`, `"jump(k=8)"`).
    pub structure: String,
    /// Summary statistics.
    pub stats: AuditStats,
    /// Per-check pass/fail, in the order the checks ran.
    pub checks: Vec<CheckOutcome>,
    /// Recorded violations (capped at [`MAX_RECORDED_VIOLATIONS`]).
    pub violations: Vec<Violation>,
    /// Violations counted but not individually recorded.
    pub truncated_violations: u64,
}

impl AuditReport {
    /// True when no check found an `Error`-severity violation.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.checks.iter().all(|c| c.passed)
    }

    /// Total error-severity violations across all checks.
    #[must_use]
    pub fn error_count(&self) -> u64 {
        self.checks.iter().map(|c| c.errors).sum()
    }

    /// One-line human summary ("clean" or the failing checks).
    #[must_use]
    pub fn summary(&self) -> String {
        if self.is_clean() {
            format!("{}: clean ({} nodes)", self.structure, self.stats.nodes)
        } else {
            let failing: Vec<String> = self
                .checks
                .iter()
                .filter(|c| !c.passed)
                .map(|c| format!("{}×{}", c.check.label(), c.errors))
                .collect();
            format!("{}: {} violations [{}]", self.structure, self.error_count(), failing.join(", "))
        }
    }
}

/// Incremental builder the verifier records findings into.
#[derive(Debug)]
pub struct Audit {
    structure: String,
    checks: Vec<CheckOutcome>,
    violations: Vec<Violation>,
    truncated: u64,
}

impl Audit {
    /// Starts an audit of the named structure.
    #[must_use]
    pub fn new(structure: impl Into<String>) -> Self {
        Self {
            structure: structure.into(),
            checks: Vec::new(),
            violations: Vec::new(),
            truncated: 0,
        }
    }

    /// Registers a check as having run (passing until a violation lands).
    pub fn declare(&mut self, check: CheckKind) {
        if !self.checks.iter().any(|c| c.check == check) {
            self.checks.push(CheckOutcome {
                check,
                passed: true,
                errors: 0,
                infos: 0,
            });
        }
    }

    fn outcome(&mut self, check: CheckKind) -> &mut CheckOutcome {
        self.declare(check);
        self.checks
            .iter_mut()
            .find(|c| c.check == check)
            .expect("declared just above")
    }

    fn record(
        &mut self,
        check: CheckKind,
        severity: Severity,
        coordinates: Coordinates,
        message: String,
    ) {
        let outcome = self.outcome(check);
        match severity {
            Severity::Error => {
                outcome.errors += 1;
                outcome.passed = false;
            }
            Severity::Info => outcome.infos += 1,
        }
        if self.violations.len() < MAX_RECORDED_VIOLATIONS {
            self.violations.push(Violation {
                check,
                severity,
                coordinates,
                message,
            });
        } else {
            self.truncated += 1;
        }
    }

    /// Records a structural corruption (fails the audit).
    pub fn error(&mut self, check: CheckKind, coordinates: Coordinates, message: impl Into<String>) {
        self.record(check, Severity::Error, coordinates, message.into());
    }

    /// Records an accounting finding (report only).
    pub fn info(&mut self, check: CheckKind, coordinates: Coordinates, message: impl Into<String>) {
        self.record(check, Severity::Info, coordinates, message.into());
    }

    /// Seals the audit into its report.
    #[must_use]
    pub fn finish(self, stats: AuditStats) -> AuditReport {
        AuditReport {
            structure: self.structure,
            stats,
            checks: self.checks,
            violations: self.violations,
            truncated_violations: self.truncated,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_audit_reports_clean() {
        let mut audit = Audit::new("flat");
        audit.declare(CheckKind::TagDecode);
        audit.declare(CheckKind::LevelOrder);
        let report = audit.finish(AuditStats::default());
        assert!(report.is_clean());
        assert_eq!(report.error_count(), 0);
        assert!(report.summary().contains("clean"));
    }

    #[test]
    fn errors_fail_only_their_check() {
        let mut audit = Audit::new("jump");
        audit.declare(CheckKind::LevelOrder);
        audit.error(
            CheckKind::ChildBounds,
            Coordinates::word(3, 17, 0xDEAD),
            "child base out of slab",
        );
        audit.info(CheckKind::Reachability, Coordinates::none(), "2 dead words");
        let report = audit.finish(AuditStats::default());
        assert!(!report.is_clean());
        assert_eq!(report.error_count(), 1);
        let bounds = report
            .checks
            .iter()
            .find(|c| c.check == CheckKind::ChildBounds)
            .unwrap();
        assert!(!bounds.passed);
        let reach = report
            .checks
            .iter()
            .find(|c| c.check == CheckKind::Reachability)
            .unwrap();
        assert!(reach.passed, "info findings never fail a check");
        assert!(report.summary().contains("child_bounds"));
    }

    #[test]
    fn violations_are_capped_not_lost() {
        let mut audit = Audit::new("flat");
        for i in 0..(MAX_RECORDED_VIOLATIONS + 10) {
            audit.error(
                CheckKind::TagDecode,
                Coordinates::word(0, i, 0),
                "bad word",
            );
        }
        let report = audit.finish(AuditStats::default());
        assert_eq!(report.violations.len(), MAX_RECORDED_VIOLATIONS);
        assert_eq!(report.truncated_violations, 10);
        assert_eq!(report.error_count(), (MAX_RECORDED_VIOLATIONS + 10) as u64);
    }

    #[test]
    fn report_serializes_to_json() {
        let mut audit = Audit::new("flat_stride");
        audit.error(
            CheckKind::LeafCompleteness,
            Coordinates::level(4),
            "internal word in deepest level",
        );
        let report = audit.finish(AuditStats {
            nodes: 42,
            ..AuditStats::default()
        });
        let json = serde_json::to_string(&report).unwrap();
        assert!(json.contains("LeafCompleteness"));
        assert!(json.contains("flat_stride"));
        assert!(json.contains("42"));
    }
}

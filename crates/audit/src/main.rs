//! `vr-audit` — command-line front end for the structural verifier and
//! the workspace lints.
//!
//! ```text
//! vr-audit tables   [--prefixes N] [--seed S] [--k K] [--out PATH] [--pretty]
//! vr-audit artifact <trie.json> [--structure jump|flat|flat-stride] [--out PATH] [--pretty]
//! vr-audit lint     [--root PATH] [--allow PATH] [--out PATH] [--pretty] [--format json|text]
//! ```
//!
//! `tables` generates a synthetic routing table (and a K-table family for
//! the virtualization encodings), builds every lookup structure through
//! every `from_*` constructor the workspace has, audits each one, and
//! emits the [`AuditReport`]s as a JSON array — the CI `audit` job runs
//! this at paper scale and uploads the output. `artifact` audits a
//! serialized trie from disk. `lint` runs the source rules over the
//! workspace tree. Exit status: 0 clean, 1 violations found, 2 usage or
//! I/O error.

use std::process::ExitCode;

use vr_audit::{
    audit_braided, audit_flat, audit_flat_stride, audit_flat_stride_with_table,
    audit_flat_with_table, audit_jump, audit_jump_against_stride, audit_jump_with_table,
    audit_leaf_pushed, audit_merged, audit_merged_leaf_pushed, audit_unibit, lint_workspace,
    AuditReport,
};
use vr_net::synth::{ClusterSpec, FamilySpec, TableSpec, PAPER_TABLE_PREFIXES};
use vr_trie::{
    BraidedTrie, FlatStrideTrie, FlatTrie, JumpTrie, LeafPushedTrie, MergedTrie, StrideTrie,
    UnibitTrie,
};

const USAGE: &str = "vr-audit: structural invariant verifier for lookup-table encodings

Usage:
  vr-audit tables   [--prefixes N] [--seed S] [--k K] [--out PATH] [--pretty]
  vr-audit artifact <trie.json> [--structure jump|flat|flat-stride] [--out PATH] [--pretty]
  vr-audit lint     [--root PATH] [--allow PATH] [--out PATH] [--pretty] [--format json|text]

Exit status: 0 clean, 1 violations found, 2 usage or I/O error.";

/// Stride schedules exercised by `tables` (each must sum to 32).
const STRIDE_SCHEDULES: [&[u8]; 2] = [&[8, 8, 8, 8], &[4, 4, 4, 4, 4, 4, 4, 4]];

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("tables") => cmd_tables(&args[1..]),
        Some("artifact") => cmd_artifact(&args[1..]),
        Some("lint") => cmd_lint(&args[1..]),
        Some("--help" | "-h" | "help") => {
            println!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        _ => Err(USAGE.to_string()),
    };
    match result {
        Ok(clean) => {
            if clean {
                ExitCode::SUCCESS
            } else {
                ExitCode::from(1)
            }
        }
        Err(msg) => {
            eprintln!("{msg}");
            ExitCode::from(2)
        }
    }
}

/// Minimal flag cursor: `--name value` pairs plus boolean switches.
struct Flags<'a> {
    args: &'a [String],
    i: usize,
}

impl<'a> Flags<'a> {
    fn new(args: &'a [String]) -> Self {
        Self { args, i: 0 }
    }

    fn next(&mut self) -> Option<&'a str> {
        let arg = self.args.get(self.i)?;
        self.i += 1;
        Some(arg.as_str())
    }

    fn value(&mut self, flag: &str) -> Result<&'a str, String> {
        let v = self.args.get(self.i).ok_or(format!("{flag} needs a value"))?;
        self.i += 1;
        Ok(v.as_str())
    }
}

fn parse_num<T: std::str::FromStr>(flag: &str, v: &str) -> Result<T, String> {
    v.parse().map_err(|_| format!("{flag}: not a number: {v}"))
}

/// Serializes reports, writes them to `--out` or stdout, and prints one
/// human summary line per report on stderr.
fn emit(reports: &[AuditReport], out: Option<&str>, pretty: bool) -> Result<bool, String> {
    for report in reports {
        eprintln!("{}", report.summary());
    }
    let json = if pretty {
        serde_json::to_string_pretty(reports)
    } else {
        serde_json::to_string(reports)
    }
    .map_err(|e| format!("serializing reports: {e}"))?;
    match out {
        Some(path) => std::fs::write(path, json.as_bytes())
            .map_err(|e| format!("writing {path}: {e}"))?,
        None => println!("{json}"),
    }
    Ok(reports.iter().all(AuditReport::is_clean))
}

fn cmd_tables(args: &[String]) -> Result<bool, String> {
    let mut prefixes = PAPER_TABLE_PREFIXES;
    let mut seed = 7u64;
    let mut k = 8usize;
    let mut out: Option<String> = None;
    let mut pretty = false;
    let mut flags = Flags::new(args);
    while let Some(flag) = flags.next() {
        match flag {
            "--prefixes" => prefixes = parse_num(flag, flags.value(flag)?)?,
            "--seed" => seed = parse_num(flag, flags.value(flag)?)?,
            "--k" => k = parse_num(flag, flags.value(flag)?)?,
            "--out" => out = Some(flags.value(flag)?.to_string()),
            "--pretty" => pretty = true,
            other => return Err(format!("unknown flag {other}\n\n{USAGE}")),
        }
    }
    if prefixes == 0 || k == 0 || k > 64 {
        return Err("--prefixes must be positive and --k in 1..=64".to_string());
    }

    let mut spec = TableSpec::paper_worst_case(seed);
    spec.prefixes = prefixes;
    spec.clustering = Some(ClusterSpec::edge_default(prefixes));
    let table = spec.generate().map_err(|e| format!("generating table: {e}"))?;
    eprintln!(
        "auditing every encoding of a {}-prefix table (seed {seed}) and a K={k} family",
        table.len()
    );

    let mut reports = Vec::new();

    // Single-table pipeline: every constructor path for every encoding.
    let unibit = UnibitTrie::from_table(&table);
    reports.push(audit_unibit(&unibit));
    let leaf_pushed = LeafPushedTrie::from_unibit(&unibit);
    reports.push(audit_leaf_pushed(&leaf_pushed));
    reports.push(audit_flat_with_table(&FlatTrie::from_unibit(&unibit), &table));
    reports.push(audit_flat_with_table(
        &FlatTrie::from_leaf_pushed(&leaf_pushed),
        &table,
    ));
    reports.push(audit_jump_with_table(&JumpTrie::from_table(&table), &table));
    reports.push(audit_jump_with_table(&JumpTrie::from_unibit(&unibit), &table));
    reports.push(audit_jump_with_table(
        &JumpTrie::from_leaf_pushed(&leaf_pushed),
        &table,
    ));
    for strides in STRIDE_SCHEDULES {
        let stride = StrideTrie::from_table(&table, strides)
            .map_err(|e| format!("stride trie {strides:?}: {e}"))?;
        reports.push(audit_flat_stride_with_table(
            &FlatStrideTrie::from_stride(&stride),
            &table,
        ));
        reports.push(audit_jump_against_stride(
            &JumpTrie::from_stride(&stride),
            &stride,
            &table,
        ));
    }

    // K-table family: the virtualization (merged / braided) encodings.
    let mut family = FamilySpec::paper_worst_case(k, 0.5, seed ^ 0x5EED);
    family.prefixes_per_table = (prefixes / k).max(64);
    let tables = family.generate().map_err(|e| format!("generating family: {e}"))?;
    let merged = MergedTrie::from_tables(&tables).map_err(|e| format!("merging: {e}"))?;
    reports.push(audit_merged(&merged));
    let mlp = merged.leaf_pushed();
    reports.push(audit_merged_leaf_pushed(&mlp, &tables));
    reports.push(audit_flat(&FlatTrie::from_merged(&mlp)));
    reports.push(audit_jump(&JumpTrie::from_merged(&mlp)));
    let braided = BraidedTrie::from_tables(&tables).map_err(|e| format!("braiding: {e}"))?;
    reports.push(audit_braided(&braided, &tables));

    emit(&reports, out.as_deref(), pretty)
}

fn cmd_artifact(args: &[String]) -> Result<bool, String> {
    let mut path: Option<&str> = None;
    let mut structure = "jump";
    let mut out: Option<String> = None;
    let mut pretty = false;
    let mut flags = Flags::new(args);
    while let Some(flag) = flags.next() {
        match flag {
            "--structure" => structure = flags.value(flag)?,
            "--out" => out = Some(flags.value(flag)?.to_string()),
            "--pretty" => pretty = true,
            other if !other.starts_with("--") && path.is_none() => path = Some(other),
            other => return Err(format!("unknown flag {other}\n\n{USAGE}")),
        }
    }
    let path = path.ok_or(format!("artifact needs a file path\n\n{USAGE}"))?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    let report = match structure {
        "jump" => audit_jump(
            &serde_json::from_str::<JumpTrie>(&text)
                .map_err(|e| format!("{path}: not a serialized JumpTrie: {e}"))?,
        ),
        "flat" => audit_flat(
            &serde_json::from_str::<FlatTrie>(&text)
                .map_err(|e| format!("{path}: not a serialized FlatTrie: {e}"))?,
        ),
        "flat-stride" => audit_flat_stride(
            &serde_json::from_str::<FlatStrideTrie>(&text)
                .map_err(|e| format!("{path}: not a serialized FlatStrideTrie: {e}"))?,
        ),
        other => return Err(format!("unknown --structure {other} (jump|flat|flat-stride)")),
    };
    emit(&[report], out.as_deref(), pretty)
}

fn cmd_lint(args: &[String]) -> Result<bool, String> {
    let mut root = ".".to_string();
    let mut allow_path: Option<String> = None;
    let mut out: Option<String> = None;
    let mut pretty = false;
    let mut format = "json".to_string();
    let mut flags = Flags::new(args);
    while let Some(flag) = flags.next() {
        match flag {
            "--root" => root = flags.value(flag)?.to_string(),
            "--allow" => allow_path = Some(flags.value(flag)?.to_string()),
            "--out" => out = Some(flags.value(flag)?.to_string()),
            "--pretty" => pretty = true,
            "--format" => format = flags.value(flag)?.to_string(),
            other => return Err(format!("unknown flag {other}\n\n{USAGE}")),
        }
    }
    if format != "json" && format != "text" {
        return Err(format!("unknown --format {format} (json|text)"));
    }
    let default_allow = format!("{root}/crates/audit/lint.allow");
    let allow_path = allow_path.unwrap_or(default_allow);
    let allowlist = match std::fs::read_to_string(&allow_path) {
        Ok(text) => text,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => String::new(),
        Err(e) => return Err(format!("reading {allow_path}: {e}")),
    };
    // Stale entries report against the allowlist's workspace-relative
    // path so the finding is clickable from the repo root.
    let allow_name = allow_path
        .strip_prefix(&format!("{root}/"))
        .unwrap_or(&allow_path);
    let report = lint_workspace(std::path::Path::new(&root), &allowlist, allow_name)
        .map_err(|e| format!("linting {root}: {e}"))?;
    // Human rendering always goes to stderr (stale-allow findings
    // included — they are findings, not footnotes).
    for finding in &report.findings {
        eprintln!("{}", finding.render());
    }
    eprintln!(
        "lint: {} files scanned, {} findings ({} stale allows)",
        report.files_scanned,
        report.findings.len(),
        report.unused_allows.len()
    );
    // `--format text` repeats the findings on stdout for piping; the
    // default stays machine-readable JSON (what CI archives).
    if format == "text" {
        for finding in &report.findings {
            println!("{}", finding.render());
        }
        if let Some(path) = out {
            let text: String = report
                .findings
                .iter()
                .map(|f| format!("{}\n", f.render()))
                .collect();
            std::fs::write(&path, text.as_bytes()).map_err(|e| format!("writing {path}: {e}"))?;
        }
        return Ok(report.is_clean());
    }
    let json = if pretty {
        serde_json::to_string_pretty(&report)
    } else {
        serde_json::to_string(&report)
    }
    .map_err(|e| format!("serializing lint report: {e}"))?;
    match out {
        Some(path) => {
            std::fs::write(&path, json.as_bytes()).map_err(|e| format!("writing {path}: {e}"))?;
        }
        None => println!("{json}"),
    }
    Ok(report.is_clean())
}

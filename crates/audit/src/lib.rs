//! `vr-audit`: structural invariant verifier for the workspace's lookup
//! table encodings, plus source-level lints.
//!
//! The datapath crates trade safety margins for speed: [`vr_trie`]'s flat
//! and jump encodings index raw `u32` slabs with no bounds checks beyond
//! the slice's own, and the engine swaps whole tables under live traffic.
//! A single corrupt word — a flipped leaf tag, a child base pointing past
//! its level — silently misroutes packets rather than crashing. This crate
//! is the counterweight:
//!
//! * [`verify`] walks every encoding (uni-bit, leaf-pushed, multibit
//!   stride, flat, flat-stride, DIR-16 jump, merged, braided) and checks
//!   the invariants each one's lookup loop relies on: tag decodability,
//!   child bounds and fanout accounting, strictly descending level order
//!   (acyclicity), leaf-pushing completeness, K-wide NHI vector coverage,
//!   jump-table prefix-expansion consistency, and oracle lookup parity.
//!   Dead slabs and stale NHI vectors are *reported* (wasted BRAM) but
//!   never fail an audit.
//! * [`report`] is the machine-readable result: per-check pass/fail with
//!   violation coordinates (level, slab offset, word), serialized to JSON
//!   by the CI `audit` job.
//! * [`lint`] enforces four source rules the compiler cannot: no
//!   `unsafe` outside `vendor/`, no `.unwrap()`/`.expect(` in hot-path
//!   lookup modules (allowlist excepted), no raw floating-point power
//!   literals bypassing `vr-fpga`'s unit-typed calibration constants, and
//!   no bare `Instant::now(` timing in the engine's timed modules outside
//!   `vr-telemetry`'s `Stopwatch`/`Span` API.
//! * [`metrics`] bridges audits into `vr-telemetry`: run/violation
//!   counters and an audit-duration histogram the lookup service feeds on
//!   every publish.
//!
//! The verifier runs automatically inside
//! `vr_engine::LookupService::publish_tables` in debug builds (and in
//! release under the engine's `audit-on-publish` feature), rejecting a
//! malformed generation *before* the RCU swap makes it live. The
//! `vr-audit` binary runs the same checks from the command line over
//! freshly built synthetic tables or a serialized trie artifact.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod lint;
pub mod metrics;
pub mod report;
pub mod verify;

pub use lint::{lint_workspace, LintFinding, LintReport, LintRule, HOT_PATH_FILES, TIMED_FILES};
pub use metrics::AuditMetrics;
pub use report::{
    Audit, AuditReport, AuditStats, CheckKind, CheckOutcome, Coordinates, Severity, Violation,
    MAX_RECORDED_VIOLATIONS,
};
pub use verify::{
    audit_braided, audit_flat, audit_flat_parts, audit_flat_stride, audit_flat_stride_parts,
    audit_flat_stride_with_table, audit_flat_with_table, audit_jump, audit_jump_against_stride,
    audit_jump_parts, audit_jump_with_table, audit_leaf_pushed, audit_merged,
    audit_merged_leaf_pushed, audit_unibit, parity_probes,
};

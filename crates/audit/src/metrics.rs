//! Telemetry bridge: audit outcomes as registry metrics.
//!
//! The engine runs a structural audit on every candidate table before
//! the RCU swap. Those runs were invisible outside the one-shot audit
//! report; this module publishes them as counters and a duration
//! histogram so a scraper can watch the audit gate's cost and hit rate
//! alongside the datapath metrics.

use crate::report::AuditReport;
use vr_telemetry::{Counter, Histogram, MetricsRegistry};

/// Metric names registered by [`AuditMetrics::register`].
pub const AUDIT_RUNS_METRIC: &str = "vr_audit_runs_total";
/// Error-severity violations observed across all audit runs.
pub const AUDIT_VIOLATIONS_METRIC: &str = "vr_audit_violations_total";
/// Wall-clock duration of each audit run, nanoseconds.
pub const AUDIT_DURATION_METRIC: &str = "vr_audit_ns";

/// Cloneable handles onto the audit metrics of one registry.
#[derive(Debug, Clone)]
pub struct AuditMetrics {
    runs: Counter,
    violations: Counter,
    duration_ns: Histogram,
}

impl AuditMetrics {
    /// Registers (or re-attaches to) the audit metrics in `registry`.
    #[must_use]
    pub fn register(registry: &MetricsRegistry) -> Self {
        Self {
            runs: registry.counter(AUDIT_RUNS_METRIC),
            violations: registry.counter(AUDIT_VIOLATIONS_METRIC),
            duration_ns: registry.histogram(AUDIT_DURATION_METRIC),
        }
    }

    /// Records one completed audit run: its duration and however many
    /// error-severity violations it found.
    pub fn observe(&self, report: &AuditReport, elapsed_ns: u64) {
        self.runs.inc(0);
        self.violations.add(0, report.error_count());
        self.duration_ns.record(elapsed_ns);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vr_net::RoutingTable;
    use vr_trie::JumpTrie;

    #[test]
    fn clean_audit_counts_a_run_with_no_violations() {
        let registry = MetricsRegistry::new(1);
        let metrics = AuditMetrics::register(&registry);
        let table: RoutingTable = "10.0.0.0/8 1\n".parse().unwrap();
        let report = crate::audit_jump(&JumpTrie::from_table(&table));
        assert!(report.is_clean());
        metrics.observe(&report, 1234);
        let snap = registry.snapshot();
        assert_eq!(snap.counter(AUDIT_RUNS_METRIC), Some(1));
        assert_eq!(snap.counter(AUDIT_VIOLATIONS_METRIC), Some(0));
        assert_eq!(snap.histogram(AUDIT_DURATION_METRIC).unwrap().count, 1);
    }

    #[test]
    fn corrupt_audit_counts_its_violations() {
        let registry = MetricsRegistry::new(1);
        let metrics = AuditMetrics::register(&registry);
        let table: RoutingTable = "10.0.0.0/8 1\n".parse().unwrap();
        let good = JumpTrie::from_table(&table);
        let p = good.raw_parts();
        let corrupt = JumpTrie::from_raw_parts(
            p.root.to_vec(),
            p.words.to_vec(),
            p.level_offsets.to_vec(),
            Vec::new(),
            p.k,
        );
        let report = crate::audit_jump(&corrupt);
        assert!(!report.is_clean());
        metrics.observe(&report, 99);
        let snap = registry.snapshot();
        assert_eq!(snap.counter(AUDIT_RUNS_METRIC), Some(1));
        assert!(snap.counter(AUDIT_VIOLATIONS_METRIC).unwrap() > 0);
    }
}

//! Source lints for the workspace, run by `vr-audit lint` and the CI
//! `audit` job. Seven rules:
//!
//! 1. **no-unsafe** — `unsafe` is forbidden everywhere outside `vendor/`
//!    (the crates also carry `#![forbid(unsafe_code)]`, but that only
//!    guards compiled targets; this lint also covers examples, build
//!    scripts, and code behind `cfg` gates the CI build never enables).
//! 2. **no-panic-hot-path** — `.unwrap()` / `.expect(` are forbidden in
//!    the hot-path lookup modules ([`HOT_PATH_FILES`]): a panic there
//!    takes down the datapath thread mid-swap. Deliberate uses (builder
//!    capacity limits, test-only code) go in the allowlist file.
//! 3. **no-raw-power-literal** — floating-point literals on lines that
//!    mention power units inside `crates/core` / `crates/fpga` must go
//!    through the unit-typed constructors in `vr-fpga`'s `units`/`grade`
//!    modules; a raw `13.65` elsewhere bypasses the single calibration
//!    point the reproduction depends on.
//! 4. **no-raw-instant** — `Instant::now(` is forbidden in the engine's
//!    and observability plane's timed modules ([`TIMED_FILES`]): all
//!    hot-path timing goes through
//!    `vr-telemetry`'s `Stopwatch`/`Span` API so overhead is paid in one
//!    audited place and every measurement lands in a histogram instead
//!    of an ad-hoc local.
//! 5. **no-tables-clone** — `tables.clone()` is forbidden in the
//!    service's publish path ([`PUBLISH_PATH_FILES`]): cloning the whole
//!    table family per update batch is the O(K·table) cost the
//!    incremental control plane exists to avoid. The one sanctioned
//!    full-rebuild fallback is waived through the allowlist, so any new
//!    clone needs an explicit entry (and a reviewer's eyes) to land.
//! 6. **no-prefetch-outside-lane** — the `_mm_prefetch` intrinsic (and
//!    with it the workspace's only `#[allow(unsafe_code)]`) lives in
//!    exactly one audited place: the lane stepper ([`PREFETCH_HOME`]).
//!    Anywhere else it fires, keeping `unsafe_code = forbid` meaningful
//!    across the rest of the workspace.
//! 7. **no-raw-cache-slot** — reading a result-cache slot's stored
//!    next-hop (a raw `.nhi` field access) is forbidden in engine
//!    modules outside the cache's own module ([`CACHE_HOME`]): every
//!    read must go through the generation-checked probe API, because a
//!    slot read that skips the generation compare is exactly the stale
//!    post-publish hit the cache's invalidation scheme exists to make
//!    impossible. Deliberate exceptions go in the allowlist.
//! 8. **no-raw-atomic** — raw `std::sync::atomic` types and memory
//!    orderings are forbidden outside their sanctioned homes
//!    ([`ATOMIC_HOMES`]): the `vr-sync` wrappers (the workspace's one
//!    place where ordering decisions are made, model-checked, and
//!    trace-instrumented) and the telemetry counters (relaxed-by-design
//!    statistics that never publish data). Everywhere else, a raw
//!    `AtomicU64` or `Ordering::Acquire` is an ordering decision made
//!    outside the audited surface.
//! 9. **no-relaxed-publish** — a line that mentions a publication-side
//!    name (`generation` / `publish`) *and* `Relaxed` is the exact bug
//!    the model checker's `RelaxedGenStore` seeded variant demonstrates:
//!    a generation counter published without release ordering lets a
//!    reader observe the new generation before the payload it tags.
//!    `crates/sync` itself is exempt — its memory model and seeded-bug
//!    programs name `Relaxed` deliberately.
//! 10. **stale-allow** — every allowlist entry must still waive at least
//!     one finding; entries that match nothing are reported as findings
//!     against the allowlist file itself, so dead waivers cannot
//!     accumulate and silently re-open a hole later.
//!
//! The scanner is intentionally a line-based text pass, not a parser: it
//! blanks `//`/`/* */` comments and string-literal contents (preserving
//! byte positions, so findings carry exact columns) well enough for
//! these rules, runs with zero dependencies, and reports
//! file:line:column coordinates that editors understand.

use serde::Serialize;
use std::path::{Path, PathBuf};

/// Hot-path modules where `.unwrap()` / `.expect(` are forbidden
/// (allowlist entries excepted): the per-packet lookup datapath and the
/// table-swap service.
pub const HOT_PATH_FILES: [&str; 10] = [
    "crates/trie/src/flat.rs",
    "crates/trie/src/jump.rs",
    "crates/trie/src/lane.rs",
    "crates/engine/src/service.rs",
    "crates/engine/src/sharded.rs",
    "crates/engine/src/datapath.rs",
    "crates/engine/src/cache.rs",
    // The wire serving tier sits on the per-frame path: a panic in the
    // codec or the connection loop takes the whole connection (or the
    // backend thread) down with it.
    "crates/wire/src/frame.rs",
    "crates/wire/src/decoder.rs",
    "crates/wire/src/server.rs",
];

/// Engine and observability modules whose timing must go through the
/// `vr-telemetry` `Stopwatch`/`Span` API: a bare `Instant::now(` here
/// is untracked overhead on the packet path and a measurement no
/// exporter ever sees. The vr-obs modules are held to the same rule —
/// the tracer stamps every hot-path span, so its clock must be the one
/// audited epoch (`Stopwatch`), not ad-hoc `Instant` reads.
pub const TIMED_FILES: [&str; 10] = [
    "crates/engine/src/service.rs",
    "crates/engine/src/sharded.rs",
    "crates/engine/src/datapath.rs",
    "crates/engine/src/multiway.rs",
    "crates/engine/src/engine.rs",
    "crates/obs/src/trace.rs",
    "crates/obs/src/flight.rs",
    "crates/obs/src/http.rs",
    // Wire timing feeds admission (token bucket) and the replay RTT
    // histograms — both must run on the audited Stopwatch epoch.
    "crates/wire/src/server.rs",
    "crates/wire/src/replay.rs",
];

/// Files on the table-publish path where cloning the table family is
/// forbidden outside the allowlisted full-rebuild fallback: an
/// unsanctioned `tables.clone()` here reintroduces the per-batch
/// O(K·table) copy the incremental update engine removed.
pub const PUBLISH_PATH_FILES: [&str; 2] =
    ["crates/engine/src/service.rs", "crates/engine/src/sharded.rs"];

/// The one module allowed to use the software-prefetch intrinsic (and
/// the `#[allow(unsafe_code)]` wrapping it): the lane stepper. Everywhere
/// else `_mm_prefetch` fires [`LintRule::NoPrefetchOutsideLane`].
pub const PREFETCH_HOME: &str = "crates/trie/src/lane.rs";

/// The one engine module allowed to touch a result-cache slot's stored
/// `.nhi` field: the cache itself, whose probe API pairs every read with
/// a generation compare. Anywhere else under [`CACHE_SLOT_SCOPE`], a raw
/// `.nhi` access fires [`LintRule::NoRawCacheSlot`].
pub const CACHE_HOME: &str = "crates/engine/src/cache.rs";

/// Crate subtree the raw-cache-slot rule covers.
pub const CACHE_SLOT_SCOPE: &str = "crates/engine/";

/// Subtrees allowed to use raw `std::sync::atomic` types and memory
/// orderings: the vr-sync wrappers (where ordering is decided, traced,
/// and model-checked) and the telemetry counters (relaxed-by-design
/// statistics that never carry a publication).
pub const ATOMIC_HOMES: [&str; 2] = ["crates/sync/", "crates/telemetry/"];

/// Tokens that mark a raw atomic usage. Memory orderings are matched by
/// their variant names so `std::cmp::Ordering::Less` in sort code never
/// fires.
const ATOMIC_TOKENS: [&str; 14] = [
    "sync::atomic",
    "AtomicBool",
    "AtomicU8",
    "AtomicU16",
    "AtomicU32",
    "AtomicU64",
    "AtomicUsize",
    "AtomicI8",
    "AtomicI16",
    "AtomicI32",
    "AtomicI64",
    "AtomicIsize",
    "AtomicPtr",
    "Ordering::",
];

/// Memory-ordering variants; `Ordering::` only counts as atomic usage
/// when followed by one of these (ruling out `cmp::Ordering::Less`).
const MEMORY_ORDERINGS: [&str; 5] = ["Relaxed", "Acquire", "Release", "AcqRel", "SeqCst"];

/// Publication-side names for the relaxed-publish rule: a `Relaxed` on
/// the same line as one of these is a publication without ordering.
const PUBLISH_MARKERS: [&str; 2] = ["generation", "publish"];

/// Subtree exempt from the relaxed-publish rule: vr-sync's memory model
/// and seeded-bug programs name `Relaxed` next to `generation` on
/// purpose — that is what they exist to model.
const RELAXED_PUBLISH_EXEMPT: &str = "crates/sync/";

/// Directories never scanned (vendored third-party code, build output).
const SKIP_DIRS: [&str; 4] = ["vendor", "target", ".git", ".claude"];

/// Crates subject to the raw-power-literal rule.
const POWER_CRATES: [&str; 2] = ["crates/core", "crates/fpga"];

/// Files inside [`POWER_CRATES`] allowed to hold raw power literals: the
/// unit newtypes themselves and the single calibration table.
const POWER_LITERAL_HOMES: [&str; 2] = ["crates/fpga/src/units.rs", "crates/fpga/src/grade.rs"];

/// Unit markers that make a float literal a *power* literal. Matched
/// case-insensitively against the comment-stripped line.
const POWER_MARKERS: [&str; 6] = ["watt", "_w ", "_uw", "_mw", "uw_per", "mhz"];

/// Which lint rule fired.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum LintRule {
    /// `unsafe` outside `vendor/`.
    NoUnsafe,
    /// `.unwrap()` / `.expect(` in a hot-path module.
    NoPanicHotPath,
    /// Raw floating-point power literal bypassing the unit constructors.
    NoRawPowerLiteral,
    /// `Instant::now(` in a timed engine module bypassing the telemetry
    /// `Stopwatch`/`Span` API.
    NoRawInstant,
    /// `tables.clone()` on the service publish path outside the
    /// sanctioned full-rebuild fallback.
    NoTablesClone,
    /// The `_mm_prefetch` intrinsic outside its sanctioned home, the
    /// lane stepper module.
    NoPrefetchOutsideLane,
    /// A raw `.nhi` cache-slot field access in an engine module outside
    /// the generation-checked probe API's home module.
    NoRawCacheSlot,
    /// A raw `std::sync::atomic` type or memory ordering outside the
    /// sanctioned homes ([`ATOMIC_HOMES`]).
    NoRawAtomic,
    /// `Relaxed` on a line naming a publication-side identifier
    /// (`generation` / `publish`) outside `crates/sync`.
    NoRelaxedPublish,
    /// An allowlist entry that waived nothing this run.
    StaleAllow,
}

impl LintRule {
    /// Stable lowercase label used in JSON and log lines.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            LintRule::NoUnsafe => "no-unsafe",
            LintRule::NoPanicHotPath => "no-panic-hot-path",
            LintRule::NoRawPowerLiteral => "no-raw-power-literal",
            LintRule::NoRawInstant => "no-raw-instant",
            LintRule::NoTablesClone => "no-tables-clone",
            LintRule::NoPrefetchOutsideLane => "no-prefetch-outside-lane",
            LintRule::NoRawCacheSlot => "no-raw-cache-slot",
            LintRule::NoRawAtomic => "no-raw-atomic",
            LintRule::NoRelaxedPublish => "no-relaxed-publish",
            LintRule::StaleAllow => "stale-allow",
        }
    }
}

/// One lint finding.
#[derive(Debug, Clone, Serialize)]
pub struct LintFinding {
    /// Which rule fired.
    pub rule: LintRule,
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// 1-based byte column of the match within the line.
    pub column: usize,
    /// The offending line, trimmed.
    pub snippet: String,
}

impl LintFinding {
    /// `file:line:column: [rule] snippet` — the editor-clickable
    /// rendering.
    #[must_use]
    pub fn render(&self) -> String {
        format!(
            "{}:{}:{}: [{}] {}",
            self.file,
            self.line,
            self.column,
            self.rule.label(),
            self.snippet
        )
    }
}

/// Result of a lint run.
#[derive(Debug, Clone, Serialize)]
pub struct LintReport {
    /// Files scanned.
    pub files_scanned: usize,
    /// Findings, in file order.
    pub findings: Vec<LintFinding>,
    /// Allowlist entries that matched nothing (candidates for removal).
    pub unused_allows: Vec<String>,
}

impl LintReport {
    /// True when no rule fired.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }
}

/// One allowlist entry: `path-suffix<TAB>substring`. A finding is waived
/// when its file ends with the suffix and its line contains the
/// substring.
#[derive(Debug, Clone)]
struct Allow {
    path_suffix: String,
    needle: String,
    raw: String,
    /// 1-based line in the allowlist file (for [`LintRule::StaleAllow`]).
    line: usize,
}

/// Parses the allowlist format: one `path<TAB>substring` entry per line,
/// `#` comments and blank lines ignored.
fn parse_allowlist(text: &str) -> Vec<Allow> {
    text.lines()
        .enumerate()
        .map(|(i, l)| (i, l.trim()))
        .filter(|(_, l)| !l.is_empty() && !l.starts_with('#'))
        .filter_map(|(i, l)| {
            let (path, needle) = l.split_once('\t')?;
            Some(Allow {
                path_suffix: path.trim().to_string(),
                needle: needle.trim().to_string(),
                raw: l.to_string(),
                line: i + 1,
            })
        })
        .collect()
}

/// Blanks line comments and the contents of string literals, so `unsafe`
/// in a doc comment or `"unwrap"` in a message cannot fire a rule.
/// Block comments are handled across lines via the `in_block` state.
///
/// The pass is **length-preserving**: every input byte maps to exactly
/// one output byte (blanked positions become spaces, non-ASCII bytes
/// too), so a match offset in the stripped line is the match's byte
/// column in the raw line — what puts exact columns in the findings.
fn strip_line(line: &str, in_block: &mut bool) -> String {
    let bytes = line.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    let mut in_str = false;
    while i < bytes.len() {
        if *in_block {
            if bytes[i] == b'*' && i + 1 < bytes.len() && bytes[i + 1] == b'/' {
                *in_block = false;
                out.extend_from_slice(b"  ");
                i += 2;
            } else {
                out.push(b' ');
                i += 1;
            }
            continue;
        }
        let c = bytes[i];
        if in_str {
            if c == b'\\' && i + 1 < bytes.len() {
                out.extend_from_slice(b"  ");
                i += 2;
                continue;
            }
            if c == b'"' {
                in_str = false;
                out.push(b'"');
            } else {
                out.push(b' ');
            }
            i += 1;
            continue;
        }
        match c {
            b'"' => {
                in_str = true;
                out.push(b'"');
                i += 1;
            }
            b'/' if i + 1 < bytes.len() && bytes[i + 1] == b'/' => {
                out.resize(bytes.len(), b' ');
                break;
            }
            b'/' if i + 1 < bytes.len() && bytes[i + 1] == b'*' => {
                *in_block = true;
                out.extend_from_slice(b"  ");
                i += 2;
            }
            _ => {
                out.push(if c.is_ascii() { c } else { b' ' });
                i += 1;
            }
        }
    }
    debug_assert_eq!(out.len(), bytes.len());
    String::from_utf8(out).expect("blanked line is pure ASCII")
}

/// Byte offset of the first *non-trivial* float literal in the stripped
/// line — one carrying calibration information. Trivial literals (zero,
/// one, and powers of ten like `1e-6`, `100.0`) are unit conversions and
/// comparisons, not smuggled power constants, and do not fire the rule.
fn find_float_literal(stripped: &str) -> Option<usize> {
    let bytes = stripped.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        if !bytes[i].is_ascii_digit() {
            i += 1;
            continue;
        }
        // A digit run starts here. Runs continuing an identifier, a hex
        // literal, or a tuple-field access (`group.1`) are not floats.
        let glued = i > 0
            && (bytes[i - 1].is_ascii_alphanumeric() || bytes[i - 1] == b'_' || bytes[i - 1] == b'.');
        let mut j = i;
        let mut saw_dot = false;
        let mut saw_exp = false;
        let mut mantissa = String::new();
        while j < bytes.len() {
            let c = bytes[j];
            if c.is_ascii_digit() {
                if !saw_exp {
                    mantissa.push(c as char);
                }
                j += 1;
            } else if c == b'_' && !saw_exp {
                j += 1;
            } else if c == b'.'
                && !saw_dot
                && !saw_exp
                && j + 1 < bytes.len()
                && bytes[j + 1].is_ascii_digit()
            {
                saw_dot = true;
                j += 1;
            } else if (c == b'e' || c == b'E')
                && !saw_exp
                && j + 1 < bytes.len()
                && (bytes[j + 1] == b'-' || bytes[j + 1] == b'+' || bytes[j + 1].is_ascii_digit())
            {
                saw_exp = true;
                j += if bytes[j + 1].is_ascii_digit() { 1 } else { 2 };
            } else {
                break;
            }
        }
        if !glued && (saw_dot || saw_exp) {
            // Trivial mantissas reduce to "" (zero) or "1" (a power of
            // ten) once padding zeros go; anything else is calibration.
            let trimmed = mantissa.trim_start_matches('0').trim_end_matches('0');
            if !trimmed.is_empty() && trimmed != "1" {
                return Some(i);
            }
        }
        i = j;
    }
    None
}

fn path_matches(rel: &str, suffixes: &[&str]) -> bool {
    suffixes.iter().any(|s| rel == *s || rel.ends_with(s))
}

/// Recursively collects `.rs` files under `root`, skipping [`SKIP_DIRS`].
fn collect_rust_files(root: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut files = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        for entry in std::fs::read_dir(&dir)? {
            let entry = entry?;
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if path.is_dir() {
                if !SKIP_DIRS.contains(&name.as_ref()) {
                    stack.push(path);
                }
            } else if name.ends_with(".rs") {
                files.push(path);
            }
        }
    }
    files.sort();
    Ok(files)
}

/// Lints every Rust file under `root` against the rules, waiving
/// findings matched by `allowlist` (the [`parse_allowlist`] format).
/// Allowlist entries that waive nothing become [`LintRule::StaleAllow`]
/// findings against `allow_name` (the allowlist's display path), so a
/// stale waiver fails the lint gate until it is pruned.
///
/// # Errors
/// Propagates I/O errors from walking or reading the tree.
pub fn lint_workspace(root: &Path, allowlist: &str, allow_name: &str) -> std::io::Result<LintReport> {
    let allows = parse_allowlist(allowlist);
    let mut allow_used = vec![false; allows.len()];
    let mut findings = Vec::new();
    let files = collect_rust_files(root)?;
    let files_scanned = files.len();
    for path in files {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace('\\', "/");
        let text = std::fs::read_to_string(&path)?;
        lint_file(&rel, &text, &allows, &mut allow_used, &mut findings);
    }
    let mut unused_allows = Vec::new();
    for (allow, used) in allows.iter().zip(&allow_used) {
        if !used {
            unused_allows.push(allow.raw.clone());
            findings.push(LintFinding {
                rule: LintRule::StaleAllow,
                file: allow_name.to_string(),
                line: allow.line,
                column: 1,
                snippet: allow.raw.clone(),
            });
        }
    }
    Ok(LintReport {
        files_scanned,
        findings,
        unused_allows,
    })
}

/// Lints one file's text (exposed for tests; `rel` is workspace-relative).
fn lint_file(
    rel: &str,
    text: &str,
    allows: &[Allow],
    allow_used: &mut [bool],
    findings: &mut Vec<LintFinding>,
) {
    let hot_path = path_matches(rel, &HOT_PATH_FILES);
    let timed = path_matches(rel, &TIMED_FILES);
    let publish_path = path_matches(rel, &PUBLISH_PATH_FILES);
    let power_scope = POWER_CRATES.iter().any(|c| rel.starts_with(c))
        && !path_matches(rel, &POWER_LITERAL_HOMES);
    let atomic_home = ATOMIC_HOMES.iter().any(|h| rel.starts_with(h));
    let relaxed_exempt = rel.starts_with(RELAXED_PUBLISH_EXEMPT);
    let mut in_block = false;
    let mut in_tests = false;
    for (lineno, raw_line) in text.lines().enumerate() {
        // Everything after a #[cfg(test)] marker is test code: panics and
        // literals there assert, they don't serve packets. The marker is
        // conventionally the last section of these modules.
        if raw_line.trim_start().starts_with("#[cfg(test)]") {
            in_tests = true;
        }
        let stripped = strip_line(raw_line, &mut in_block);
        if stripped.trim().is_empty() {
            continue;
        }
        // `offset` is a byte offset into the raw line (strip_line is
        // length-preserving), reported 1-based.
        let mut push = |rule: LintRule, offset: usize| {
            let snippet = raw_line.trim().to_string();
            for (i, allow) in allows.iter().enumerate() {
                if rel.ends_with(&allow.path_suffix) && snippet.contains(&allow.needle) {
                    allow_used[i] = true;
                    return;
                }
            }
            findings.push(LintFinding {
                rule,
                file: rel.to_string(),
                line: lineno + 1,
                column: offset + 1,
                snippet,
            });
        };
        if let Some(col) = find_word(&stripped, "unsafe") {
            push(LintRule::NoUnsafe, col);
        }
        if hot_path && !in_tests {
            if let Some(col) = stripped
                .find(".unwrap()")
                .into_iter()
                .chain(stripped.find(".expect("))
                .min()
            {
                push(LintRule::NoPanicHotPath, col);
            }
        }
        if timed && !in_tests {
            if let Some(col) = stripped.find("Instant::now(") {
                push(LintRule::NoRawInstant, col);
            }
        }
        if publish_path && !in_tests {
            if let Some(col) = stripped.find("tables.clone()") {
                push(LintRule::NoTablesClone, col);
            }
        }
        if !in_tests && !path_matches(rel, &[PREFETCH_HOME]) {
            if let Some(col) = stripped.find("_mm_prefetch") {
                push(LintRule::NoPrefetchOutsideLane, col);
            }
        }
        if !in_tests && rel.starts_with(CACHE_SLOT_SCOPE) && !path_matches(rel, &[CACHE_HOME]) {
            if let Some(col) = find_field_access(&stripped, ".nhi") {
                push(LintRule::NoRawCacheSlot, col);
            }
        }
        if !in_tests && !atomic_home {
            if let Some(col) = find_atomic_token(&stripped) {
                push(LintRule::NoRawAtomic, col);
            }
        }
        if !in_tests && !relaxed_exempt {
            if let Some(col) = find_word(&stripped, "Relaxed") {
                let lower = stripped.to_ascii_lowercase();
                if PUBLISH_MARKERS.iter().any(|m| lower.contains(m)) {
                    push(LintRule::NoRelaxedPublish, col);
                }
            }
        }
        if power_scope && !in_tests {
            if let Some(col) = find_float_literal(&stripped) {
                let lower = stripped.to_ascii_lowercase();
                if POWER_MARKERS.iter().any(|m| lower.contains(m)) {
                    push(LintRule::NoRawPowerLiteral, col);
                }
            }
        }
    }
}

/// Field-access match: `.nhi` must fire on `slot.nhi` but not on
/// `.nhis` or `.nhi_bits` — the character after the needle must end the
/// identifier. Returns the byte offset of the match.
fn find_field_access(haystack: &str, needle: &str) -> Option<usize> {
    let mut start = 0;
    while let Some(pos) = haystack[start..].find(needle) {
        let abs = start + pos;
        let after = abs + needle.len();
        let after_ok = after >= haystack.len()
            || !haystack.as_bytes()[after].is_ascii_alphanumeric()
                && haystack.as_bytes()[after] != b'_';
        if after_ok {
            return Some(abs);
        }
        start = after;
    }
    None
}

/// Word-boundary match: `unsafe` must not fire on `unsafe_code` (the
/// forbid attribute) or identifiers embedding the word. Returns the byte
/// offset of the match.
fn find_word(haystack: &str, word: &str) -> Option<usize> {
    let mut start = 0;
    while let Some(pos) = haystack[start..].find(word) {
        let abs = start + pos;
        let before_ok = abs == 0
            || !haystack.as_bytes()[abs - 1].is_ascii_alphanumeric()
                && haystack.as_bytes()[abs - 1] != b'_';
        let after = abs + word.len();
        let after_ok = after >= haystack.len()
            || !haystack.as_bytes()[after].is_ascii_alphanumeric()
                && haystack.as_bytes()[after] != b'_';
        if before_ok && after_ok {
            return Some(abs);
        }
        start = abs + word.len();
    }
    None
}

/// First raw-atomic token on the stripped line ([`ATOMIC_TOKENS`]), with
/// `Ordering::` qualified to memory-ordering variants only so
/// `cmp::Ordering::Less` in sort code never fires.
fn find_atomic_token(stripped: &str) -> Option<usize> {
    ATOMIC_TOKENS
        .iter()
        .filter_map(|token| {
            if *token == "Ordering::" {
                MEMORY_ORDERINGS
                    .iter()
                    .filter_map(|ord| stripped.find(&format!("Ordering::{ord}")))
                    .min()
            } else {
                stripped.find(token)
            }
        })
        .min()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lint_text(rel: &str, text: &str, allowlist: &str) -> Vec<LintFinding> {
        let allows = parse_allowlist(allowlist);
        let mut used = vec![false; allows.len()];
        let mut findings = Vec::new();
        lint_file(rel, text, &allows, &mut used, &mut findings);
        findings
    }

    #[test]
    fn unsafe_fires_outside_vendor() {
        let findings = lint_text("crates/x/src/lib.rs", "fn f() { unsafe { } }\n", "");
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].rule, LintRule::NoUnsafe);
        assert_eq!(findings[0].line, 1);
    }

    #[test]
    fn unsafe_in_comments_strings_and_attributes_is_ignored() {
        let text = "// unsafe here\n/* unsafe\n unsafe */\nlet s = \"unsafe\";\n#![forbid(unsafe_code)]\n";
        assert!(lint_text("crates/x/src/lib.rs", text, "").is_empty());
    }

    #[test]
    fn hot_path_unwrap_fires_only_in_hot_files() {
        let text = "fn f() { x.unwrap(); }\n";
        assert_eq!(lint_text("crates/trie/src/flat.rs", text, "").len(), 1);
        assert!(lint_text("crates/trie/src/unibit.rs", text, "").is_empty());
    }

    #[test]
    fn test_modules_are_exempt() {
        let text = "fn f() {}\n#[cfg(test)]\nmod tests { fn g() { x.unwrap(); } }\n";
        assert!(lint_text("crates/engine/src/service.rs", text, "").is_empty());
    }

    #[test]
    fn allowlist_waives_findings() {
        let text = "let cap = v.len().try_into().expect(\"slab overflow\");\n";
        let allow = "crates/trie/src/flat.rs\texpect(\"slab overflow\")";
        assert!(lint_text("crates/trie/src/flat.rs", text, allow).is_empty());
        assert_eq!(lint_text("crates/trie/src/flat.rs", text, "").len(), 1);
    }

    #[test]
    fn raw_power_literal_fires_in_power_crates_only() {
        let text = "let static_w = 4.5;\n";
        let findings = lint_text("crates/fpga/src/xpe.rs", text, "");
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].rule, LintRule::NoRawPowerLiteral);
        // Outside the power crates the same line is fine.
        assert!(lint_text("crates/trie/src/stats.rs", text, "").is_empty());
        // In the designated calibration homes it is also fine.
        assert!(lint_text("crates/fpga/src/grade.rs", text, "").is_empty());
    }

    #[test]
    fn raw_instant_fires_in_timed_engine_modules_only() {
        let text = "let start = std::time::Instant::now();\n";
        let findings = lint_text("crates/engine/src/service.rs", text, "");
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].rule, LintRule::NoRawInstant);
        // The telemetry crate is the sanctioned home of Instant.
        assert!(lint_text("crates/telemetry/src/span.rs", text, "").is_empty());
        // Bench binaries time whole runs; they are not packet-path code.
        assert!(lint_text("crates/bench/src/bin/bench_lookup.rs", text, "").is_empty());
    }

    #[test]
    fn raw_instant_in_tests_and_comments_is_ignored() {
        let text = "fn f() {}\n// Instant::now() in prose\n#[cfg(test)]\nmod tests { fn g() { let t = Instant::now(); } }\n";
        assert!(lint_text("crates/engine/src/multiway.rs", text, "").is_empty());
    }

    #[test]
    fn tables_clone_fires_on_publish_path_only() {
        let text = "let staged = self.tables.clone();\n";
        let findings = lint_text("crates/engine/src/service.rs", text, "");
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].rule, LintRule::NoTablesClone);
        // Off the publish path the same line is fine (tests, benches,
        // oracles clone freely).
        assert!(lint_text("crates/engine/src/router.rs", text, "").is_empty());
        // The sanctioned fallback is waived through the allowlist.
        let allow = "crates/engine/src/service.rs\tself.tables.clone()";
        assert!(lint_text("crates/engine/src/service.rs", text, allow).is_empty());
        // Test modules are exempt like every other rule.
        let test_text = "fn f() {}\n#[cfg(test)]\nmod tests { fn g() { let t = s.tables.clone(); } }\n";
        assert!(lint_text("crates/engine/src/service.rs", test_text, "").is_empty());
    }

    #[test]
    fn prefetch_is_confined_to_the_lane_module() {
        let text = "core::arch::x86_64::_mm_prefetch::<0>(p);\n";
        let findings = lint_text("crates/trie/src/jump.rs", text, "");
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].rule, LintRule::NoPrefetchOutsideLane);
        // The engine must not grow its own prefetch either.
        assert_eq!(
            lint_text("crates/engine/src/sharded.rs", text, "")[0].rule,
            LintRule::NoPrefetchOutsideLane
        );
        // In its sanctioned home the intrinsic is fine.
        assert!(lint_text(PREFETCH_HOME, text, "").is_empty());
        // Mentions in comments and strings do not fire.
        let prose = "// _mm_prefetch in prose\nlet s = \"_mm_prefetch\";\n";
        assert!(lint_text("crates/engine/src/service.rs", prose, "").is_empty());
    }

    #[test]
    fn raw_cache_slot_access_is_confined_to_the_cache_module() {
        let text = "let nh = decode(slot.nhi);\n";
        let findings = lint_text("crates/engine/src/service.rs", text, "");
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].rule, LintRule::NoRawCacheSlot);
        assert_eq!(
            lint_text("crates/engine/src/sharded.rs", text, "")[0].rule,
            LintRule::NoRawCacheSlot
        );
        // In the probe API's home module the access is the point.
        assert!(lint_text(CACHE_HOME, text, "").is_empty());
        // Outside the engine crate the field name is not ours to police.
        assert!(lint_text("crates/trie/src/jump.rs", text, "").is_empty());
        // `.nhis` / `.nhi_bits` are different identifiers, not slot reads.
        let other = "let v = &self.nhis[base..];\nlet b = layout.nhi_bits;\n";
        assert!(lint_text("crates/engine/src/service.rs", other, "").is_empty());
        // Comments, strings, and test modules do not fire.
        let prose = "// slot.nhi in prose\nlet s = \"x.nhi\";\n#[cfg(test)]\nmod tests { fn g(s: Slot) -> u16 { s.nhi } }\n";
        assert!(lint_text("crates/engine/src/service.rs", prose, "").is_empty());
        // The allowlist escape hatch works here like everywhere else.
        let allow = "crates/engine/src/service.rs\tdecode(slot.nhi)";
        assert!(lint_text("crates/engine/src/service.rs", text, allow).is_empty());
    }

    #[test]
    fn float_without_power_marker_is_fine() {
        let text = "let ratio = 0.5;\n";
        assert!(lint_text("crates/fpga/src/par.rs", text, "").is_empty());
    }

    #[test]
    fn float_literal_shapes() {
        assert_eq!(find_float_literal("let x = 13.65;"), Some(8));
        assert!(find_float_literal("let x = 0.32;").is_some());
        assert!(find_float_literal("let x = 2.5e3;").is_some());
        assert!(find_float_literal("let x = 42;").is_none());
        assert!(find_float_literal("let x = 0xE5;").is_none());
        assert!(find_float_literal("foo.bar()").is_none());
        assert!(find_float_literal("group.1.push(x)").is_none());
        // Trivial scale factors and identities are not calibration data.
        assert!(find_float_literal("w * 1e-6").is_none());
        assert!(find_float_literal("w * 1e3").is_none());
        assert!(find_float_literal("ratio * 100.0").is_none());
        assert!(find_float_literal("if x > 0.0 {").is_none());
        assert!(find_float_literal("1.0 - systematic").is_none());
    }

    #[test]
    fn unused_allow_entries_become_stale_allow_findings() {
        let dir = std::env::temp_dir().join("vr_audit_lint_test");
        let src = dir.join("crates/x/src");
        std::fs::create_dir_all(&src).unwrap();
        std::fs::write(src.join("lib.rs"), "fn f() {}\n").unwrap();
        let allow = "# comment\ncrates/x/src/lib.rs\tnever-matches";
        let report = lint_workspace(&dir, allow, "lint.allow").unwrap();
        // A stale entry is a finding, not a footnote: the gate fails.
        assert!(!report.is_clean());
        assert_eq!(report.unused_allows.len(), 1);
        let stale = &report.findings[0];
        assert_eq!(stale.rule, LintRule::StaleAllow);
        assert_eq!(stale.file, "lint.allow");
        assert_eq!(stale.line, 2, "entry line in the allowlist file");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn findings_carry_exact_columns() {
        let text = "fn f() {\n    let x = foo.unwrap();\n}\n";
        let findings = lint_text("crates/trie/src/flat.rs", text, "");
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].line, 2);
        // `.unwrap()` starts at byte 15 → 1-based column 16.
        assert_eq!(findings[0].column, 16);
        assert!(findings[0].render().starts_with("crates/trie/src/flat.rs:2:16:"));
    }

    #[test]
    fn strip_line_is_length_preserving() {
        let mut in_block = false;
        for line in [
            "let x = 1; // trailing comment with unsafe",
            "let s = \"unsafe in a string\"; let y = 2;",
            "before /* block unsafe */ after",
            "plain line",
        ] {
            let stripped = strip_line(line, &mut in_block);
            assert_eq!(stripped.len(), line.len(), "{line:?}");
        }
        // An open block comment blanks to the end of the line.
        let stripped = strip_line("code(); /* starts here", &mut in_block);
        assert!(in_block);
        assert_eq!(stripped.len(), "code(); /* starts here".len());
        assert!(stripped.starts_with("code(); "));
    }

    #[test]
    fn raw_atomics_are_confined_to_their_homes() {
        let text = "use std::sync::atomic::{AtomicU64, Ordering};\n";
        let findings = lint_text("crates/engine/src/service.rs", text, "");
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].rule, LintRule::NoRawAtomic);
        // A bare ordering argument fires too.
        let store = "self.flag.store(true, Ordering::Release);\n";
        assert_eq!(
            lint_text("crates/control/src/plane.rs", store, "")[0].rule,
            LintRule::NoRawAtomic
        );
        // The wrapper crate and the telemetry counters are the homes.
        assert!(lint_text("crates/sync/src/genctr.rs", text, "").is_empty());
        assert!(lint_text("crates/telemetry/src/metrics.rs", text, "").is_empty());
        // `cmp::Ordering` in sort code is not an atomic ordering.
        let sort = "items.sort_by(|a, b| a.cmp(b).then(std::cmp::Ordering::Less));\n";
        assert!(lint_text("crates/engine/src/service.rs", sort, "").is_empty());
        // vr-sync's own AtomicGen wrapper is sanctioned everywhere.
        let wrapped = "let g = AtomicGen::new(0);\n";
        assert!(lint_text("crates/engine/src/sharded.rs", wrapped, "").is_empty());
        // Comments and test modules do not fire.
        let prose = "// AtomicU64 in prose\n#[cfg(test)]\nmod tests { use std::sync::atomic::AtomicU64; }\n";
        assert!(lint_text("crates/engine/src/service.rs", prose, "").is_empty());
    }

    #[test]
    fn relaxed_publication_fires_outside_the_sync_crate() {
        // The textual twin of the model checker's RelaxedGenStore seeded
        // bug: a generation published without release ordering.
        let text = "self.generation.store(next, Ordering::Relaxed);\n";
        let findings = lint_text("crates/engine/src/service.rs", text, "");
        assert_eq!(findings.len(), 2, "raw atomic AND relaxed publish");
        assert!(findings.iter().any(|f| f.rule == LintRule::NoRelaxedPublish));
        let publish = "publish_flag.store(1, Ordering::Relaxed);\n";
        assert!(lint_text("crates/control/src/plane.rs", publish, "")
            .iter()
            .any(|f| f.rule == LintRule::NoRelaxedPublish));
        // Relaxed without a publication-side name on the line is rule 8's
        // business, not rule 9's (telemetry-style statistics counters).
        let counter = "self.count.fetch_add(1, Ordering::Relaxed);\n";
        assert!(lint_text("crates/engine/src/service.rs", counter, "")
            .iter()
            .all(|f| f.rule == LintRule::NoRawAtomic));
        // crates/sync models Relaxed publication deliberately.
        assert!(lint_text("crates/sync/src/programs.rs", text, "").is_empty());
        // A mention in a comment does not fire.
        let prose = "// a Relaxed generation store would tear\n";
        assert!(lint_text("crates/engine/src/service.rs", prose, "").is_empty());
    }
}

//! Structural verifiers for every lookup-table encoding in `vr-trie`.
//!
//! Each `audit_*` function walks one encoding and returns an
//! [`AuditReport`]. The checks are deliberately independent of the
//! builders: they re-derive every invariant from the raw slabs (via the
//! `*Parts` views) or the public node accessors, so a corrupted artifact
//! — deserialized, hand-built, or mutated by the property tests — is
//! caught even though the builders could never have produced it.
//!
//! Severity policy: anything that can send a lookup out of bounds, into a
//! cycle, or to a wrong next hop is an `Error` and fails the audit; pure
//! accounting findings (dead slabs, stale NHI vectors) are `Info` and are
//! reported without failing — wasted memory cannot corrupt a lookup.

use crate::report::{Audit, AuditReport, AuditStats, CheckKind, Coordinates};
use vr_net::table::NextHop;
use vr_net::{Ipv4Prefix, RoutingTable};
use vr_trie::flat::{self, FlatStrideParts, FlatTrieParts};
use vr_trie::jump::{self, JumpTrieParts};
use vr_trie::unibit::NodeId;
use vr_trie::{
    BraidedTrie, FlatStrideTrie, FlatTrie, JumpTrie, LeafPushedTrie, MergedLeafPushed, MergedTrie,
    StrideTrie, UnibitTrie,
};

/// Highest valid encoded NHI code: `0` = no route, `1 + nh` with
/// `nh: u8`, so anything above `256` silently truncates on decode.
const MAX_NHI_CODE: u16 = 1 + (NextHop::MAX as u16);

/// One level deeper than the address width: a full binary trie over
/// 32-bit addresses has at most 33 levels (root at depth 0).
const MAX_BINARY_LEVELS: usize = 33;

// ---------------------------------------------------------------------------
// Shared helpers
// ---------------------------------------------------------------------------

/// Validates a level-offset array against its word array: starts at zero,
/// strictly increases (every live level is non-empty), ends exactly at
/// `words_len`. Returns the offsets as `usize` when usable for slab
/// indexing, `None` when traversal over them would be unsound.
fn check_level_offsets(
    a: &mut Audit,
    offsets: &[u32],
    words_len: usize,
    max_levels: usize,
) -> Option<Vec<usize>> {
    a.declare(CheckKind::LevelOrder);
    if offsets.is_empty() {
        a.error(
            CheckKind::LevelOrder,
            Coordinates::none(),
            "level offsets are empty (missing end sentinel)",
        );
        return None;
    }
    if offsets[0] != 0 {
        a.error(
            CheckKind::LevelOrder,
            Coordinates::level(0),
            format!("first level offset is {} instead of 0", offsets[0]),
        );
        return None;
    }
    let mut ok = true;
    for (level, pair) in offsets.windows(2).enumerate() {
        if pair[1] <= pair[0] {
            a.error(
                CheckKind::LevelOrder,
                Coordinates::level(level),
                format!(
                    "level offsets not strictly increasing: {} then {}",
                    pair[0], pair[1]
                ),
            );
            ok = false;
        }
    }
    let last = *offsets.last().expect("non-empty") as usize;
    if last != words_len {
        a.error(
            CheckKind::LevelOrder,
            Coordinates::none(),
            format!("level offsets end at {last} but the word array holds {words_len}"),
        );
        ok = false;
    }
    let levels = offsets.len() - 1;
    if levels > max_levels {
        a.error(
            CheckKind::LevelOrder,
            Coordinates::none(),
            format!("{levels} levels exceed the {max_levels}-level address-width bound"),
        );
        ok = false;
    }
    ok.then(|| offsets.iter().map(|&o| o as usize).collect())
}

/// Validates the NHI slab shape. Returns the number of leaf vectors when
/// slot-indexed checks are sound.
fn check_nhi_slab(a: &mut Audit, nhis: &[u16], k: usize) -> Option<usize> {
    a.declare(CheckKind::NhiVector);
    a.declare(CheckKind::TagDecode);
    if k == 0 {
        a.error(
            CheckKind::NhiVector,
            Coordinates::none(),
            "NHI vector width k is 0",
        );
        return None;
    }
    if !nhis.len().is_multiple_of(k) {
        a.error(
            CheckKind::NhiVector,
            Coordinates::none(),
            format!("NHI slab length {} is not a multiple of k = {k}", nhis.len()),
        );
        return None;
    }
    for (i, &code) in nhis.iter().enumerate() {
        if code > MAX_NHI_CODE {
            a.error(
                CheckKind::TagDecode,
                Coordinates::word(0, i, u64::from(code)),
                format!("NHI code {code} exceeds the encodable range 0..={MAX_NHI_CODE}"),
            );
        }
    }
    Some(nhis.len() / k)
}

/// Checks every word of one binary level slab and counts internals.
/// Internal words must point at an even-aligned pair inside the next
/// level's slab; leaf words must name an existing NHI vector.
fn check_binary_slab(
    a: &mut Audit,
    words: &[u32],
    offsets: &[usize],
    level: usize,
    leaf_slots: Option<usize>,
    level_label: &str,
) -> (usize, usize) {
    let levels = offsets.len() - 1;
    let (lo, hi) = (offsets[level], offsets[level + 1]);
    let mut internal = 0usize;
    let mut leaves = 0usize;
    for (off, &word) in words[lo..hi].iter().enumerate() {
        let abs = lo + off;
        if word & flat::LEAF_BIT != 0 {
            leaves += 1;
            let slot = (word & flat::PAYLOAD_MASK) as usize;
            if let Some(count) = leaf_slots {
                if slot >= count {
                    a.error(
                        CheckKind::NhiVector,
                        Coordinates::word(level, abs, u64::from(word)),
                        format!("leaf references NHI vector {slot} of {count}"),
                    );
                }
            }
            continue;
        }
        internal += 1;
        if level + 1 >= levels {
            a.error(
                CheckKind::LeafCompleteness,
                Coordinates::word(level, abs, u64::from(word)),
                format!("internal word in the deepest {level_label} level"),
            );
            continue;
        }
        let base = word as usize;
        let (nlo, nhi_bound) = (offsets[level + 1], offsets[level + 2]);
        if base < nlo || base + 2 > nhi_bound {
            a.error(
                CheckKind::ChildBounds,
                Coordinates::word(level, abs, u64::from(word)),
                format!("child pair {base}..{} outside next slab {nlo}..{nhi_bound}", base + 2),
            );
        } else if !(base - nlo).is_multiple_of(2) {
            a.error(
                CheckKind::ChildBounds,
                Coordinates::word(level, abs, u64::from(word)),
                format!("child base {base} not pair-aligned in slab starting at {nlo}"),
            );
        }
    }
    (internal, leaves)
}

/// Per-level fanout accounting: `internal` nodes in level `l` must open
/// exactly `2 × internal` words in level `l + 1`.
fn check_binary_fanout(a: &mut Audit, offsets: &[usize], internal_per_level: &[usize]) {
    a.declare(CheckKind::ChildBounds);
    for (level, &internal) in internal_per_level.iter().enumerate() {
        if level + 2 > offsets.len() - 1 {
            break;
        }
        let next_size = offsets[level + 2] - offsets[level + 1];
        if internal * 2 != next_size {
            a.error(
                CheckKind::ChildBounds,
                Coordinates::level(level),
                format!(
                    "{internal} internal words should open {} words in the next level, found {next_size}",
                    internal * 2
                ),
            );
        }
    }
}

/// Reachability sweep over binary level-slab words: BFS from `seeds`
/// (word indices), following in-bounds internal words only. Reports dead
/// words and stale NHI vectors as `Info`.
fn sweep_binary_reachability(
    a: &mut Audit,
    words: &[u32],
    seeds: impl IntoIterator<Item = usize>,
    leaf_slots: usize,
    pre_referenced_slots: &[bool],
) -> (u64, u64) {
    a.declare(CheckKind::Reachability);
    let mut visited = vec![false; words.len()];
    let mut referenced = pre_referenced_slots.to_vec();
    referenced.resize(leaf_slots, false);
    let mut queue: Vec<usize> = seeds.into_iter().filter(|&i| i < words.len()).collect();
    for &i in &queue {
        visited[i] = true;
    }
    while let Some(i) = queue.pop() {
        let word = words[i];
        if word & flat::LEAF_BIT != 0 {
            let slot = (word & flat::PAYLOAD_MASK) as usize;
            if slot < leaf_slots {
                referenced[slot] = true;
            }
            continue;
        }
        let base = word as usize;
        for child in [base, base + 1] {
            if child < words.len() && !visited[child] {
                visited[child] = true;
                queue.push(child);
            }
        }
    }
    let dead = visited.iter().filter(|v| !**v).count() as u64;
    let stale = referenced.iter().filter(|r| !**r).count() as u64;
    if dead > 0 {
        a.info(
            CheckKind::Reachability,
            Coordinates::none(),
            format!("{dead} of {} words unreachable from the root", words.len()),
        );
    }
    if stale > 0 {
        a.info(
            CheckKind::Reachability,
            Coordinates::none(),
            format!("{stale} of {leaf_slots} NHI vectors referenced by no leaf"),
        );
    }
    (dead, stale)
}

// ---------------------------------------------------------------------------
// FlatTrie
// ---------------------------------------------------------------------------

fn check_flat(a: &mut Audit, parts: FlatTrieParts<'_>) -> AuditStats {
    a.declare(CheckKind::TagDecode);
    a.declare(CheckKind::ChildBounds);
    a.declare(CheckKind::LeafCompleteness);
    a.declare(CheckKind::Invariants);
    let leaf_slots = check_nhi_slab(a, parts.nhis, parts.k);
    let mut stats = AuditStats {
        nodes: parts.words.len() as u64,
        nhi_entries: parts.nhis.len() as u64,
        arity: parts.k as u64,
        ..AuditStats::default()
    };
    let Some(offsets) =
        check_level_offsets(a, parts.level_offsets, parts.words.len(), MAX_BINARY_LEVELS)
    else {
        return stats;
    };
    let levels = offsets.len() - 1;
    stats.levels = levels as u64;
    if offsets[1] - offsets[0] != 1 {
        a.error(
            CheckKind::LevelOrder,
            Coordinates::level(0),
            format!("level 0 holds {} words instead of exactly the root", offsets[1]),
        );
    }
    let mut internal_per_level = Vec::with_capacity(levels);
    let mut total_leaves = 0usize;
    for level in 0..levels {
        let (internal, leaves) =
            check_binary_slab(a, parts.words, &offsets, level, leaf_slots, "flat");
        internal_per_level.push(internal);
        total_leaves += leaves;
    }
    stats.leaves = total_leaves as u64;
    check_binary_fanout(a, &offsets, &internal_per_level);
    let total_internal: usize = internal_per_level.iter().sum();
    if total_leaves != total_internal + 1 {
        a.error(
            CheckKind::Invariants,
            Coordinates::none(),
            format!(
                "full-binary identity broken: {total_leaves} leaves vs {total_internal} internal words"
            ),
        );
    }
    if let Some(slots) = leaf_slots {
        let (dead, stale) =
            sweep_binary_reachability(a, parts.words, [0usize], slots, &[]);
        stats.dead_words = dead;
        stats.stale_nhi_vectors = stale;
    }
    stats
}

/// Audits a [`FlatTrie`]'s raw encoding.
#[must_use]
pub fn audit_flat_parts(parts: FlatTrieParts<'_>) -> AuditReport {
    let mut a = Audit::new(format!("flat(k={})", parts.k));
    let stats = check_flat(&mut a, parts);
    a.finish(stats)
}

/// Audits a [`FlatTrie`].
#[must_use]
pub fn audit_flat(trie: &FlatTrie) -> AuditReport {
    audit_flat_parts(trie.raw_parts())
}

/// Audits a [`FlatTrie`] structurally and checks lookup parity against an
/// independently built uni-bit oracle for `table`.
#[must_use]
pub fn audit_flat_with_table(trie: &FlatTrie, table: &RoutingTable) -> AuditReport {
    let mut a = Audit::new(format!("flat(k={})", trie.arity()));
    let stats = check_flat(&mut a, trie.raw_parts());
    let oracle = UnibitTrie::from_table(table);
    check_parity(&mut a, CheckKind::OracleParity, table, |ip| {
        (trie.lookup(ip), oracle.lookup(ip))
    });
    a.finish(stats)
}

// ---------------------------------------------------------------------------
// JumpTrie
// ---------------------------------------------------------------------------

fn check_jump(a: &mut Audit, parts: JumpTrieParts<'_>) -> AuditStats {
    a.declare(CheckKind::TagDecode);
    a.declare(CheckKind::ChildBounds);
    a.declare(CheckKind::LeafCompleteness);
    a.declare(CheckKind::Invariants);
    let leaf_slots = check_nhi_slab(a, parts.nhis, parts.k);
    let mut stats = AuditStats {
        nodes: (parts.root.len() + parts.words.len()) as u64,
        nhi_entries: parts.nhis.len() as u64,
        arity: parts.k as u64,
        ..AuditStats::default()
    };
    if parts.root.len() != jump::ROOT_ENTRIES {
        a.error(
            CheckKind::Invariants,
            Coordinates::none(),
            format!(
                "root table holds {} entries instead of {}",
                parts.root.len(),
                jump::ROOT_ENTRIES
            ),
        );
        return stats;
    }
    // Sub-slab levels: the root already consumed 16 bits, so at most
    // 16 word levels remain below it.
    let Some(offsets) = check_level_offsets(a, parts.level_offsets, parts.words.len(), 16) else {
        return stats;
    };
    let levels = offsets.len() - 1;
    stats.levels = 1 + levels as u64;

    // Root entries: leaves resolve immediately (aligned runs may share an
    // NHI slot — legal); internal entries must each own a distinct pair
    // in the level-0 word slab, and those pairs must partition it.
    let level0 = offsets.get(1).copied().unwrap_or(0);
    let mut pair_owner = vec![false; level0 / 2];
    let mut root_internal = 0usize;
    let mut root_referenced = vec![false; leaf_slots.unwrap_or(0)];
    for (bucket, &entry) in parts.root.iter().enumerate() {
        if entry & jump::LEAF_BIT != 0 {
            let slot = (entry & jump::PAYLOAD_MASK) as usize;
            match leaf_slots {
                Some(count) if slot >= count => a.error(
                    CheckKind::NhiVector,
                    Coordinates::word(0, bucket, u64::from(entry)),
                    format!("root entry references NHI vector {slot} of {count}"),
                ),
                Some(_) => root_referenced[slot] = true,
                None => {}
            }
            continue;
        }
        root_internal += 1;
        let base = entry as usize;
        if levels == 0 || base + 2 > level0 {
            a.error(
                CheckKind::ChildBounds,
                Coordinates::word(0, bucket, u64::from(entry)),
                format!("root entry child pair {base}..{} outside level-0 slab of {level0}", base + 2),
            );
        } else if !base.is_multiple_of(2) {
            a.error(
                CheckKind::ChildBounds,
                Coordinates::word(0, bucket, u64::from(entry)),
                format!("root entry child base {base} not pair-aligned"),
            );
        } else if std::mem::replace(&mut pair_owner[base / 2], true) {
            a.error(
                CheckKind::ChildBounds,
                Coordinates::word(0, bucket, u64::from(entry)),
                format!("child pair at {base} claimed by two root entries"),
            );
        }
    }
    if root_internal * 2 != level0 {
        a.error(
            CheckKind::ChildBounds,
            Coordinates::level(0),
            format!(
                "{root_internal} internal root entries should open {} level-0 words, found {level0}",
                root_internal * 2
            ),
        );
    }

    let mut internal_per_level = Vec::with_capacity(levels);
    let mut total_leaves = 0usize;
    for level in 0..levels {
        let (internal, leaves) =
            check_binary_slab(a, parts.words, &offsets, level, leaf_slots, "sub-slab");
        internal_per_level.push(internal);
        total_leaves += leaves;
    }
    stats.leaves = total_leaves as u64;
    check_binary_fanout(a, &offsets, &internal_per_level);
    if let Some(slots) = leaf_slots {
        let seeds: Vec<usize> = parts
            .root
            .iter()
            .filter(|&&e| e & jump::LEAF_BIT == 0)
            .flat_map(|&e| [e as usize, e as usize + 1])
            .collect();
        let (dead, stale) =
            sweep_binary_reachability(a, parts.words, seeds, slots, &root_referenced);
        stats.dead_words = dead;
        stats.stale_nhi_vectors = stale;
    }
    stats
}

/// Audits a [`JumpTrie`]'s raw encoding.
#[must_use]
pub fn audit_jump_parts(parts: JumpTrieParts<'_>) -> AuditReport {
    let mut a = Audit::new(format!("jump(k={})", parts.k));
    let stats = check_jump(&mut a, parts);
    a.finish(stats)
}

/// Audits a [`JumpTrie`].
#[must_use]
pub fn audit_jump(trie: &JumpTrie) -> AuditReport {
    audit_jump_parts(trie.raw_parts())
}

/// Audits a [`JumpTrie`] structurally and checks prefix-expansion
/// consistency against an independently built uni-bit oracle for the
/// source `table`.
#[must_use]
pub fn audit_jump_with_table(trie: &JumpTrie, table: &RoutingTable) -> AuditReport {
    let mut a = Audit::new(format!("jump(k={})", trie.arity()));
    let stats = check_jump(&mut a, trie.raw_parts());
    let oracle = UnibitTrie::from_table(table);
    check_parity(&mut a, CheckKind::JumpConsistency, table, |ip| {
        (trie.lookup(ip), oracle.lookup(ip))
    });
    a.finish(stats)
}

/// Audits a [`JumpTrie`] built via [`JumpTrie::from_stride`]: structural
/// checks plus lookup parity against the source stride trie (the
/// prefix-expansion consistency check for the stride ingestion path).
#[must_use]
pub fn audit_jump_against_stride(
    trie: &JumpTrie,
    source: &StrideTrie,
    table: &RoutingTable,
) -> AuditReport {
    let mut a = Audit::new(format!("jump(k={})<-stride", trie.arity()));
    let stats = check_jump(&mut a, trie.raw_parts());
    check_parity(&mut a, CheckKind::JumpConsistency, table, |ip| {
        (trie.lookup(ip), source.lookup(ip))
    });
    a.finish(stats)
}

// ---------------------------------------------------------------------------
// FlatStrideTrie
// ---------------------------------------------------------------------------

fn check_flat_stride(a: &mut Audit, parts: FlatStrideParts<'_>) -> AuditStats {
    a.declare(CheckKind::TagDecode);
    a.declare(CheckKind::ChildBounds);
    a.declare(CheckKind::LevelOrder);
    a.declare(CheckKind::LeafCompleteness);
    a.declare(CheckKind::Invariants);
    let mut stats = AuditStats {
        nodes: parts.entries.len() as u64,
        levels: parts.strides.len() as u64,
        arity: 1,
        ..AuditStats::default()
    };
    let schedule_ok = !parts.strides.is_empty()
        && parts.strides.iter().all(|&s| (1..=8).contains(&s))
        && parts.strides.iter().map(|&s| u32::from(s)).sum::<u32>() == 32;
    if !schedule_ok {
        a.error(
            CheckKind::Invariants,
            Coordinates::none(),
            format!("invalid stride schedule {:?} (strides must be 1..=8 and sum to 32)", parts.strides),
        );
        return stats;
    }
    let levels = parts.strides.len();
    if parts.level_offsets.len() != levels + 1 {
        a.error(
            CheckKind::LevelOrder,
            Coordinates::none(),
            format!(
                "{} level offsets for a {levels}-level schedule (want {})",
                parts.level_offsets.len(),
                levels + 1
            ),
        );
        return stats;
    }
    let mut ok = parts.level_offsets[0] == 0;
    if !ok {
        a.error(
            CheckKind::LevelOrder,
            Coordinates::level(0),
            format!("first level offset is {} instead of 0", parts.level_offsets[0]),
        );
    }
    for (level, pair) in parts.level_offsets.windows(2).enumerate() {
        if pair[1] < pair[0] {
            a.error(
                CheckKind::LevelOrder,
                Coordinates::level(level),
                format!("level offsets decrease: {} then {}", pair[0], pair[1]),
            );
            ok = false;
        }
    }
    if *parts.level_offsets.last().expect("non-empty") != parts.entries.len() as u64 {
        a.error(
            CheckKind::LevelOrder,
            Coordinates::none(),
            format!(
                "level offsets end at {} but the entry array holds {}",
                parts.level_offsets.last().expect("non-empty"),
                parts.entries.len()
            ),
        );
        ok = false;
    }
    if !ok {
        return stats;
    }
    #[allow(clippy::cast_possible_truncation)]
    let offsets: Vec<usize> = parts.level_offsets.iter().map(|&o| o as usize).collect();
    // Only trailing levels may be empty (a table that never reaches the
    // deep strides leaves them as zero-width slabs).
    let mut seen_empty = false;
    for level in 0..levels {
        let width = 1usize << parts.strides[level];
        let size = offsets[level + 1] - offsets[level];
        if size == 0 {
            seen_empty = true;
        } else if seen_empty {
            a.error(
                CheckKind::LevelOrder,
                Coordinates::level(level),
                "non-empty slab after an empty one (levels must drain monotonically)",
            );
        }
        if !size.is_multiple_of(width) {
            a.error(
                CheckKind::LevelOrder,
                Coordinates::level(level),
                format!("slab of {size} entries is not a multiple of the 2^{} node width", parts.strides[level]),
            );
        }
    }
    if offsets[1] != 1usize << parts.strides[0] {
        a.error(
            CheckKind::LevelOrder,
            Coordinates::level(0),
            format!(
                "level 0 holds {} entries instead of exactly one root node of {}",
                offsets[1],
                1usize << parts.strides[0]
            ),
        );
    }
    let mut children_per_level = vec![0usize; levels];
    let mut nhi_count = 0u64;
    for level in 0..levels {
        let (lo, hi) = (offsets[level], offsets[level + 1]);
        for (off, &word) in parts.entries[lo..hi].iter().enumerate() {
            let abs = lo + off;
            if word >> 48 != 0 {
                a.error(
                    CheckKind::TagDecode,
                    Coordinates::word(level, abs, word),
                    "entry has non-zero bits above the NHI field",
                );
            }
            #[allow(clippy::cast_possible_truncation)]
            let code = (word >> flat::NHI_SHIFT) as u16;
            if code > MAX_NHI_CODE {
                a.error(
                    CheckKind::TagDecode,
                    Coordinates::word(level, abs, word),
                    format!("NHI code {code} exceeds the encodable range 0..={MAX_NHI_CODE}"),
                );
            }
            if code != 0 {
                nhi_count += 1;
            }
            let child = word & u64::from(u32::MAX);
            if child == 0 {
                continue;
            }
            if level + 1 >= levels {
                a.error(
                    CheckKind::LeafCompleteness,
                    Coordinates::word(level, abs, word),
                    "entry in the deepest stride level still has a child",
                );
                continue;
            }
            children_per_level[level] += 1;
            #[allow(clippy::cast_possible_truncation)]
            let base = (child - 1) as usize;
            let width = 1usize << parts.strides[level + 1];
            let (nlo, nhi_bound) = (offsets[level + 1], offsets[level + 2]);
            if base < nlo || base + width > nhi_bound {
                a.error(
                    CheckKind::ChildBounds,
                    Coordinates::word(level, abs, word),
                    format!("child block {base}..{} outside next slab {nlo}..{nhi_bound}", base + width),
                );
            } else if !(base - nlo).is_multiple_of(width) {
                a.error(
                    CheckKind::ChildBounds,
                    Coordinates::word(level, abs, word),
                    format!("child base {base} not aligned to the 2^{} block width", parts.strides[level + 1]),
                );
            }
        }
    }
    stats.nhi_entries = nhi_count;
    for (level, &children) in children_per_level.iter().enumerate().take(levels - 1) {
        let width = 1usize << parts.strides[level + 1];
        let next_size = offsets[level + 2] - offsets[level + 1];
        if children * width != next_size {
            a.error(
                CheckKind::ChildBounds,
                Coordinates::level(level),
                format!(
                    "{children} children should open {} entries in the next level, found {next_size}",
                    children * width
                ),
            );
        }
    }
    // Reachability over node blocks.
    a.declare(CheckKind::Reachability);
    let mut visited = vec![false; parts.entries.len()];
    let mut queue: Vec<(usize, usize)> = Vec::new();
    if !parts.entries.is_empty() {
        queue.push((0, 0)); // (block base, level)
    }
    let mut reached = 0usize;
    while let Some((base, level)) = queue.pop() {
        let width = 1usize << parts.strides[level];
        if base + width > parts.entries.len() || visited[base] {
            continue;
        }
        for slot in 0..width {
            visited[base + slot] = true;
        }
        reached += width;
        if level + 1 >= levels {
            continue;
        }
        for slot in 0..width {
            let child = parts.entries[base + slot] & u64::from(u32::MAX);
            if child != 0 {
                #[allow(clippy::cast_possible_truncation)]
                queue.push(((child - 1) as usize, level + 1));
            }
        }
    }
    let dead = (parts.entries.len() - reached) as u64;
    stats.dead_words = dead;
    if dead > 0 {
        a.info(
            CheckKind::Reachability,
            Coordinates::none(),
            format!("{dead} of {} entries unreachable from the root block", parts.entries.len()),
        );
    }
    stats
}

/// Audits a [`FlatStrideTrie`]'s raw encoding.
#[must_use]
pub fn audit_flat_stride_parts(parts: FlatStrideParts<'_>) -> AuditReport {
    let mut a = Audit::new(format!("flat_stride({:?})", parts.strides));
    let stats = check_flat_stride(&mut a, parts);
    a.finish(stats)
}

/// Audits a [`FlatStrideTrie`].
#[must_use]
pub fn audit_flat_stride(trie: &FlatStrideTrie) -> AuditReport {
    audit_flat_stride_parts(trie.raw_parts())
}

/// Audits a [`FlatStrideTrie`] structurally and checks lookup parity
/// against an independently built uni-bit oracle for `table`.
#[must_use]
pub fn audit_flat_stride_with_table(trie: &FlatStrideTrie, table: &RoutingTable) -> AuditReport {
    let mut a = Audit::new(format!("flat_stride({:?})", trie.strides()));
    let stats = check_flat_stride(&mut a, trie.raw_parts());
    let oracle = UnibitTrie::from_table(table);
    check_parity(&mut a, CheckKind::OracleParity, table, |ip| {
        (trie.lookup(ip), oracle.lookup(ip))
    });
    a.finish(stats)
}

// ---------------------------------------------------------------------------
// Pointer tries
// ---------------------------------------------------------------------------

/// Traverses a full binary pointer trie from `root`, verifying that every
/// node is visited exactly once (tree, not DAG or cycle) and that every
/// path terminates within the 32-bit address depth. Returns
/// `(visited, leaves, internal)`.
fn sweep_full_binary(
    a: &mut Audit,
    root: NodeId,
    node_count: usize,
    children: impl Fn(NodeId) -> Option<(NodeId, NodeId)>,
    label: &str,
) -> (usize, usize, usize) {
    a.declare(CheckKind::LevelOrder);
    a.declare(CheckKind::LeafCompleteness);
    a.declare(CheckKind::Invariants);
    let mut visited = std::collections::HashSet::new();
    let mut leaves = 0usize;
    let mut internal = 0usize;
    let mut stack = vec![(root, 0u32)];
    while let Some((id, depth)) = stack.pop() {
        if !visited.insert(id) {
            a.error(
                CheckKind::Invariants,
                Coordinates::word(depth as usize, id.raw() as usize, 0),
                format!("{label} node {} reached twice (cycle or shared subtree)", id.raw()),
            );
            continue;
        }
        match children(id) {
            None => leaves += 1,
            Some((l, r)) => {
                internal += 1;
                if depth >= 32 {
                    a.error(
                        CheckKind::LeafCompleteness,
                        Coordinates::word(depth as usize, id.raw() as usize, 0),
                        format!("{label} internal node at depth {depth} exceeds the address width"),
                    );
                    continue;
                }
                stack.push((l, depth + 1));
                stack.push((r, depth + 1));
            }
        }
    }
    if leaves != internal + 1 {
        a.error(
            CheckKind::Invariants,
            Coordinates::none(),
            format!("full-binary identity broken: {leaves} leaves vs {internal} internal nodes"),
        );
    }
    let dead = node_count.saturating_sub(visited.len());
    if dead > 0 {
        a.declare(CheckKind::Reachability);
        a.info(
            CheckKind::Reachability,
            Coordinates::none(),
            format!("{dead} of {node_count} arena nodes unreachable from the root"),
        );
    }
    (visited.len(), leaves, internal)
}

/// Audits a [`UnibitTrie`]: arena accounting (via its own invariant
/// check) plus an independent depth-bounded traversal.
#[must_use]
pub fn audit_unibit(trie: &UnibitTrie) -> AuditReport {
    let mut a = Audit::new("unibit");
    a.declare(CheckKind::Invariants);
    a.declare(CheckKind::LevelOrder);
    if !trie.check_invariants() {
        a.error(
            CheckKind::Invariants,
            Coordinates::none(),
            "arena accounting does not match reachability from the root",
        );
    }
    let mut max_depth = 0u32;
    let mut nodes = 0u64;
    for (_, depth) in trie.walk() {
        nodes += 1;
        max_depth = max_depth.max(u32::from(depth));
    }
    if max_depth > 32 {
        a.error(
            CheckKind::LevelOrder,
            Coordinates::none(),
            format!("trie depth {max_depth} exceeds the 32-bit address width"),
        );
    }
    a.finish(AuditStats {
        nodes,
        levels: u64::from(max_depth) + 1,
        arity: 1,
        ..AuditStats::default()
    })
}

/// Audits a [`LeafPushedTrie`]: fullness, single-visit tree shape, and
/// depth bounds.
#[must_use]
pub fn audit_leaf_pushed(trie: &LeafPushedTrie) -> AuditReport {
    let mut a = Audit::new("leaf_pushed");
    let (visited, leaves, _) = sweep_full_binary(
        &mut a,
        trie.root(),
        trie.node_count(),
        |id| trie.node_children(id),
        "leaf-pushed",
    );
    if !trie.is_full() {
        a.error(
            CheckKind::Invariants,
            Coordinates::none(),
            "trie reports itself non-full (leaf/internal identity broken)",
        );
    }
    a.finish(AuditStats {
        nodes: visited as u64,
        leaves: leaves as u64,
        nhi_entries: leaves as u64,
        arity: 1,
        ..AuditStats::default()
    })
}

/// Audits a [`MergedTrie`]: presence/subtree accounting via its own
/// invariant check, plus arity bounds.
#[must_use]
pub fn audit_merged(trie: &MergedTrie) -> AuditReport {
    let mut a = Audit::new(format!("merged(k={})", trie.arity()));
    a.declare(CheckKind::Invariants);
    a.declare(CheckKind::NhiVector);
    if !trie.check_invariants() {
        a.error(
            CheckKind::Invariants,
            Coordinates::none(),
            "presence masks, subtree counters, and reachability disagree",
        );
    }
    if trie.arity() == 0 || trie.arity() > 64 {
        a.error(
            CheckKind::NhiVector,
            Coordinates::none(),
            format!("arity {} outside the supported 1..=64", trie.arity()),
        );
    }
    a.finish(AuditStats {
        nodes: trie.node_count() as u64,
        arity: trie.arity() as u64,
        ..AuditStats::default()
    })
}

/// Audits a [`MergedLeafPushed`] trie: fullness, tree shape, depth
/// bounds, and per-VNID lookup parity against the source tables (every
/// virtual network's routes must be answered from its slice of the NHI
/// vectors, with no stale cross-VN answers).
#[must_use]
pub fn audit_merged_leaf_pushed(trie: &MergedLeafPushed, tables: &[RoutingTable]) -> AuditReport {
    let mut a = Audit::new(format!("merged_leaf_pushed(k={})", trie.arity()));
    let (visited, leaves, _) = sweep_full_binary(
        &mut a,
        trie.root(),
        trie.node_count(),
        |id| trie.node_children(id),
        "merged",
    );
    if !trie.is_full() {
        a.error(
            CheckKind::Invariants,
            Coordinates::none(),
            "trie reports itself non-full (leaf/internal identity broken)",
        );
    }
    a.declare(CheckKind::NhiVector);
    if tables.len() != trie.arity() {
        a.error(
            CheckKind::NhiVector,
            Coordinates::none(),
            format!("{} source tables for arity {}", tables.len(), trie.arity()),
        );
    } else {
        check_vn_parity(&mut a, tables, |vn, ip| trie.lookup(vn, ip));
    }
    a.finish(AuditStats {
        nodes: visited as u64,
        leaves: leaves as u64,
        nhi_entries: (leaves * trie.arity()) as u64,
        arity: trie.arity() as u64,
        ..AuditStats::default()
    })
}

/// Audits a [`BraidedTrie`] by per-VNID lookup parity against the source
/// tables (the braid bits have no raw-slab view; semantic parity is the
/// decisive check) plus node-accounting sanity.
#[must_use]
pub fn audit_braided(trie: &BraidedTrie, tables: &[RoutingTable]) -> AuditReport {
    let mut a = Audit::new(format!("braided(k={})", trie.arity()));
    a.declare(CheckKind::Invariants);
    let per_vn_total: usize = (0..trie.arity()).map(|v| trie.vn_node_count(v)).sum();
    if trie.node_count() > per_vn_total && per_vn_total > 0 {
        a.error(
            CheckKind::Invariants,
            Coordinates::none(),
            format!(
                "shape holds {} nodes but the VNs only occupy {per_vn_total} in total",
                trie.node_count()
            ),
        );
    }
    if tables.len() != trie.arity() {
        a.declare(CheckKind::NhiVector);
        a.error(
            CheckKind::NhiVector,
            Coordinates::none(),
            format!("{} source tables for arity {}", tables.len(), trie.arity()),
        );
    } else {
        check_vn_parity(&mut a, tables, |vn, ip| trie.lookup(vn, ip));
    }
    a.finish(AuditStats {
        nodes: trie.node_count() as u64,
        arity: trie.arity() as u64,
        ..AuditStats::default()
    })
}

// ---------------------------------------------------------------------------
// Parity probing
// ---------------------------------------------------------------------------

/// Probe addresses exercising every prefix of `table`: the network
/// address, the broadcast address, both one-off neighbours, and the /16
/// bucket edges (which stress the jump-table cut).
#[must_use]
pub fn parity_probes(table: &RoutingTable) -> Vec<u32> {
    let mut probes = Vec::with_capacity(table.len() * 5 + 8);
    for prefix in table.prefixes() {
        let addr = prefix.addr();
        let host = host_mask(&prefix);
        probes.push(addr);
        probes.push(addr | host);
        probes.push(addr.wrapping_sub(1));
        probes.push((addr | host).wrapping_add(1));
        probes.push(addr | 0xFFFF);
    }
    probes.extend([0, 1, u32::MAX, 0x8000_0000, 0x0000_FFFF, 0x0001_0000]);
    probes
}

fn host_mask(prefix: &Ipv4Prefix) -> u32 {
    match prefix.len() {
        0 => u32::MAX,
        32 => 0,
        len => (1u32 << (32 - len)) - 1,
    }
}

/// Runs `lookup` over the parity probes of `table`, recording every
/// mismatch between the audited structure (first tuple element) and the
/// oracle (second element) under `check`.
fn check_parity(
    a: &mut Audit,
    check: CheckKind,
    table: &RoutingTable,
    lookup: impl Fn(u32) -> (Option<NextHop>, Option<NextHop>),
) {
    a.declare(check);
    for ip in parity_probes(table) {
        let (got, want) = lookup(ip);
        if got != want {
            a.error(
                check,
                Coordinates {
                    level: None,
                    offset: Some(u64::from(ip)),
                    word: None,
                },
                format!("lookup({ip:#010x}) = {got:?}, oracle says {want:?}"),
            );
        }
    }
}

/// Per-VNID parity: every virtual network's lookups must match an oracle
/// built from that network's own table alone.
fn check_vn_parity(
    a: &mut Audit,
    tables: &[RoutingTable],
    lookup: impl Fn(usize, u32) -> Option<NextHop>,
) {
    a.declare(CheckKind::OracleParity);
    for (vn, table) in tables.iter().enumerate() {
        let oracle = UnibitTrie::from_table(table);
        for ip in parity_probes(table) {
            let got = lookup(vn, ip);
            let want = oracle.lookup(ip);
            if got != want {
                a.error(
                    CheckKind::OracleParity,
                    Coordinates {
                        level: u32::try_from(vn).ok(),
                        offset: Some(u64::from(ip)),
                        word: None,
                    },
                    format!("vn {vn} lookup({ip:#010x}) = {got:?}, oracle says {want:?}"),
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vr_net::synth::TableSpec;

    fn table(text: &str) -> RoutingTable {
        text.parse().unwrap()
    }

    fn sample() -> RoutingTable {
        table("0.0.0.0/0 9\n10.0.0.0/8 1\n10.1.0.0/16 2\n10.1.1.0/24 3\n192.168.0.0/17 5\n")
    }

    #[test]
    fn well_formed_flat_is_clean() {
        let t = sample();
        let flat = FlatTrie::from_unibit(&UnibitTrie::from_table(&t));
        let report = audit_flat_with_table(&flat, &t);
        assert!(report.is_clean(), "{}", report.summary());
        assert_eq!(report.stats.dead_words, 0);
        assert_eq!(report.stats.stale_nhi_vectors, 0);
    }

    #[test]
    fn well_formed_jump_is_clean() {
        let t = sample();
        let jump = JumpTrie::from_table(&t);
        let report = audit_jump_with_table(&jump, &t);
        assert!(report.is_clean(), "{}", report.summary());
    }

    #[test]
    fn well_formed_stride_is_clean() {
        let t = sample();
        let stride = StrideTrie::from_table(&t, &[8, 8, 8, 8]).unwrap();
        let flat = FlatStrideTrie::from_stride(&stride);
        let report = audit_flat_stride_with_table(&flat, &t);
        assert!(report.is_clean(), "{}", report.summary());
        let jump = JumpTrie::from_stride(&stride);
        let report = audit_jump_against_stride(&jump, &stride, &t);
        assert!(report.is_clean(), "{}", report.summary());
    }

    #[test]
    fn empty_structures_are_clean() {
        let empty = UnibitTrie::new();
        assert!(audit_unibit(&empty).is_clean());
        assert!(audit_flat(&FlatTrie::from_unibit(&empty)).is_clean());
        assert!(audit_jump(&JumpTrie::from_unibit(&empty)).is_clean());
        assert!(audit_leaf_pushed(&LeafPushedTrie::from_unibit(&empty)).is_clean());
    }

    #[test]
    fn flipped_leaf_tag_is_caught() {
        let t = sample();
        let flat = FlatTrie::from_unibit(&UnibitTrie::from_table(&t));
        let parts = flat.raw_parts();
        let mut words = parts.words.to_vec();
        // Find a leaf in a non-final level and strip its tag: the payload
        // becomes a bogus child base.
        let offsets: Vec<usize> = parts.level_offsets.iter().map(|&o| o as usize).collect();
        let victim = (offsets[0]..offsets[offsets.len() - 2])
            .find(|&i| words[i] & flat::LEAF_BIT != 0)
            .expect("some leaf above the deepest level");
        words[victim] &= flat::PAYLOAD_MASK;
        let mutated = FlatTrie::from_raw_parts(
            words,
            parts.level_offsets.to_vec(),
            parts.nhis.to_vec(),
            parts.k,
        );
        let report = audit_flat(&mutated);
        assert!(!report.is_clean(), "tag flip must be detected");
    }

    #[test]
    fn oob_child_base_is_caught() {
        let t = sample();
        let jump = JumpTrie::from_table(&t);
        let parts = jump.raw_parts();
        let mut words = parts.words.to_vec();
        let victim = words
            .iter()
            .position(|&w| w & jump::LEAF_BIT == 0)
            .expect("some internal sub-slab word");
        words[victim] = jump::PAYLOAD_MASK; // far out of every slab
        let mutated = JumpTrie::from_raw_parts(
            parts.root.to_vec(),
            words,
            parts.level_offsets.to_vec(),
            parts.nhis.to_vec(),
            parts.k,
        );
        let report = audit_jump(&mutated);
        assert!(!report.is_clean(), "out-of-bounds child must be detected");
    }

    #[test]
    fn truncated_nhi_slab_is_caught() {
        let t = sample();
        let flat = FlatTrie::from_unibit(&UnibitTrie::from_table(&t));
        let parts = flat.raw_parts();
        let mut nhis = parts.nhis.to_vec();
        nhis.truncate(nhis.len() / 2);
        let mutated = FlatTrie::from_raw_parts(
            parts.words.to_vec(),
            parts.level_offsets.to_vec(),
            nhis,
            parts.k,
        );
        let report = audit_flat(&mutated);
        assert!(!report.is_clean(), "truncated NHI slab must be detected");
    }

    #[test]
    fn paper_scale_structures_are_clean() {
        let t = TableSpec::paper_worst_case(23).generate().unwrap();
        let unibit = UnibitTrie::from_table(&t);
        assert!(audit_unibit(&unibit).is_clean());
        assert!(audit_flat_with_table(&FlatTrie::from_unibit(&unibit), &t).is_clean());
        assert!(audit_jump_with_table(&JumpTrie::from_table(&t), &t).is_clean());
    }

    #[test]
    fn merged_and_braided_audit_against_sources() {
        let tables = [
            table("10.0.0.0/8 1\n10.1.1.0/24 2\n"),
            table("10.0.0.0/8 7\n172.16.0.0/12 8\n"),
            table(""),
        ];
        let merged = MergedTrie::from_tables(&tables).unwrap();
        assert!(audit_merged(&merged).is_clean());
        let pushed = merged.leaf_pushed();
        assert!(audit_merged_leaf_pushed(&pushed, &tables).is_clean());
        let braided = BraidedTrie::from_tables(&tables).unwrap();
        assert!(audit_braided(&braided, &tables).is_clean());
    }
}

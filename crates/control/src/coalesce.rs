//! Batch coalescing: last-writer-wins dedup per `(vnid, prefix)`.
//!
//! Route churn is bursty and repetitive — BGP path hunting announces
//! and re-announces the same prefix several times within one batch
//! window. Applying every intermediate state to the data plane wastes
//! sub-slab rebuilds on states no lookup will ever observe. The
//! coalescer collapses each `(vnid, prefix)` key to its **final**
//! update in batch order (the same last-writer-wins contract
//! `UpdateStream::batch` documents), preserving the first-occurrence
//! order of keys so unrelated updates keep their relative sequence.

use serde::Serialize;
use std::collections::HashMap;
use vr_net::{Ipv4Prefix, RouteUpdate, VnId};

/// What a coalescing pass did to a batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct CoalesceStats {
    /// Updates in the raw batch.
    pub input: usize,
    /// Updates surviving coalescing.
    pub output: usize,
    /// Updates discarded because a later one targeted the same
    /// `(vnid, prefix)` — always `input - output`.
    pub superseded: usize,
}

/// Coalesces a batch to one update per `(vnid, prefix)`,
/// last-writer-wins, keys in first-occurrence order.
///
/// Determinism matters here: the incremental and full-rebuild publish
/// paths both consume the coalesced batch, so the dedup itself can
/// never be a source of divergence between them.
#[must_use]
pub fn coalesce(updates: &[RouteUpdate]) -> (Vec<RouteUpdate>, CoalesceStats) {
    let mut out: Vec<RouteUpdate> = Vec::with_capacity(updates.len());
    let mut slot: HashMap<(VnId, Ipv4Prefix), usize> = HashMap::with_capacity(updates.len());
    for update in updates {
        let key = match *update {
            RouteUpdate::Announce { vnid, prefix, .. } | RouteUpdate::Withdraw { vnid, prefix } => {
                (vnid, prefix)
            }
        };
        match slot.get(&key) {
            Some(&i) => out[i] = *update,
            None => {
                slot.insert(key, out.len());
                out.push(*update);
            }
        }
    }
    let stats = CoalesceStats {
        input: updates.len(),
        output: out.len(),
        superseded: updates.len() - out.len(),
    };
    (out, stats)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn announce(vnid: VnId, prefix: &str, next_hop: u8) -> RouteUpdate {
        RouteUpdate::Announce {
            vnid,
            prefix: prefix.parse().unwrap(),
            next_hop,
        }
    }

    fn withdraw(vnid: VnId, prefix: &str) -> RouteUpdate {
        RouteUpdate::Withdraw {
            vnid,
            prefix: prefix.parse().unwrap(),
        }
    }

    #[test]
    fn last_writer_wins_per_key() {
        let batch = [
            announce(0, "10.0.0.0/8", 1),
            announce(1, "10.0.0.0/8", 2),
            announce(0, "10.0.0.0/8", 3),
            withdraw(1, "10.0.0.0/8"),
        ];
        let (out, stats) = coalesce(&batch);
        assert_eq!(out, vec![announce(0, "10.0.0.0/8", 3), withdraw(1, "10.0.0.0/8")]);
        assert_eq!(
            stats,
            CoalesceStats {
                input: 4,
                output: 2,
                superseded: 2
            }
        );
    }

    #[test]
    fn distinct_keys_pass_through_in_order() {
        let batch = [
            announce(0, "10.0.0.0/8", 1),
            withdraw(0, "192.168.0.0/16"),
            announce(1, "172.16.0.0/12", 7),
        ];
        let (out, stats) = coalesce(&batch);
        assert_eq!(out, batch.to_vec());
        assert_eq!(stats.superseded, 0);
    }

    #[test]
    fn announce_then_withdraw_collapses_to_withdraw() {
        let batch = [announce(0, "10.0.0.0/8", 1), withdraw(0, "10.0.0.0/8")];
        let (out, _) = coalesce(&batch);
        assert_eq!(out, vec![withdraw(0, "10.0.0.0/8")]);
    }

    #[test]
    fn empty_batch_is_a_noop() {
        let (out, stats) = coalesce(&[]);
        assert!(out.is_empty());
        assert_eq!(stats.input, 0);
        assert_eq!(stats.superseded, 0);
    }

    #[test]
    fn replaying_coalesced_equals_replaying_raw() {
        // The semantic contract: per-table end state is identical.
        let mut tables = vr_net::synth::FamilySpec {
            k: 2,
            prefixes_per_table: 120,
            shared_fraction: 0.5,
            seed: 9,
            distribution: vr_net::synth::PrefixLenDistribution::edge_default(),
            next_hops: 8,
        }
        .generate()
        .unwrap();
        let mut stream = vr_net::UpdateStream::new(
            tables.clone(),
            vr_net::UpdateMix::default(),
            8,
            77,
        )
        .unwrap();
        let batch = stream.batch(300);
        let mut coalesced_tables = tables.clone();
        let (deduped, stats) = coalesce(&batch);
        assert!(stats.superseded > 0, "300 updates over 240 routes must collide");
        for (target, updates) in [(&mut tables, &batch[..]), (&mut coalesced_tables, &deduped[..])]
        {
            for u in updates {
                match *u {
                    RouteUpdate::Announce {
                        vnid,
                        prefix,
                        next_hop,
                    } => {
                        target[usize::from(vnid)].insert(prefix, next_hop);
                    }
                    RouteUpdate::Withdraw { vnid, prefix } => {
                        target[usize::from(vnid)].remove(&prefix);
                    }
                }
            }
        }
        assert_eq!(tables, coalesced_tables);
    }
}

//! The [`ControlPlane`] supervisor: churn replay, α-drift monitoring,
//! and audited re-merge republish.
//!
//! Policy lives here; mechanism lives in `vr-engine`. Every batch the
//! supervisor applies goes through three steps:
//!
//! 1. **Coalesce** — last-writer-wins dedup per `(vnid, prefix)`
//!    ([`crate::coalesce`]), so the data plane pays one sub-slab
//!    rebuild per final state, not per intermediate flap.
//! 2. **Apply** — [`LookupService::apply_updates`] patches only the
//!    dirty /16 buckets (or falls back to a full rebuild past the
//!    configured dirty threshold / under `full_rebuild`).
//! 3. **Supervise** — measure α (the merged trie's merging
//!    efficiency), price the memory-footprint drift in watts against
//!    the construction-time baseline, and decide whether a re-merge
//!    republish is due.
//!
//! The re-merge trigger is hysteretic: it arms at `alpha_rearm`, fires
//! once when α sinks below `alpha_floor`, then stays disarmed until α
//! recovers — so a family parked below the floor costs one rebuild,
//! not one per batch. A cooldown bounds the rebuild rate even under
//! oscillating α, and audit rejections are retried a bounded number of
//! times before surfacing as [`ControlError::RemergeFailed`].

use crate::coalesce::{coalesce, CoalesceStats};
use crate::ControlError;
use serde::Serialize;
use vr_engine::{EngineError, LookupService, ServiceReport};
use vr_net::update::parse_update_trace;
use vr_net::{RouteUpdate, UpdateStream};
use vr_obs::FlightRecorder;
use vr_telemetry::{Counter, EventKind, Gauge};

/// Policy knobs of a [`ControlPlane`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ControlConfig {
    /// Re-merge when measured α sinks below this while armed.
    pub alpha_floor: f64,
    /// Re-arm the trigger once α recovers to at least this. Must be
    /// ≥ `alpha_floor`; the gap is the hysteresis band.
    pub alpha_rearm: f64,
    /// Minimum batches between re-merges, bounding rebuild rate.
    pub cooldown_batches: usize,
    /// Attempts against `AuditRejected` before giving up on a re-merge.
    pub remerge_retries: usize,
    /// BRAM primitive used to price the memory footprint.
    pub bram_mode: vr_fpga::BramMode,
    /// Speed grade pricing the footprint (Table III coefficients).
    pub grade: vr_fpga::SpeedGrade,
    /// Operating frequency for the power delta, in MHz.
    pub freq_mhz: f64,
    /// NHI width in bits per next-hop entry when sizing the trie.
    pub nhi_bits: u64,
}

impl Default for ControlConfig {
    /// Paper-flavoured defaults: the α band brackets the paper's low
    /// sweep point (α = 0.2); pricing uses 18 Kb BRAM at the -2
    /// grade's base clock like the reference scenarios.
    fn default() -> Self {
        let grade = vr_fpga::SpeedGrade::Minus2;
        Self {
            alpha_floor: 0.2,
            alpha_rearm: 0.3,
            cooldown_batches: 8,
            remerge_retries: 3,
            bram_mode: vr_fpga::BramMode::K18,
            grade,
            freq_mhz: grade.base_clock_mhz(),
            nhi_bits: 8,
        }
    }
}

impl ControlConfig {
    fn validate(&self) -> Result<(), ControlError> {
        let band = [self.alpha_floor, self.alpha_rearm];
        if band.iter().any(|a| !a.is_finite() || !(0.0..=1.0).contains(a)) {
            return Err(ControlError::InvalidConfig("alpha thresholds must be in [0, 1]"));
        }
        if self.alpha_rearm < self.alpha_floor {
            return Err(ControlError::InvalidConfig("alpha_rearm must be >= alpha_floor"));
        }
        if self.remerge_retries == 0 {
            return Err(ControlError::InvalidConfig("remerge_retries must be >= 1"));
        }
        if !self.freq_mhz.is_finite() || self.freq_mhz <= 0.0 {
            return Err(ControlError::InvalidConfig("freq_mhz must be positive"));
        }
        if self.nhi_bits == 0 {
            return Err(ControlError::InvalidConfig("nhi_bits must be >= 1"));
        }
        Ok(())
    }
}

/// What one supervised batch did, returned by
/// [`ControlPlane::apply_batch`] and accumulated by the replay drivers.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct BatchOutcome {
    /// Generation published by the batch (after any re-merge).
    pub generation: u64,
    /// Coalescing result for the raw batch.
    pub coalesce: CoalesceStats,
    /// Measured merging efficiency α after the batch.
    pub alpha: f64,
    /// Watts of BRAM power the current footprint costs over (positive)
    /// or under (negative) the construction-time baseline.
    pub power_delta_w: f64,
    /// Whether this batch triggered a re-merge republish.
    pub remerged: bool,
}

/// Control-plane metric handles, present when the wrapped service has
/// telemetry enabled (they publish into the *service's* registry so
/// one scrape sees both planes).
struct ControlTelemetry {
    batches: Counter,
    updates_in: Counter,
    superseded: Counter,
    remerges: Counter,
    alpha_pm: Gauge,
}

/// Supervisor wrapping a [`LookupService`] with churn-replay and
/// α-drift re-merge policy.
pub struct ControlPlane {
    service: LookupService,
    cfg: ControlConfig,
    /// Hysteresis state: a re-merge may fire only while armed.
    armed: bool,
    /// Batches supervised so far.
    batches: usize,
    /// Batch index of the last re-merge, for the cooldown.
    last_remerge: Option<usize>,
    /// Footprint (bits) of the snapshot live at construction or after
    /// the latest re-merge — the "as-merged" reference the power delta
    /// is priced against.
    baseline_bits: u64,
    remerges: u64,
    telemetry: Option<ControlTelemetry>,
    /// Attached anomaly flight recorder, driven once per supervised
    /// batch (see [`Self::attach_flight_recorder`]).
    flight: Option<FlightRecorder>,
    /// Trace-ring cursor of the recorder's incremental reads.
    trace_cursor: u64,
}

impl ControlPlane {
    /// Wraps a running service.
    ///
    /// # Errors
    /// Rejects invalid configurations ([`ControlError::InvalidConfig`]).
    pub fn new(service: LookupService, cfg: ControlConfig) -> Result<Self, ControlError> {
        cfg.validate()?;
        let baseline_bits = footprint_bits(&service, cfg.nhi_bits);
        let telemetry = service.metrics().map(|registry| ControlTelemetry {
            batches: registry.counter("vr_control_batches_total"),
            updates_in: registry.counter("vr_control_updates_in_total"),
            superseded: registry.counter("vr_control_updates_superseded_total"),
            remerges: registry.counter("vr_control_remerges_total"),
            alpha_pm: registry.gauge("vr_control_alpha_pm"),
        });
        Ok(Self {
            service,
            cfg,
            armed: true,
            batches: 0,
            last_remerge: None,
            baseline_bits,
            remerges: 0,
            telemetry,
            flight: None,
            trace_cursor: 0,
        })
    }

    /// Attaches an anomaly flight recorder. From then on every
    /// [`Self::apply_batch`] tick drains the service's newly completed
    /// sampled traces into the recorder's pre/post windows, feeds the
    /// live batch-latency p99 to the EWMA spike detector, and scans the
    /// event ring (plus the generation-lag gauge) for trigger events —
    /// so a `WorkerStall`, `AuditRejected`, generation-lag, or latency
    /// spike anywhere in the wrapped service freezes and dumps an
    /// episode without any hot-path involvement. Requires the service
    /// to have both `trace_sample` and telemetry configured to be
    /// useful; with either off, the corresponding inputs are simply
    /// never fed.
    pub fn attach_flight_recorder(&mut self, recorder: FlightRecorder) {
        self.flight = Some(recorder);
    }

    /// The attached flight recorder, if any.
    #[must_use]
    pub fn flight_recorder(&self) -> Option<&FlightRecorder> {
        self.flight.as_ref()
    }

    /// Mutable access to the attached flight recorder (e.g. to force a
    /// flush or fire a manual trigger).
    pub fn flight_recorder_mut(&mut self) -> Option<&mut FlightRecorder> {
        self.flight.as_mut()
    }

    /// The wrapped service (e.g. to run lookups mid-churn).
    #[must_use]
    pub fn service(&self) -> &LookupService {
        &self.service
    }

    /// Mutable access to the wrapped service.
    pub fn service_mut(&mut self) -> &mut LookupService {
        &mut self.service
    }

    /// Re-merges performed so far.
    #[must_use]
    pub fn remerges(&self) -> u64 {
        self.remerges
    }

    /// Coalesces and applies one update batch, then runs the α-drift
    /// policy. An empty batch (or one coalescing to nothing) still
    /// counts against the cooldown clock but publishes nothing.
    ///
    /// # Errors
    /// Propagates service failures; a re-merge whose every retry is
    /// audit-rejected surfaces as [`ControlError::RemergeFailed`]
    /// (the pre-re-merge generation keeps serving).
    pub fn apply_batch(&mut self, updates: &[RouteUpdate]) -> Result<BatchOutcome, ControlError> {
        let (deduped, stats) = coalesce(updates);
        let mut generation = self.service.generation();
        if !deduped.is_empty() {
            generation = self.service.apply_updates(&deduped)?;
        }
        self.batches += 1;
        let alpha = self.service.alpha()?;

        // Hysteresis: fire once on the way down, re-arm on recovery.
        let cooled = self
            .last_remerge
            .is_none_or(|at| self.batches - at >= self.cfg.cooldown_batches);
        let mut remerged = false;
        if self.armed && alpha < self.cfg.alpha_floor && cooled {
            generation = self.remerge_with_retry()?;
            remerged = true;
        } else if !self.armed && alpha >= self.cfg.alpha_rearm {
            self.armed = true;
        }

        let alpha = self.service.alpha()?;
        let power_delta_w = self.power_delta_w();
        if let Some(t) = &self.telemetry {
            t.batches.inc(0);
            t.updates_in.add(0, stats.input as u64);
            t.superseded.add(0, stats.superseded as u64);
            t.alpha_pm.set(alpha_pm(alpha));
        }
        self.drive_flight_recorder();
        Ok(BatchOutcome {
            generation,
            coalesce: stats,
            alpha,
            power_delta_w,
            remerged,
        })
    }

    /// Draws `batches` batches of `per_batch` raw updates from the
    /// stream and applies each, returning per-batch outcomes (the α
    /// trajectory the churn study plots).
    ///
    /// # Errors
    /// Stops at the first failing batch.
    pub fn replay(
        &mut self,
        stream: &mut UpdateStream,
        batches: usize,
        per_batch: usize,
    ) -> Result<Vec<BatchOutcome>, ControlError> {
        (0..batches)
            .map(|_| {
                let batch = stream.batch(per_batch);
                self.apply_batch(&batch)
            })
            .collect()
    }

    /// Parses a text trace ([`parse_update_trace`] format) and replays
    /// it in batches of `batch_size`.
    ///
    /// # Errors
    /// Fails on malformed trace lines or a failing batch;
    /// `batch_size == 0` is rejected.
    pub fn replay_trace(
        &mut self,
        trace: &str,
        batch_size: usize,
    ) -> Result<Vec<BatchOutcome>, ControlError> {
        if batch_size == 0 {
            return Err(ControlError::InvalidConfig("batch_size must be >= 1"));
        }
        let updates = parse_update_trace(trace)?;
        updates
            .chunks(batch_size)
            .map(|chunk| self.apply_batch(chunk))
            .collect()
    }

    /// Watts the current footprint costs relative to the as-merged
    /// baseline (positive: churn made the structure more expensive).
    #[must_use]
    pub fn power_delta_w(&self) -> f64 {
        vr_power::memory_power_delta_w(
            self.cfg.bram_mode,
            self.cfg.grade,
            self.baseline_bits,
            footprint_bits(&self.service, self.cfg.nhi_bits),
            self.cfg.freq_mhz,
        )
    }

    /// Shuts the wrapped service down and returns its final report. An
    /// in-flight flight-recorder capture is flushed first so a trigger
    /// near the end of a run still produces its dump.
    #[must_use]
    pub fn shutdown(mut self) -> ServiceReport {
        if let Some(rec) = self.flight.as_mut() {
            rec.force_flush();
        }
        self.service.shutdown()
    }

    /// One flight-recorder tick: drain newly completed traces into the
    /// recorder's window, feed the batch-latency p99 to the spike
    /// detector, and scan trigger sources (event ring + generation-lag
    /// gauge). All timestamps come from the tracer's clock so the
    /// recorder never reads time itself; without a tracer there is no
    /// trace window to dump, so the recorder idles.
    fn drive_flight_recorder(&mut self) {
        let Some(rec) = self.flight.as_mut() else {
            return;
        };
        let Some(tracer) = self.service.tracer() else {
            return;
        };
        let now_ns = tracer.now_ns();
        let drain = tracer.drain_since(self.trace_cursor);
        self.trace_cursor = drain.next_seq;
        for trace in &drain.traces {
            rec.observe_trace(trace);
        }
        if let Some(registry) = self.service.metrics() {
            let snap = registry.histogram("vr_service_batch_ns").snapshot("vr_service_batch_ns");
            if snap.count > 0 {
                rec.observe_p99(snap.quantile(0.99), now_ns);
            }
            let lag = registry.gauge("vr_service_generation_lag").value();
            rec.scan_events(registry.events(), Some(lag), now_ns);
        }
    }

    /// One audited re-merge republish with bounded retry. Only
    /// `AuditRejected` is retried — it is the gate this loop exists
    /// for; any other failure propagates immediately.
    fn remerge_with_retry(&mut self) -> Result<u64, ControlError> {
        let mut last = String::new();
        for _ in 0..self.cfg.remerge_retries {
            match self.service.remerge_publish() {
                Ok(generation) => {
                    self.armed = false;
                    self.last_remerge = Some(self.batches);
                    self.remerges += 1;
                    self.baseline_bits = footprint_bits(&self.service, self.cfg.nhi_bits);
                    let alpha = self.service.alpha()?;
                    if let Some(t) = &self.telemetry {
                        t.remerges.inc(0);
                    }
                    if let Some(registry) = self.service.metrics() {
                        registry.events().publish(EventKind::RemergeTriggered {
                            generation,
                            alpha_pm: alpha_pm(alpha),
                        });
                    }
                    return Ok(generation);
                }
                Err(EngineError::AuditRejected(summary)) => last = summary,
                Err(e) => return Err(e.into()),
            }
        }
        Err(ControlError::RemergeFailed {
            attempts: self.cfg.remerge_retries,
            last,
        })
    }
}

impl std::fmt::Debug for ControlPlane {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ControlPlane")
            .field("cfg", &self.cfg)
            .field("armed", &self.armed)
            .field("batches", &self.batches)
            .field("remerges", &self.remerges)
            .field("baseline_bits", &self.baseline_bits)
            .finish_non_exhaustive()
    }
}

/// Total live-snapshot footprint in bits (root + words + NHI slab).
fn footprint_bits(service: &LookupService, nhi_bits: u64) -> u64 {
    let snapshot = service.snapshot();
    let (root, words, nhis) = snapshot.trie.memory_bits(nhi_bits);
    root + words + nhis
}

/// α as a parts-per-mille integer for gauges and events (1000 = 1.0).
fn alpha_pm(alpha: f64) -> u64 {
    if alpha.is_finite() && alpha > 0.0 {
        (alpha * 1000.0).round() as u64
    } else {
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vr_engine::ServiceConfig;
    use vr_net::update::to_update_trace;
    use vr_net::{RoutingTable, UpdateMix, VnId};

    fn table(lines: &str) -> RoutingTable {
        lines.parse().unwrap()
    }

    fn small_service(tables: Vec<RoutingTable>) -> LookupService {
        LookupService::new(
            tables,
            ServiceConfig {
                workers: 1,
                batch_width: Some(8),
                ..ServiceConfig::default()
            },
        )
        .unwrap()
    }

    fn paired_tables() -> Vec<RoutingTable> {
        let t = table("10.0.0.0/8 1\n10.1.1.0/24 2\n172.16.0.0/12 3\n");
        vec![t.clone(), t]
    }

    #[test]
    fn seeded_stall_produces_one_validating_flight_dump() {
        use vr_obs::{check_chrome_trace, FlightConfig, FlightRecorder};

        let dir = std::env::temp_dir().join(format!("vr_control_flight_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        // One worker behind a depth-1 queue: a burst of submits is
        // guaranteed to find the queue full and publish WorkerStall.
        let service = LookupService::new(
            paired_tables(),
            ServiceConfig {
                workers: 1,
                batch_width: Some(8),
                queue_depth: 1,
                trace_sample: Some(1),
                ..ServiceConfig::default()
            },
        )
        .unwrap();
        let mut plane = ControlPlane::new(service, ControlConfig::default()).unwrap();
        plane.attach_flight_recorder(FlightRecorder::new(FlightConfig {
            pre_window: 8,
            post_window: 2,
            max_dumps: 1,
            ..FlightConfig::new(&dir)
        }));

        let packets: Vec<(VnId, u32)> = (0..4096).map(|i| (0, 0x0A00_0000 | i)).collect();
        for _ in 0..8 {
            let _ = plane.service_mut().submit(packets.clone());
        }
        let _ = plane.service_mut().collect_all();

        // One control tick sees the stall and freezes the pre-window...
        let _ = plane.apply_batch(&[]).unwrap();
        let status = plane.flight_recorder().unwrap().status();
        assert!(
            status.capturing || status.dumps.len() == 1,
            "seeded stall did not trip the recorder: {status:?}"
        );
        // ...and post-trigger traffic fills the post-window.
        for _ in 0..4 {
            let _ = plane.service_mut().process(&packets[..64]);
            let _ = plane.apply_batch(&[]).unwrap();
        }
        let dumps = plane.flight_recorder().unwrap().dumps().to_vec();
        assert_eq!(dumps.len(), 1, "expected exactly one flight dump");
        let text = std::fs::read_to_string(&dumps[0]).unwrap();
        let events = check_chrome_trace(&text).unwrap();
        assert!(events > 0);
        assert!(text.contains("WorkerStall"), "trigger metadata missing");
        let _ = plane.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn flight_recorder_idles_without_tracer_and_flushes_on_shutdown() {
        use vr_obs::{FlightConfig, FlightRecorder, FlightTrigger};

        let dir = std::env::temp_dir().join(format!("vr_control_flush_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        // No trace_sample: the drive tick must idle (no timestamps to
        // anchor a window), leaving the recorder armed and empty.
        let mut plane =
            ControlPlane::new(small_service(paired_tables()), ControlConfig::default()).unwrap();
        plane.attach_flight_recorder(FlightRecorder::new(FlightConfig::new(&dir)));
        let _ = plane.apply_batch(&[]).unwrap();
        let status = plane.flight_recorder().unwrap().status();
        assert!(status.armed && !status.capturing && status.dumps.is_empty());

        // A hand-fired trigger mid-capture is flushed by shutdown even
        // though the post-window never fills.
        plane
            .flight_recorder_mut()
            .unwrap()
            .trigger(FlightTrigger::LatencySpike, 1);
        let _ = plane.shutdown();
        let dumped: Vec<_> = std::fs::read_dir(&dir)
            .map(|rd| rd.filter_map(Result::ok).collect())
            .unwrap_or_default();
        assert_eq!(dumped.len(), 1, "shutdown must flush the open capture");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn config_validation_rejects_bad_bands() {
        let service = small_service(paired_tables());
        let bad = ControlConfig {
            alpha_floor: 0.5,
            alpha_rearm: 0.4,
            ..ControlConfig::default()
        };
        match ControlPlane::new(service, bad) {
            Err(ControlError::InvalidConfig(msg)) => assert!(msg.contains("alpha_rearm")),
            other => panic!("expected config rejection, got {other:?}"),
        }
        for bad in [
            ControlConfig {
                alpha_floor: -0.1,
                ..ControlConfig::default()
            },
            ControlConfig {
                remerge_retries: 0,
                ..ControlConfig::default()
            },
            ControlConfig {
                freq_mhz: 0.0,
                ..ControlConfig::default()
            },
            ControlConfig {
                nhi_bits: 0,
                ..ControlConfig::default()
            },
        ] {
            assert!(bad.validate().is_err());
        }
    }

    #[test]
    fn forced_alpha_drop_triggers_exactly_one_remerge() {
        // Two identical tables: α = 1. Withdrawing everything from VN 1
        // collapses the common set, α → 0, and the armed trigger must
        // fire exactly once (hysteresis keeps it disarmed after).
        let tables = paired_tables();
        let plane_cfg = ControlConfig {
            alpha_floor: 0.5,
            alpha_rearm: 0.9,
            cooldown_batches: 1,
            ..ControlConfig::default()
        };
        let mut plane = ControlPlane::new(small_service(tables.clone()), plane_cfg).unwrap();

        let withdrawals: Vec<RouteUpdate> = tables[1]
            .prefixes()
            .map(|prefix| RouteUpdate::Withdraw { vnid: 1, prefix })
            .collect();
        let outcome = plane.apply_batch(&withdrawals).unwrap();
        assert!(outcome.remerged, "α drop below the floor must re-merge");
        assert!(outcome.alpha < 0.5);
        assert_eq!(plane.remerges(), 1);

        // α stays low; further batches must NOT re-trigger.
        for _ in 0..5 {
            let o = plane
                .apply_batch(&[RouteUpdate::Announce {
                    vnid: 0,
                    prefix: "192.0.2.0/24".parse().unwrap(),
                    next_hop: 4,
                }])
                .unwrap();
            assert!(!o.remerged, "disarmed trigger fired again");
        }
        assert_eq!(plane.remerges(), 1);

        // The event ring saw exactly one RemergeTriggered.
        let snap = plane.service().telemetry_snapshot().unwrap();
        let remerge_events = snap
            .events
            .events
            .iter()
            .filter(|e| matches!(e.kind, EventKind::RemergeTriggered { .. }))
            .count();
        assert_eq!(remerge_events, 1);
        let report = plane.shutdown();
        assert!(report.swaps >= 2, "update publish + re-merge publish");
    }

    #[test]
    fn recovery_past_rearm_rearms_the_trigger() {
        let tables = paired_tables();
        let plane_cfg = ControlConfig {
            alpha_floor: 0.5,
            alpha_rearm: 0.9,
            cooldown_batches: 1,
            ..ControlConfig::default()
        };
        let mut plane = ControlPlane::new(small_service(tables.clone()), plane_cfg).unwrap();
        let withdrawals: Vec<RouteUpdate> = tables[1]
            .prefixes()
            .map(|prefix| RouteUpdate::Withdraw { vnid: 1, prefix })
            .collect();
        assert!(plane.apply_batch(&withdrawals).unwrap().remerged);

        // Re-announce VN 1 identically: α returns to 1, trigger re-arms.
        let announcements: Vec<RouteUpdate> = tables[1]
            .iter()
            .map(|entry| RouteUpdate::Announce {
                vnid: 1,
                prefix: entry.prefix,
                next_hop: entry.next_hop,
            })
            .collect();
        let o = plane.apply_batch(&announcements).unwrap();
        assert!((o.alpha - 1.0).abs() < 1e-12);
        assert!(!o.remerged);

        // A second collapse now fires a second re-merge.
        let o = plane.apply_batch(&withdrawals).unwrap();
        assert!(o.remerged);
        assert_eq!(plane.remerges(), 2);
        let _ = plane.shutdown();
    }

    #[test]
    fn cooldown_suppresses_back_to_back_remerges() {
        let tables = paired_tables();
        let plane_cfg = ControlConfig {
            alpha_floor: 0.5,
            alpha_rearm: 0.9,
            cooldown_batches: 100,
            ..ControlConfig::default()
        };
        let mut plane = ControlPlane::new(small_service(tables.clone()), plane_cfg).unwrap();
        let withdrawals: Vec<RouteUpdate> = tables[1]
            .prefixes()
            .map(|prefix| RouteUpdate::Withdraw { vnid: 1, prefix })
            .collect();
        let announcements: Vec<RouteUpdate> = tables[1]
            .iter()
            .map(|entry| RouteUpdate::Announce {
                vnid: 1,
                prefix: entry.prefix,
                next_hop: entry.next_hop,
            })
            .collect();
        assert!(plane.apply_batch(&withdrawals).unwrap().remerged);
        // Recover (re-arms), collapse again — still inside the cooldown.
        assert!(!plane.apply_batch(&announcements).unwrap().remerged);
        let o = plane.apply_batch(&withdrawals).unwrap();
        assert!(!o.remerged, "cooldown must suppress the second re-merge");
        assert_eq!(plane.remerges(), 1);
        let _ = plane.shutdown();
    }

    #[test]
    fn replay_trace_round_trips_through_the_plane() {
        let tables = paired_tables();
        let mut stream =
            UpdateStream::new(tables.clone(), UpdateMix::default(), 8, 21).unwrap();
        let raw = stream.batch(40);
        let trace = to_update_trace(&raw);

        let mut plane =
            ControlPlane::new(small_service(tables.clone()), ControlConfig::default()).unwrap();
        let outcomes = plane.replay_trace(&trace, 10).unwrap();
        assert_eq!(outcomes.len(), 4);
        assert_eq!(
            outcomes.iter().map(|o| o.coalesce.input).sum::<usize>(),
            40
        );
        // End state matches the stream's own tracked tables.
        assert_eq!(plane.service().tables(), stream.tables());
        assert!(plane.replay_trace("", 0).is_err());
        let _ = plane.shutdown();
    }

    #[test]
    fn replay_streams_batches_and_sets_gauges() {
        let tables = paired_tables();
        let mut stream =
            UpdateStream::new(tables.clone(), UpdateMix::default(), 8, 33).unwrap();
        let mut plane =
            ControlPlane::new(small_service(tables), ControlConfig::default()).unwrap();
        let outcomes = plane.replay(&mut stream, 3, 15).unwrap();
        assert_eq!(outcomes.len(), 3);
        assert_eq!(plane.service().tables(), stream.tables());
        let snap = plane.service().telemetry_snapshot().unwrap();
        assert_eq!(snap.counter("vr_control_batches_total"), Some(3));
        assert_eq!(snap.counter("vr_control_updates_in_total"), Some(45));
        let pm = snap.gauge("vr_control_alpha_pm").unwrap();
        assert!(pm <= 1000);
        let _ = plane.shutdown();
    }

    #[test]
    fn empty_batches_publish_nothing_but_tick_the_clock() {
        let mut plane =
            ControlPlane::new(small_service(paired_tables()), ControlConfig::default()).unwrap();
        let before = plane.service().generation();
        let o = plane.apply_batch(&[]).unwrap();
        assert_eq!(o.generation, before);
        assert_eq!(plane.service().generation(), before);
        assert_eq!(o.coalesce.input, 0);
        let _ = plane.shutdown();
    }

    #[test]
    fn updates_for_unknown_vn_surface_as_engine_errors() {
        let mut plane =
            ControlPlane::new(small_service(paired_tables()), ControlConfig::default()).unwrap();
        let bad = [RouteUpdate::Announce {
            vnid: 9 as VnId,
            prefix: "10.0.0.0/8".parse().unwrap(),
            next_hop: 1,
        }];
        assert!(matches!(
            plane.apply_batch(&bad),
            Err(ControlError::Engine(EngineError::InvalidParameter(_)))
        ));
        let _ = plane.shutdown();
    }

    #[test]
    fn power_delta_is_zero_at_baseline_and_moves_with_footprint() {
        let mut plane =
            ControlPlane::new(small_service(paired_tables()), ControlConfig::default()).unwrap();
        assert!(plane.power_delta_w().abs() < 1e-12);
        // A burst of new distinct /24s grows the trie footprint.
        let burst: Vec<RouteUpdate> = (0..64u32)
            .map(|i| RouteUpdate::Announce {
                vnid: 0,
                prefix: vr_net::Ipv4Prefix::must(0x2D00_0000 | (i << 8), 24),
                next_hop: 3,
            })
            .collect();
        let o = plane.apply_batch(&burst).unwrap();
        assert!(o.power_delta_w > 0.0, "footprint growth must cost watts");
        let _ = plane.shutdown();
    }

    #[test]
    fn alpha_pm_clamps_degenerate_inputs() {
        assert_eq!(alpha_pm(1.0), 1000);
        assert_eq!(alpha_pm(0.25), 250);
        assert_eq!(alpha_pm(-0.5), 0);
        assert_eq!(alpha_pm(f64::NAN), 0);
    }
}

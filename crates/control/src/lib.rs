//! # vr-control — incremental route-update control plane
//!
//! §V-B of the paper assumes routing tables churn at a 1 % write rate
//! while the datapath forwards; the authors' follow-up work (paper
//! ref. \[6\]) makes those updates incremental on FPGA. This crate is
//! the software control plane that drives that story end to end:
//!
//! * [`coalesce`] — batches of announce/withdraw updates are deduped
//!   per `(vnid, prefix)` with **last-writer-wins** semantics before
//!   they touch the data plane, so a flapping route costs one sub-slab
//!   rebuild instead of many;
//! * [`ControlPlane`] — a supervisor wrapping `vr-engine`'s
//!   [`LookupService`]: it replays churn traces (live
//!   [`UpdateStream`]s or parsed text traces), watches the merged
//!   trie's measured merging efficiency α after every batch, prices
//!   the resulting memory-footprint drift in watts with `vr-power`'s
//!   BRAM model, and — when α sags below a configured floor — triggers
//!   a background re-merge and RCU republish with hysteresis, cooldown
//!   and a bounded retry against audit rejections.
//!
//! The division of labour: `vr-engine` owns the mechanism (incremental
//! sub-slab patching, generation-counted snapshot swaps), this crate
//! owns the *policy* (when to coalesce, when to fall back, when a
//! re-merge is worth the rebuild cost).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod coalesce;
pub mod plane;

pub use coalesce::{coalesce, CoalesceStats};
pub use plane::{BatchOutcome, ControlConfig, ControlPlane};

use vr_engine::EngineError;
use vr_net::NetError;
#[allow(unused_imports)] // doc links
use vr_net::UpdateStream;

#[allow(unused_imports)] // doc links
use vr_engine::LookupService;

/// Errors from control-plane construction and replay.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ControlError {
    /// A configuration value was out of its valid domain.
    InvalidConfig(&'static str),
    /// The underlying lookup service failed.
    Engine(EngineError),
    /// Trace parsing or stream construction failed.
    Net(NetError),
    /// Every bounded re-merge attempt was rejected by the audit gate;
    /// the previous generation keeps serving.
    RemergeFailed {
        /// Attempts made before giving up.
        attempts: usize,
        /// The last audit rejection summary.
        last: String,
    },
}

impl std::fmt::Display for ControlError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ControlError::InvalidConfig(msg) => write!(f, "invalid control config: {msg}"),
            ControlError::Engine(e) => write!(f, "engine error: {e}"),
            ControlError::Net(e) => write!(f, "net error: {e}"),
            ControlError::RemergeFailed { attempts, last } => {
                write!(f, "re-merge rejected {attempts} time(s); last: {last}")
            }
        }
    }
}

impl std::error::Error for ControlError {}

impl From<EngineError> for ControlError {
    fn from(e: EngineError) -> Self {
        ControlError::Engine(e)
    }
}

impl From<NetError> for ControlError {
    fn from(e: NetError) -> Self {
        ControlError::Net(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display_and_conversion() {
        let e: ControlError = EngineError::InvalidParameter("x").into();
        assert!(e.to_string().contains("engine error"));
        let e: ControlError = NetError::InvalidPrefixLen(40).into();
        assert!(e.to_string().contains("net error"));
        assert!(ControlError::InvalidConfig("y").to_string().contains('y'));
        let e = ControlError::RemergeFailed {
            attempts: 3,
            last: "boom".into(),
        };
        assert!(e.to_string().contains('3') && e.to_string().contains("boom"));
    }

    #[test]
    fn update_stream_reexport_is_usable() {
        // The crate re-surfaces vr-net's stream type for replay callers.
        let _ = UpdateStream::new(vec![], vr_net::UpdateMix::default(), 4, 1).unwrap_err();
    }
}

//! The power models — Eqs. 2, 4 and 6.
//!
//! Three components (§IV): leakage P_L (per device, §V-A band), logic
//! P(Lᵢ,ⱼ) (§V-C) and memory P(Mᵢ,ⱼ) (Table III), with dynamic terms
//! weighted by the per-network utilization µᵢ where the hardware idles
//! between packets (clock gating / flags, §IV):
//!
//! * **Eq. 2 (NV)**: `Σᵢ (P_L + µᵢ·Σⱼ (P(Lᵢ,ⱼ) + P(Mᵢ,ⱼ)))` — K devices.
//! * **Eq. 4 (VS)**: `P_L + Σᵢ µᵢ·Σⱼ (P(Lᵢ,ⱼ) + P(Mᵢ,ⱼ))` — one device.
//! * **Eq. 6 (VM)**: `P_L + Σⱼ (P(L₀,ⱼ) + P(M_merged,ⱼ))` — one engine
//!   that is *always* active (it carries the whole merged stream), so no µ
//!   scaling applies to its dynamic power.

use crate::scenario::Scenario;
use serde::{Deserialize, Serialize};
use vr_fpga::bram::blocks_for_stages;
use vr_fpga::logic::pipeline_logic_power_w;
use vr_fpga::par::ParSimulator;
use vr_fpga::timing::mw_per_gbps;
use vr_fpga::{bram, SchemeKind, SpeedGrade};

/// An evaluated power model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PowerEstimate {
    /// Scheme evaluated.
    pub scheme: SchemeKind,
    /// Speed grade.
    pub grade: SpeedGrade,
    /// Number of virtual networks.
    pub k: usize,
    /// Total leakage across devices, in watts.
    pub static_w: f64,
    /// µ-weighted dynamic logic power, in watts.
    pub logic_w: f64,
    /// µ-weighted dynamic memory power, in watts.
    pub memory_w: f64,
    /// Operating frequency used, in MHz.
    pub freq_mhz: f64,
    /// Measured merging efficiency (merged scenarios).
    pub alpha: Option<f64>,
}

impl PowerEstimate {
    /// Total power in watts.
    #[must_use]
    pub fn total_w(&self) -> f64 {
        self.static_w + self.logic_w + self.memory_w
    }

    /// Dynamic power in watts.
    #[must_use]
    pub fn dynamic_w(&self) -> f64 {
        self.logic_w + self.memory_w
    }
}

/// Evaluates the analytical model (Eq. 2/4/6) for a scenario.
#[must_use]
pub fn analytical_power(scenario: &Scenario) -> PowerEstimate {
    let spec = scenario.spec();
    let f = scenario.freq_mhz();
    let grade = spec.grade;
    let stages = spec.stages;

    // Full-activity per-engine dynamic components. P_L is the constant
    // per-device leakage, exactly as the paper's equations use it — the
    // ±5 % area-dependent variation (§V-A) is a property of *measurement*
    // and lives in the PAR simulator's deviation, not in the model. The
    // per-device base scales with die size for non-LX760 devices.
    let static_per_device_w = grade.static_base_w() * scenario.device().static_power_scale;
    let logic_full_w = pipeline_logic_power_w(grade, stages, f);
    let engine_mem_full_w = |stage_bits: &Vec<u64>| {
        let blocks = blocks_for_stages(spec.bram_mode, stage_bits);
        bram::bram_power_w(spec.bram_mode, grade, blocks, f)
    };

    let (static_w, logic_w, memory_w) = match spec.scheme {
        SchemeKind::NonVirtualized => {
            // Eq. 2: one device per network, each leaking on its own.
            let mut logic_w = 0.0;
            let mut memory_w = 0.0;
            for (bits, &mu) in scenario.engine_stage_bits().iter().zip(scenario.mu()) {
                logic_w += mu * logic_full_w;
                memory_w += mu * engine_mem_full_w(bits);
            }
            (
                static_per_device_w * scenario.k() as f64,
                logic_w,
                memory_w,
            )
        }
        SchemeKind::Separate => {
            // Eq. 4: one shared device leaks once.
            let mut logic_w = 0.0;
            let mut memory_w = 0.0;
            for (bits, &mu) in scenario.engine_stage_bits().iter().zip(scenario.mu()) {
                logic_w += mu * logic_full_w;
                memory_w += mu * engine_mem_full_w(bits);
            }
            (static_per_device_w, logic_w, memory_w)
        }
        SchemeKind::Merged => {
            // Eq. 6: the single merged engine never idles.
            let bits = &scenario.engine_stage_bits()[0];
            (static_per_device_w, logic_full_w, engine_mem_full_w(bits))
        }
    };

    PowerEstimate {
        scheme: spec.scheme,
        grade,
        k: scenario.k(),
        static_w,
        logic_w,
        memory_w,
        freq_mhz: f,
        alpha: scenario.alpha(),
    }
}

/// Simulated post place-and-route ("experimental") total power for the
/// scenario, in watts (§VI-A, Fig. 7's measurement side).
#[must_use]
pub fn experimental_power_w(scenario: &Scenario, par: &ParSimulator) -> f64 {
    let estimate = analytical_power(scenario);
    par.measured_power_w(
        scenario.spec().scheme,
        scenario.k(),
        scenario.spec().grade,
        estimate.total_w(),
    )
}

/// Power efficiency of the scenario in mW/Gbps (§VI-B), using the
/// analytical total and the scheme's aggregate capacity.
#[must_use]
pub fn efficiency_mw_per_gbps(scenario: &Scenario) -> f64 {
    mw_per_gbps(analytical_power(scenario).total_w(), scenario.capacity_gbps())
}

/// Memory-power delta (watts) between a baseline table footprint and the
/// current one, priced with the Table III BRAM model at the paper's 1 %
/// reference write rate.
///
/// The control plane uses this to decide whether α drift is worth a
/// re-merge: as churn erodes merging efficiency, the merged structure's
/// bit footprint grows, and this converts that growth into the watts the
/// deployment would pay post-republish. Positive means the current
/// footprint costs more than the baseline.
#[must_use]
pub fn memory_power_delta_w(
    mode: vr_fpga::BramMode,
    grade: SpeedGrade,
    baseline_bits: u64,
    current_bits: u64,
    freq_mhz: f64,
) -> f64 {
    let price = |bits: u64| {
        bram::bram_power_w_with_writes(
            mode,
            grade,
            mode.blocks_for(bits),
            freq_mhz,
            bram::REFERENCE_WRITE_RATE,
        )
    };
    price(current_bits) - price(baseline_bits)
}

/// Dynamic memory power (watts) that remains once a hot-path result
/// cache answers `hit_rate` of the lookups.
///
/// A cache hit resolves the lookup from the worker-private slot array
/// without touching the pipeline's BRAM stages, so only the miss
/// fraction of the stream still pays the Table III dynamic memory
/// power; leakage and logic toggling are unaffected. `hit_rate` is
/// clamped to `[0, 1]`, so a degenerate measurement can never turn the
/// discount into a surcharge.
#[must_use]
pub fn cache_discounted_memory_w(memory_w: f64, hit_rate: f64) -> f64 {
    memory_w * (1.0 - hit_rate.clamp(0.0, 1.0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::ScenarioSpec;
    use vr_fpga::Device;
    use vr_net::synth::FamilySpec;
    use vr_net::RoutingTable;

    fn family(k: usize) -> Vec<RoutingTable> {
        FamilySpec {
            k,
            prefixes_per_table: 300,
            shared_fraction: 0.6,
            seed: 5,
            distribution: vr_net::synth::PrefixLenDistribution::edge_default(),
            next_hops: 8,
        }
        .generate()
        .unwrap()
    }

    fn estimate(scheme: SchemeKind, k: usize, grade: SpeedGrade) -> PowerEstimate {
        let s = Scenario::build(
            &family(k),
            ScenarioSpec::paper_default(scheme, grade),
            Device::xc6vlx760(),
        )
        .unwrap();
        analytical_power(&s)
    }

    #[test]
    fn nv_static_power_grows_linearly_with_k() {
        // Fig. 5's headline: NV total power ∝ K.
        let p1 = estimate(SchemeKind::NonVirtualized, 1, SpeedGrade::Minus2);
        let p8 = estimate(SchemeKind::NonVirtualized, 8, SpeedGrade::Minus2);
        assert!(p8.static_w > 7.5 * p1.static_w);
        assert!(p8.static_w < 8.5 * p1.static_w);
        // Dynamic stays ≈ one engine's worth (µ = 1/K each).
        assert!((p8.dynamic_w() - p1.dynamic_w()).abs() < 0.2 * p1.dynamic_w());
    }

    #[test]
    fn vs_total_power_stays_near_one_device(){
        // Fig. 6: virtualized schemes sit near one device's static power.
        for k in [1usize, 4, 8, 15] {
            let p = estimate(SchemeKind::Separate, k, SpeedGrade::Minus2);
            assert!(
                (4.0..6.5).contains(&p.total_w()),
                "K={k}: {} W",
                p.total_w()
            );
        }
    }

    #[test]
    fn virtualization_saves_power_proportional_to_k() {
        // Abstract: "power savings proportional to the number of virtual
        // networks can be achieved compared with non-virtualized routers".
        for k in [2usize, 5, 10, 15] {
            let nv = estimate(SchemeKind::NonVirtualized, k, SpeedGrade::Minus2);
            let vs = estimate(SchemeKind::Separate, k, SpeedGrade::Minus2);
            let ratio = nv.total_w() / vs.total_w();
            assert!(
                ratio > 0.6 * k as f64,
                "K={k}: ratio {ratio} not ∝ K"
            );
        }
    }

    #[test]
    fn vm_dynamic_is_full_activity_vs_is_mu_weighted() {
        // Eq. 6 has no µ: the merged engine's dynamic power equals its
        // full-activity logic + memory power at its (degraded) clock.
        let k = 8;
        let vm_scenario = Scenario::build(
            &family(k),
            ScenarioSpec::paper_default(SchemeKind::Merged, SpeedGrade::Minus2),
            Device::xc6vlx760(),
        )
        .unwrap();
        let vm = analytical_power(&vm_scenario);
        let f = vm_scenario.freq_mhz();
        let logic_full = vr_fpga::logic::pipeline_logic_power_w(SpeedGrade::Minus2, 28, f);
        let blocks = vr_fpga::bram::blocks_for_stages(
            vm_scenario.spec().bram_mode,
            &vm_scenario.engine_stage_bits()[0],
        );
        let mem_full = vr_fpga::bram::bram_power_w(
            vm_scenario.spec().bram_mode,
            SpeedGrade::Minus2,
            blocks,
            f,
        );
        assert!((vm.dynamic_w() - (logic_full + mem_full)).abs() < 1e-12);

        // Eq. 4 is µ-weighted: with uniform µ and equal-size tables, VS
        // dynamic power is ≈ one engine's full-activity power, not K×.
        let vs_scenario = Scenario::build(
            &family(k),
            ScenarioSpec::paper_default(SchemeKind::Separate, SpeedGrade::Minus2),
            Device::xc6vlx760(),
        )
        .unwrap();
        let vs = analytical_power(&vs_scenario);
        let f = vs_scenario.freq_mhz();
        let one_engine_full = vr_fpga::logic::pipeline_logic_power_w(SpeedGrade::Minus2, 28, f)
            + vr_fpga::bram::bram_power_w(
                vs_scenario.spec().bram_mode,
                SpeedGrade::Minus2,
                vr_fpga::bram::blocks_for_stages(
                    vs_scenario.spec().bram_mode,
                    &vs_scenario.engine_stage_bits()[0],
                ),
                f,
            );
        assert!(vs.dynamic_w() < 1.3 * one_engine_full);
        assert!(vs.dynamic_w() > 0.7 * one_engine_full);
    }

    #[test]
    fn low_power_grade_saves_roughly_30_percent() {
        // §VI-B: "We observed a 30% less power consumption when speed
        // grade -1L was chosen compared to speed grade -2."
        for scheme in SchemeKind::ALL {
            let hi = estimate(scheme, 6, SpeedGrade::Minus2);
            let lo = estimate(scheme, 6, SpeedGrade::Minus1L);
            let saving = 1.0 - lo.total_w() / hi.total_w();
            assert!(
                (0.2..=0.4).contains(&saving),
                "{scheme}: saving {saving}"
            );
        }
    }

    #[test]
    fn static_power_dominates_single_engine_designs() {
        // §I/§IV motivation: sharing static power is the big win, so the
        // static component must dominate dynamic at paper scale.
        let p = estimate(SchemeKind::Separate, 4, SpeedGrade::Minus2);
        assert!(p.static_w > 5.0 * p.dynamic_w());
    }

    #[test]
    fn experimental_power_stays_within_3_percent_of_model() {
        let par = ParSimulator::default();
        for scheme in SchemeKind::ALL {
            for k in [1usize, 5, 10, 15] {
                let s = Scenario::build(
                    &family(k),
                    ScenarioSpec::paper_default(scheme, SpeedGrade::Minus2),
                    Device::xc6vlx760(),
                )
                .unwrap();
                let model = analytical_power(&s).total_w();
                let exp = experimental_power_w(&s, &par);
                let err = vr_fpga::par::percentage_error(model, exp);
                assert!(err.abs() <= 3.0, "{scheme} K={k}: {err}%");
            }
        }
    }

    #[test]
    fn efficiency_ordering_matches_fig8() {
        // §VI-B: separate best, conventional second, merged worst.
        let k = 10;
        let nv = {
            let s = Scenario::build(
                &family(k),
                ScenarioSpec::paper_default(SchemeKind::NonVirtualized, SpeedGrade::Minus2),
                Device::xc6vlx760(),
            )
            .unwrap();
            efficiency_mw_per_gbps(&s)
        };
        let vs = {
            let s = Scenario::build(
                &family(k),
                ScenarioSpec::paper_default(SchemeKind::Separate, SpeedGrade::Minus2),
                Device::xc6vlx760(),
            )
            .unwrap();
            efficiency_mw_per_gbps(&s)
        };
        let vm = {
            let s = Scenario::build(
                &family(k),
                ScenarioSpec::paper_default(SchemeKind::Merged, SpeedGrade::Minus2),
                Device::xc6vlx760(),
            )
            .unwrap();
            efficiency_mw_per_gbps(&s)
        };
        assert!(vs < nv, "separate ({vs}) must beat NV ({nv})");
        assert!(nv < vm, "NV ({nv}) must beat merged ({vm})");
    }

    #[test]
    fn grades_have_similar_efficiency() {
        // §VI-B: "The two speed grades perform almost the same way" in
        // mW/Gbps.
        let build = |grade| {
            let s = Scenario::build(
                &family(8),
                ScenarioSpec::paper_default(SchemeKind::Separate, grade),
                Device::xc6vlx760(),
            )
            .unwrap();
            efficiency_mw_per_gbps(&s)
        };
        let hi = build(SpeedGrade::Minus2);
        let lo = build(SpeedGrade::Minus1L);
        let rel = (hi - lo).abs() / hi;
        assert!(rel < 0.15, "grades diverge by {rel}");
    }

    #[test]
    fn memory_power_delta_tracks_footprint_growth() {
        let mode = vr_fpga::BramMode::K18;
        let grade = SpeedGrade::Minus2;
        let f = grade.base_clock_mhz();
        let same = memory_power_delta_w(mode, grade, 1 << 20, 1 << 20, f);
        assert!(same.abs() < 1e-12, "identical footprints cost nothing");
        let grew = memory_power_delta_w(mode, grade, 1 << 20, 1 << 22, f);
        assert!(grew > 0.0, "a larger footprint must cost more watts");
        let shrank = memory_power_delta_w(mode, grade, 1 << 22, 1 << 20, f);
        assert!((grew + shrank).abs() < 1e-12, "delta is antisymmetric");
    }

    #[test]
    fn cache_discount_scales_memory_power_by_miss_rate() {
        let base = 4.0;
        assert!((cache_discounted_memory_w(base, 0.0) - base).abs() < 1e-12);
        assert!(cache_discounted_memory_w(base, 1.0).abs() < 1e-12);
        let half = cache_discounted_memory_w(base, 0.5);
        assert!((half - base / 2.0).abs() < 1e-12);
        // Degenerate measurements clamp instead of inverting the sign.
        assert!((cache_discounted_memory_w(base, 1.5)).abs() < 1e-12);
        assert!((cache_discounted_memory_w(base, -0.5) - base).abs() < 1e-12);
    }
}

//! Resource models — Eqs. 1, 3 and 5 — and device-fit checks.
//!
//! Resources are what the power models consume: per-stage memories Mᵢ,ⱼ
//! (quantized to BRAM blocks), per-stage logic Lᵢ,ⱼ (the PE profile), the
//! device count D, and I/O pins.
//!
//! ## The two merged-memory models
//!
//! Eq. 5 as printed makes the merged memory `α·ΣᵢΣⱼMᵢ,ⱼ`, which *grows*
//! with the overlap α — contradicting Fig. 4 and §VI-B (see DESIGN.md §3).
//! [`MergedMemoryModel::Structural`] (default) instead derives the merged
//! memory from the actually merged trie; [`MergedMemoryModel::PaperLiteral`]
//! implements the printed equation for the ablation bench.

use serde::{Deserialize, Serialize};
use vr_fpga::bram::blocks_for_stages;
use vr_fpga::device::Device;
use vr_fpga::logic::{total_resources, PeProfile};
use vr_fpga::{io, BramMode, FpgaError, SchemeKind};

/// How the merged scheme's memory requirement is computed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub enum MergedMemoryModel {
    /// Merge the K tries and measure (default; reproduces Fig. 4).
    #[default]
    Structural,
    /// Eq. 5 exactly as printed: `α × Σ` of the K single-table memories,
    /// with an explicitly supplied α.
    PaperLiteral {
        /// The merging efficiency to plug into Eq. 5.
        alpha: f64,
    },
}

/// Aggregate resource usage of a scenario (Eqs. 1/3/5 evaluated).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ResourceUsage {
    /// Scheme the usage belongs to.
    pub scheme: SchemeKind,
    /// Number of devices D required (K for NV, 1 otherwise).
    pub devices: usize,
    /// Lookup engines per device (1 for NV and VM, K for VS).
    pub engines_per_device: usize,
    /// Total memory demand across all engines, in bits (ΣΣ Mᵢ,ⱼ).
    pub memory_bits: u64,
    /// BRAM blocks (in the chosen granularity) per device.
    pub bram_blocks_per_device: u64,
    /// 36 Kb-equivalent BRAM blocks per device (fit metric).
    pub bram_36k_per_device: u64,
    /// Logic resources per device (Σ Lᵢ,ⱼ over that device's engines).
    pub logic_per_device: PeProfile,
    /// I/O pins required per device.
    pub io_pins_per_device: u64,
}

impl ResourceUsage {
    /// Computes usage from per-engine stage memories.
    ///
    /// `engine_stage_bits` holds, for each engine on ONE device, the
    /// per-stage memory bits. NV replicates that single-engine device K
    /// times; `devices` carries the replication count.
    #[must_use]
    pub fn from_stage_bits(
        scheme: SchemeKind,
        devices: usize,
        engine_stage_bits: &[Vec<u64>],
        bram_mode: BramMode,
        pe: PeProfile,
    ) -> Self {
        let engines_per_device = engine_stage_bits.len();
        let stages = engine_stage_bits.first().map_or(0, Vec::len);
        let blocks_per_device: u64 = engine_stage_bits
            .iter()
            .map(|bits| blocks_for_stages(bram_mode, bits))
            .sum();
        let memory_bits_per_device: u64 = engine_stage_bits
            .iter()
            .map(|bits| bits.iter().sum::<u64>())
            .sum();
        let bram_36k_per_device = match bram_mode {
            BramMode::K36 => blocks_per_device,
            BramMode::K18 => blocks_per_device.div_ceil(2),
        };
        Self {
            scheme,
            devices,
            engines_per_device,
            memory_bits: memory_bits_per_device * devices as u64,
            bram_blocks_per_device: blocks_per_device,
            bram_36k_per_device,
            logic_per_device: total_resources(pe, engines_per_device, stages),
            io_pins_per_device: io::pins_required(engines_per_device),
        }
    }

    /// Total BRAM blocks across all devices.
    #[must_use]
    pub fn total_bram_blocks(&self) -> u64 {
        self.bram_blocks_per_device * self.devices as u64
    }

    /// Checks the per-device demands against `device`.
    ///
    /// # Errors
    /// [`FpgaError::ResourceExhausted`] naming the binding resource.
    pub fn check_fit(&self, device: &Device) -> Result<(), FpgaError> {
        if self.bram_36k_per_device > device.bram_36k_blocks {
            return Err(FpgaError::ResourceExhausted {
                resource: "36 Kb BRAM blocks",
                requested: self.bram_36k_per_device,
                available: device.bram_36k_blocks,
            });
        }
        if self.logic_per_device.slice_registers > device.slice_registers {
            return Err(FpgaError::ResourceExhausted {
                resource: "slice registers",
                requested: self.logic_per_device.slice_registers,
                available: device.slice_registers,
            });
        }
        if self.logic_per_device.total_luts() > device.slice_luts {
            return Err(FpgaError::ResourceExhausted {
                resource: "slice LUTs",
                requested: self.logic_per_device.total_luts(),
                available: device.slice_luts,
            });
        }
        io::check(device, self.engines_per_device)?;
        Ok(())
    }

    /// Device area utilization (input to the §V-A static-power band).
    #[must_use]
    pub fn area_utilization(&self, device: &Device) -> f64 {
        vr_fpga::static_power::area_utilization(
            device,
            &self.logic_per_device,
            self.bram_36k_per_device,
        )
    }
}

/// Applies the literal Eq. 5 transform: per-stage merged memory =
/// `α × Σₖ Mₖ,ⱼ` over the K single-table stage maps.
///
/// Returns one per-stage vector for the single merged engine.
#[must_use]
pub fn paper_literal_merged_stage_bits(single_stage_bits: &[Vec<u64>], alpha: f64) -> Vec<u64> {
    let stages = single_stage_bits.first().map_or(0, Vec::len);
    (0..stages)
        .map(|j| {
            let sum: u64 = single_stage_bits.iter().map(|bits| bits[j]).sum();
            (sum as f64 * alpha).ceil() as u64
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stage_bits(engines: usize, per_stage: u64, stages: usize) -> Vec<Vec<u64>> {
        vec![vec![per_stage; stages]; engines]
    }

    #[test]
    fn separate_usage_counts_k_engines_one_device() {
        let usage = ResourceUsage::from_stage_bits(
            SchemeKind::Separate,
            1,
            &stage_bits(4, 10 * 1024, 28),
            BramMode::K18,
            PeProfile::PAPER_UNIBIT,
        );
        assert_eq!(usage.devices, 1);
        assert_eq!(usage.engines_per_device, 4);
        assert_eq!(usage.bram_blocks_per_device, 4 * 28);
        assert_eq!(usage.memory_bits, 4 * 28 * 10 * 1024);
        assert_eq!(usage.io_pins_per_device, io::pins_required(4));
        assert_eq!(
            usage.logic_per_device.slice_registers,
            PeProfile::PAPER_UNIBIT.slice_registers * 4 * 28
        );
    }

    #[test]
    fn nv_usage_replicates_devices() {
        let usage = ResourceUsage::from_stage_bits(
            SchemeKind::NonVirtualized,
            5,
            &stage_bits(1, 10 * 1024, 28),
            BramMode::K18,
            PeProfile::PAPER_UNIBIT,
        );
        assert_eq!(usage.devices, 5);
        assert_eq!(usage.total_bram_blocks(), 5 * 28);
        assert_eq!(usage.memory_bits, 5 * 28 * 10 * 1024);
        // Per-device demands are single-engine.
        assert_eq!(usage.engines_per_device, 1);
    }

    #[test]
    fn fit_check_passes_and_fails() {
        let device = Device::xc6vlx760();
        let ok = ResourceUsage::from_stage_bits(
            SchemeKind::Separate,
            1,
            &stage_bits(4, 10 * 1024, 28),
            BramMode::K18,
            PeProfile::PAPER_UNIBIT,
        );
        assert!(ok.check_fit(&device).is_ok());
        let too_many_pins = ResourceUsage::from_stage_bits(
            SchemeKind::Separate,
            1,
            &stage_bits(16, 1024, 28),
            BramMode::K18,
            PeProfile::PAPER_UNIBIT,
        );
        assert!(matches!(
            too_many_pins.check_fit(&device),
            Err(FpgaError::ResourceExhausted {
                resource: "I/O pins",
                ..
            })
        ));
        let too_much_bram = ResourceUsage::from_stage_bits(
            SchemeKind::Merged,
            1,
            &stage_bits(1, 2 * 1024 * 1024, 28), // 2 Mb per stage
            BramMode::K36,
            PeProfile::PAPER_UNIBIT,
        );
        assert!(matches!(
            too_much_bram.check_fit(&device),
            Err(FpgaError::ResourceExhausted {
                resource: "36 Kb BRAM blocks",
                ..
            })
        ));
    }

    #[test]
    fn paper_literal_transform() {
        let singles = vec![vec![100, 200], vec![300, 400]];
        let merged = paper_literal_merged_stage_bits(&singles, 0.5);
        assert_eq!(merged, vec![200, 300]);
        // α = 1 reproduces the plain sum; α = 0 zeroes everything.
        assert_eq!(
            paper_literal_merged_stage_bits(&singles, 1.0),
            vec![400, 600]
        );
        assert_eq!(paper_literal_merged_stage_bits(&singles, 0.0), vec![0, 0]);
        assert!(paper_literal_merged_stage_bits(&[], 0.5).is_empty());
    }

    #[test]
    fn area_utilization_grows_with_engines() {
        let device = Device::xc6vlx760();
        let small = ResourceUsage::from_stage_bits(
            SchemeKind::Separate,
            1,
            &stage_bits(1, 10 * 1024, 28),
            BramMode::K18,
            PeProfile::PAPER_UNIBIT,
        );
        let large = ResourceUsage::from_stage_bits(
            SchemeKind::Separate,
            1,
            &stage_bits(10, 10 * 1024, 28),
            BramMode::K18,
            PeProfile::PAPER_UNIBIT,
        );
        assert!(large.area_utilization(&device) > small.area_utilization(&device));
    }

    #[test]
    fn half_block_consolidation() {
        let usage = ResourceUsage::from_stage_bits(
            SchemeKind::Merged,
            1,
            &stage_bits(1, 1024, 3), // 3 half-blocks
            BramMode::K18,
            PeProfile::PAPER_UNIBIT,
        );
        assert_eq!(usage.bram_blocks_per_device, 3);
        assert_eq!(usage.bram_36k_per_device, 2);
    }
}

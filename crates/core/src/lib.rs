//! # vr-power — analytical power models for FPGA router virtualization
//!
//! This crate is the paper's primary contribution, reproduced: analytical
//! models estimating the Layer-3 (IP-lookup) power of three router
//! organizations on an FPGA, validated against (simulated) post
//! place-and-route measurements, and compared on total power and power
//! efficiency.
//!
//! The three organizations (§IV) and their models:
//!
//! | Scheme | Resources | Power |
//! |---|---|---|
//! | NV (non-virtualized) | Eq. 1: K devices, each one engine | Eq. 2: K×(P_L + µᵢ·Σ(P(L)+P(M))) |
//! | VS (virtualized-separate) | Eq. 3: 1 device, K engines | Eq. 4: P_L + Σ µᵢ·Σ(P(L)+P(M)) |
//! | VM (virtualized-merged) | Eq. 5: 1 device, 1 merged engine | Eq. 6: P_L + Σ(P(L)+P(M_merged)) |
//!
//! Everything below the equations comes from the sibling crates: routing
//! tables (`vr-net`), tries and stage memories (`vr-trie`), device/power/
//! timing models (`vr-fpga`) and the cycle-level behavioural simulator
//! (`vr-engine`).
//!
//! Module map:
//! * [`scenario`] — build a concrete scenario (tables × scheme × grade);
//! * [`resources`] — Eqs. 1/3/5 plus device-fit checks, including both
//!   merged-memory models (structural vs. the paper's literal Eq. 5 —
//!   see DESIGN.md §3);
//! * [`models`] — Eqs. 2/4/6 power estimates;
//! * [`validate`] — model vs. "experimental" (PAR-simulated) percentage
//!   error, Fig. 7's pipeline;
//! * [`efficiency`] — mW/Gbps (§VI-B), Fig. 8's pipeline;
//! * [`experiments`] — one entry point per table/figure of the paper,
//!   shared by the bench binaries and the integration tests;
//! * [`report`] — text-table / CSV / JSON rendering of experiment output.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod claims;
pub mod efficiency;
pub mod experiments;
pub mod models;
pub mod report;
pub mod resources;
pub mod scenario;
pub mod validate;

pub use models::{cache_discounted_memory_w, memory_power_delta_w, PowerEstimate};
pub use resources::{MergedMemoryModel, ResourceUsage};
pub use scenario::{Scenario, ScenarioSpec};

// Re-export the identifiers users need to assemble scenarios without
// importing every sibling crate.
pub use vr_fpga::{BramMode, Device, SchemeKind, SpeedGrade};

/// Errors from model construction and evaluation.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum PowerError {
    /// An invalid parameter (message explains which).
    InvalidParameter(&'static str),
    /// Propagated trie error.
    Trie(vr_trie::TrieError),
    /// Propagated FPGA substrate error (e.g. device fit).
    Fpga(vr_fpga::FpgaError),
    /// Propagated network-layer error.
    Net(vr_net::NetError),
    /// Propagated simulator error.
    Engine(String),
}

impl std::fmt::Display for PowerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PowerError::InvalidParameter(msg) => write!(f, "invalid parameter: {msg}"),
            PowerError::Trie(e) => write!(f, "trie error: {e}"),
            PowerError::Fpga(e) => write!(f, "fpga error: {e}"),
            PowerError::Net(e) => write!(f, "net error: {e}"),
            PowerError::Engine(e) => write!(f, "engine error: {e}"),
        }
    }
}

impl std::error::Error for PowerError {}

impl From<vr_trie::TrieError> for PowerError {
    fn from(e: vr_trie::TrieError) -> Self {
        PowerError::Trie(e)
    }
}

impl From<vr_fpga::FpgaError> for PowerError {
    fn from(e: vr_fpga::FpgaError) -> Self {
        PowerError::Fpga(e)
    }
}

impl From<vr_net::NetError> for PowerError {
    fn from(e: vr_net::NetError) -> Self {
        PowerError::Net(e)
    }
}

impl From<vr_engine::EngineError> for PowerError {
    fn from(e: vr_engine::EngineError) -> Self {
        PowerError::Engine(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_conversions_and_display() {
        let e: PowerError = vr_trie::TrieError::ZeroStages.into();
        assert!(e.to_string().contains("trie"));
        let e: PowerError = vr_fpga::FpgaError::InvalidParameter("x").into();
        assert!(e.to_string().contains("fpga"));
        let e: PowerError = vr_net::NetError::InvalidPrefixLen(99).into();
        assert!(e.to_string().contains("net"));
        let e: PowerError = vr_engine::EngineError::InvalidParameter("y").into();
        assert!(e.to_string().contains("engine"));
        assert!(PowerError::InvalidParameter("z").to_string().contains('z'));
    }
}

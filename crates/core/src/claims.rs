//! The paper's claims as checkable artifacts.
//!
//! Every quantitative claim the paper makes is encoded here as a
//! [`ClaimCheck`] evaluated against this reproduction's own sweep — the
//! `claims` binary prints the checklist, and the integration tests pin
//! every verdict to `holds == true`. This is the repository's one-glance
//! answer to "does the reproduction actually reproduce the paper?".

use crate::experiments::{power_sweep, ExperimentConfig, SweepPoint};
use crate::PowerError;
use serde::{Deserialize, Serialize};
use vr_fpga::{Device, SpeedGrade};

/// One verified (or refuted) paper claim.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClaimCheck {
    /// Short identifier, e.g. `error-3pct`.
    pub id: String,
    /// Where the paper makes the claim.
    pub section: String,
    /// The claim, paraphrased.
    pub statement: String,
    /// What this reproduction measured.
    pub measured: String,
    /// Whether the measurement supports the claim.
    pub holds: bool,
}

fn find<'a>(
    points: &'a [SweepPoint],
    series: &str,
    grade: SpeedGrade,
    k: usize,
) -> &'a SweepPoint {
    points
        .iter()
        .find(|p| p.series == series && p.grade == grade && p.k == k)
        .expect("sweep covers every series × grade × k")
}

/// Evaluates the full claim checklist on `cfg`'s workload scale.
///
/// # Errors
/// Propagates sweep construction errors.
pub fn verify_claims(cfg: &ExperimentConfig) -> Result<Vec<ClaimCheck>, PowerError> {
    let points = power_sweep(cfg)?;
    let g = SpeedGrade::Minus2;
    let k = cfg.k_max;
    let mut checks = Vec::new();

    // 1. Abstract / Fig. 7: model error within ±3 %.
    let max_err = points
        .iter()
        .map(|p| p.error_pct.abs())
        .fold(0.0f64, f64::max);
    checks.push(ClaimCheck {
        id: "error-3pct".into(),
        section: "Abstract, Fig. 7".into(),
        statement: "analytical model within ±3 % of experimental".into(),
        measured: format!("max |error| = {max_err:.2}%"),
        holds: max_err <= 3.0,
    });

    // 2. Abstract: savings proportional to K.
    let nv = find(&points, "NV", g, k);
    let vs = find(&points, "VS", g, k);
    let ratio = nv.model_w / vs.model_w;
    checks.push(ClaimCheck {
        id: "savings-prop-k".into(),
        section: "Abstract, Fig. 5".into(),
        statement: "virtualization saves power proportional to K".into(),
        measured: format!("NV/VS power ratio at K={k}: {ratio:.1} (K = {k})"),
        holds: ratio > 0.6 * k as f64,
    });

    // 3. Fig. 6: measured virtualized power decreases with K.
    let vs_first = find(&points, "VS", g, 1);
    checks.push(ClaimCheck {
        id: "fig6-decrease".into(),
        section: "§VI-A, Fig. 6".into(),
        statement: "experimental virtualized power decreases slightly with K".into(),
        measured: format!(
            "VS experimental: {:.3} W at K=1 → {:.3} W at K={k}",
            vs_first.experimental_w, vs.experimental_w
        ),
        holds: vs.experimental_w < vs_first.experimental_w,
    });

    // 4. §VI-B / Fig. 8: efficiency ordering VS < NV < VM.
    let vm_hi = find(&points, "VM (α≈0.8)", g, k);
    let vm_lo = find(&points, "VM (α≈0.2)", g, k);
    checks.push(ClaimCheck {
        id: "fig8-ordering".into(),
        section: "§VI-B, Fig. 8".into(),
        statement: "mW/Gbps: separate best, conventional second, merged worst".into(),
        measured: format!(
            "VS {:.1} < NV {:.1} < VM(α≈0.8) {:.1} ≤ VM(α≈0.2) {:.1}",
            vs.mw_per_gbps, nv.mw_per_gbps, vm_hi.mw_per_gbps, vm_lo.mw_per_gbps
        ),
        holds: vs.mw_per_gbps < nv.mw_per_gbps
            && nv.mw_per_gbps < vm_hi.mw_per_gbps
            && vm_hi.mw_per_gbps <= vm_lo.mw_per_gbps * 1.001,
    });

    // 5. §VI-B: -1L saves ≈30 % power.
    let vs_lo = find(&points, "VS", SpeedGrade::Minus1L, k);
    let saving = 1.0 - vs_lo.model_w / vs.model_w;
    checks.push(ClaimCheck {
        id: "lowpower-30pct".into(),
        section: "§VI-B".into(),
        statement: "-1L grade consumes ≈30 % less power than -2".into(),
        measured: format!("VS at K={k}: {:.1}% saving", saving * 100.0),
        holds: (0.2..=0.4).contains(&saving),
    });

    // 6. §VI-B: the grades' mW/Gbps is almost the same.
    let eff_gap = (vs_lo.mw_per_gbps - vs.mw_per_gbps).abs() / vs.mw_per_gbps;
    checks.push(ClaimCheck {
        id: "grades-same-efficiency".into(),
        section: "§VI-B".into(),
        statement: "both speed grades deliver almost the same mW/Gbps".into(),
        measured: format!("VS efficiency gap at K={k}: {:.1}%", eff_gap * 100.0),
        holds: eff_gap < 0.2,
    });

    // 7. §VI-A: separate hits the pin wall just past K = 15.
    let pin_limit = vr_fpga::io::max_engines(&Device::xc6vlx760());
    checks.push(ClaimCheck {
        id: "vs-pin-limit".into(),
        section: "§VI-A".into(),
        statement: "separate limited to 15 virtual networks by I/O pins".into(),
        measured: format!("max separate engines on XC6VLX760: {pin_limit}"),
        holds: pin_limit == 15,
    });

    // 8. §IV-C: merged throughput collapses with K.
    let vm_k = find(&points, "VM (α≈0.8)", g, k);
    let vm_1 = find(&points, "VM (α≈0.8)", g, 1);
    checks.push(ClaimCheck {
        id: "vm-clock-collapse".into(),
        section: "§IV-C, §VI-B".into(),
        statement: "merged operating frequency decreases significantly with K".into(),
        measured: format!(
            "VM clock: {:.0} MHz at K=1 → {:.0} MHz at K={k}",
            vm_1.freq_mhz, vm_k.freq_mhz
        ),
        holds: vm_k.freq_mhz < 0.75 * vm_1.freq_mhz,
    });

    Ok(checks)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_claim_holds_on_the_quick_configuration() {
        let checks = verify_claims(&ExperimentConfig::quick()).unwrap();
        assert_eq!(checks.len(), 8);
        for check in &checks {
            assert!(check.holds, "{}: {} — measured {}", check.id, check.statement, check.measured);
        }
        // Ids are unique (the checklist is keyed by them).
        let mut ids: Vec<&str> = checks.iter().map(|c| c.id.as_str()).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), checks.len());
    }
}

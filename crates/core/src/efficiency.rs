//! Power efficiency (§VI-B): mW per Gbps of lookup capacity.
//!
//! "A router may use more and more power to support higher throughput. In
//! order to compare such architectures with power efficient architectures,
//! we use the power dissipated per unit throughput as the metric" — lower
//! is better. Throughput is computed at the 40-byte minimum packet size.

use crate::models::analytical_power;
use crate::scenario::Scenario;
use serde::{Deserialize, Serialize};
use vr_fpga::timing::mw_per_gbps;
use vr_fpga::{SchemeKind, SpeedGrade};

/// One scheme's efficiency at one operating point (a point of Fig. 8).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EfficiencyPoint {
    /// Scheme evaluated.
    pub scheme: SchemeKind,
    /// Speed grade.
    pub grade: SpeedGrade,
    /// Number of virtual networks.
    pub k: usize,
    /// Analytical total power, in watts.
    pub power_w: f64,
    /// Aggregate lookup capacity, in Gbps (40-byte packets).
    pub capacity_gbps: f64,
    /// The metric: mW/Gbps (lower is better).
    pub mw_per_gbps: f64,
    /// Measured merging efficiency (merged scenarios).
    pub alpha: Option<f64>,
}

/// Computes the efficiency point of a scenario.
#[must_use]
pub fn efficiency_point(scenario: &Scenario) -> EfficiencyPoint {
    let estimate = analytical_power(scenario);
    let capacity = scenario.capacity_gbps();
    EfficiencyPoint {
        scheme: scenario.spec().scheme,
        grade: scenario.spec().grade,
        k: scenario.k(),
        power_w: estimate.total_w(),
        capacity_gbps: capacity,
        mw_per_gbps: mw_per_gbps(estimate.total_w(), capacity),
        alpha: scenario.alpha(),
    }
}

/// Ranks points best-first (ascending mW/Gbps).
#[must_use]
pub fn rank_best_first(mut points: Vec<EfficiencyPoint>) -> Vec<EfficiencyPoint> {
    points.sort_by(|a, b| {
        a.mw_per_gbps
            .partial_cmp(&b.mw_per_gbps)
            .expect("efficiency metric is never NaN")
    });
    points
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{Scenario, ScenarioSpec};
    use vr_fpga::Device;
    use vr_net::synth::FamilySpec;
    use vr_net::RoutingTable;

    fn family(k: usize) -> Vec<RoutingTable> {
        FamilySpec {
            k,
            prefixes_per_table: 250,
            shared_fraction: 0.6,
            seed: 5,
            distribution: vr_net::synth::PrefixLenDistribution::edge_default(),
            next_hops: 8,
        }
        .generate()
        .unwrap()
    }

    fn point(scheme: SchemeKind, k: usize) -> EfficiencyPoint {
        let s = Scenario::build(
            &family(k),
            ScenarioSpec::paper_default(scheme, SpeedGrade::Minus2),
            Device::xc6vlx760(),
        )
        .unwrap();
        efficiency_point(&s)
    }

    #[test]
    fn separate_efficiency_improves_with_k() {
        // Fig. 8: VS is best and gets better with K (static power shared
        // over growing aggregate capacity).
        let e2 = point(SchemeKind::Separate, 2);
        let e10 = point(SchemeKind::Separate, 10);
        assert!(e10.mw_per_gbps < e2.mw_per_gbps);
    }

    #[test]
    fn merged_efficiency_worsens_with_k() {
        // Fig. 8: VM's clock (hence capacity) collapses as K grows.
        let e2 = point(SchemeKind::Merged, 2);
        let e10 = point(SchemeKind::Merged, 10);
        assert!(e10.mw_per_gbps > e2.mw_per_gbps);
    }

    #[test]
    fn nv_efficiency_is_roughly_flat() {
        let e2 = point(SchemeKind::NonVirtualized, 2);
        let e12 = point(SchemeKind::NonVirtualized, 12);
        let rel = (e12.mw_per_gbps - e2.mw_per_gbps).abs() / e2.mw_per_gbps;
        assert!(rel < 0.15, "NV efficiency drifted {rel}");
    }

    #[test]
    fn ranking_orders_ascending() {
        let points = vec![
            point(SchemeKind::Merged, 10),
            point(SchemeKind::Separate, 10),
            point(SchemeKind::NonVirtualized, 10),
        ];
        let ranked = rank_best_first(points);
        assert_eq!(ranked[0].scheme, SchemeKind::Separate);
        assert_eq!(ranked[2].scheme, SchemeKind::Merged);
        assert!(ranked[0].mw_per_gbps <= ranked[1].mw_per_gbps);
    }
}

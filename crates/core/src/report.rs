//! Rendering experiment output: aligned text tables, CSV, and JSON files.
//!
//! The bench binaries print the same rows/series the paper reports; these
//! helpers keep that output consistent and machine-readable (CSV/JSON for
//! EXPERIMENTS.md bookkeeping).

use serde::Serialize;
use std::io;
use std::path::Path;

/// Renders an aligned text table with a header rule.
///
/// # Panics
/// Panics if any row's length differs from the header's (a programming
/// error in the caller's row construction).
#[must_use]
pub fn render_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    for row in rows {
        assert_eq!(row.len(), headers.len(), "row width must match headers");
    }
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: Vec<&str>, widths: &[usize]| -> String {
        let mut line = String::new();
        for (i, (cell, w)) in cells.iter().zip(widths).enumerate() {
            if i > 0 {
                line.push_str("  ");
            }
            line.push_str(&format!("{cell:<w$}"));
        }
        line.trim_end().to_string()
    };
    out.push_str(&fmt_row(headers.to_vec(), &widths));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row.iter().map(String::as_str).collect(), &widths));
        out.push('\n');
    }
    out
}

/// Renders rows as CSV (no quoting: experiment cells never contain commas).
#[must_use]
pub fn to_csv(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut out = headers.join(",");
    out.push('\n');
    for row in rows {
        out.push_str(&row.join(","));
        out.push('\n');
    }
    out
}

/// Serializes `value` as pretty JSON into `path`.
///
/// # Errors
/// I/O errors from file creation/write; serialization cannot fail for the
/// experiment row types.
pub fn write_json<T: Serialize>(path: &Path, value: &T) -> io::Result<()> {
    let json = serde_json::to_string_pretty(value)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
    std::fs::write(path, json)
}

/// Formats a float with `digits` decimal places (experiment cells).
#[must_use]
pub fn num(value: f64, digits: usize) -> String {
    format!("{value:.digits$}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_alignment() {
        let t = render_table(
            &["K", "power"],
            &[
                vec!["1".into(), "4.5".into()],
                vec!["15".into(), "67.5".into()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("K "));
        assert!(lines[1].chars().all(|c| c == '-'));
        assert!(lines[3].starts_with("15"));
        // Columns align: "power" starts at the same offset everywhere.
        let col = lines[0].find("power").unwrap();
        assert_eq!(&lines[2][col..col + 3], "4.5");
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn table_rejects_ragged_rows() {
        let _ = render_table(&["a", "b"], &[vec!["1".into()]]);
    }

    #[test]
    fn csv_round_trip_shape() {
        let csv = to_csv(
            &["k", "w"],
            &[vec!["1".into(), "4.5".into()], vec!["2".into(), "9".into()]],
        );
        assert_eq!(csv, "k,w\n1,4.5\n2,9\n");
    }

    #[test]
    fn json_write_and_num() {
        let dir = std::env::temp_dir().join("vr_power_report_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("out.json");
        write_json(&path, &vec![1.5, 2.5]).unwrap();
        let back: Vec<f64> =
            serde_json::from_str(&std::fs::read_to_string(&path).unwrap()).unwrap();
        assert_eq!(back, vec![1.5, 2.5]);
        assert_eq!(num(1.23456, 2), "1.23");
    }
}

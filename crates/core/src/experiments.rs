//! One entry point per table/figure of the paper's evaluation.
//!
//! Each function returns plain data rows; the bench binaries in `vr-bench`
//! render them (text table + CSV) and EXPERIMENTS.md records the
//! paper-vs-measured comparison. Integration tests assert the *shapes*
//! (who wins, what grows, where limits bind) on a reduced configuration.
//!
//! | Paper artifact | Function |
//! |---|---|
//! | Table II (device) | [`table2_rows`] |
//! | Fig. 2 (BRAM power vs f) | [`fig2_series`] |
//! | Table III (BRAM model) | [`table3_rows`] |
//! | Fig. 3 (logic power vs f) | [`fig3_series`] |
//! | Fig. 4 (memory vs K) | [`fig4_series`] |
//! | Figs. 5/6/7/8 (power sweep) | [`power_sweep`] |
//! | §V-A statics | [`statics_rows`] |
//! | §VI-B low-power saving | derived from [`power_sweep`] |
//! | Ablations (ours) | [`ablation_merged_memory`], [`ablation_gating`] |

use crate::models::analytical_power;
use crate::resources::MergedMemoryModel;
use crate::scenario::{Scenario, ScenarioSpec};
use crate::validate::validate_scenario;
use crate::PowerError;
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use vr_fpga::bram::single_block_power_mw;
use vr_fpga::logic::stage_logic_power_mw;
use vr_fpga::par::ParSimulator;
use vr_fpga::static_power::static_power_w;
use vr_fpga::timing::mw_per_gbps;
use vr_fpga::{BramMode, Device, SchemeKind, SpeedGrade};
use vr_net::synth::{FamilySpec, PrefixLenDistribution};
use vr_net::RoutingTable;
use vr_trie::calibrate::CalibrationSpec;
use vr_trie::pipeline_map::{MemoryLayout, PAPER_PIPELINE_STAGES};
use vr_trie::{LeafPushedTrie, MergedTrie, PipelineProfile, UnibitTrie};

/// Frequencies swept in Figs. 2 and 3 (MHz).
pub const FREQ_SWEEP_MHZ: [f64; 9] = [
    100.0, 150.0, 200.0, 250.0, 300.0, 350.0, 400.0, 450.0, 500.0,
];

/// Shared configuration of the workload-driven experiments.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExperimentConfig {
    /// Prefixes per virtual-network table (paper: 3725).
    pub prefixes_per_table: usize,
    /// Largest K for the power sweep (paper: 15, the VS pin limit).
    pub k_max: usize,
    /// Largest K for the memory figure (paper's Fig. 4 sweeps to 30).
    pub k_max_fig4: usize,
    /// Pipeline stages N (paper: 28).
    pub stages: usize,
    /// Seed for table-family generation.
    pub seed: u64,
    /// Low merging-efficiency target (paper: 0.2).
    pub alpha_low: f64,
    /// High merging-efficiency target (paper: 0.8).
    pub alpha_high: f64,
}

impl ExperimentConfig {
    /// The paper's configuration.
    #[must_use]
    pub fn paper() -> Self {
        Self {
            prefixes_per_table: vr_net::synth::PAPER_TABLE_PREFIXES,
            k_max: 15,
            k_max_fig4: 30,
            stages: PAPER_PIPELINE_STAGES,
            seed: 2012,
            alpha_low: 0.2,
            alpha_high: 0.8,
        }
    }

    /// A reduced configuration for tests (small tables, small K).
    #[must_use]
    pub fn quick() -> Self {
        Self {
            prefixes_per_table: 220,
            k_max: 6,
            k_max_fig4: 8,
            stages: PAPER_PIPELINE_STAGES,
            seed: 2012,
            alpha_low: 0.2,
            alpha_high: 0.8,
        }
    }

    /// Resolves the shared-prefix fractions realizing the two α targets,
    /// via bisection on a moderate-size probe family (α is only weakly K-
    /// dependent, so one calibration serves the whole sweep).
    #[must_use]
    pub fn resolve_shared_fractions(&self) -> (f64, f64) {
        let probe_prefixes = self.prefixes_per_table.min(600);
        let resolve = |target: f64, fallback: f64| {
            let spec = CalibrationSpec {
                tolerance: 0.06,
                ..CalibrationSpec::new(4.min(self.k_max.max(2)), probe_prefixes, target, self.seed)
            };
            match spec.run() {
                Ok(fam) => fam.shared_fraction,
                Err(_) => fallback,
            }
        };
        (
            resolve(self.alpha_low, 0.0),
            resolve(self.alpha_high, 0.95),
        )
    }

    /// Generates a K-table family with the given shared fraction.
    ///
    /// # Errors
    /// Propagates family-generation errors.
    pub fn family(&self, k: usize, shared_fraction: f64) -> Result<Vec<RoutingTable>, PowerError> {
        Ok(FamilySpec {
            k,
            prefixes_per_table: self.prefixes_per_table,
            shared_fraction,
            seed: self.seed,
            distribution: PrefixLenDistribution::edge_default(),
            next_hops: 16,
        }
        .generate()?)
    }
}

// ---------------------------------------------------------------------------
// Table II, Fig. 2, Table III, Fig. 3, §V-A — workload-free calibrations.
// ---------------------------------------------------------------------------

/// One row of Table II.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Table2Row {
    /// Resource name.
    pub resource: String,
    /// Amount, formatted as the paper reports it.
    pub amount: String,
}

/// Reproduces Table II for `device`.
#[must_use]
pub fn table2_rows(device: &Device) -> Vec<Table2Row> {
    let mbit = |bits: u64| format!("{:.0} Mb", bits as f64 / (1024.0 * 1024.0));
    vec![
        Table2Row {
            resource: "Logic Cells".into(),
            amount: format!("{}K", device.logic_cells / 1000),
        },
        Table2Row {
            resource: "Max. distributed RAM".into(),
            amount: mbit(device.distributed_ram_bits),
        },
        Table2Row {
            resource: "Block RAM".into(),
            amount: mbit(device.bram_bits()),
        },
        Table2Row {
            resource: "Max. I/O pins".into(),
            amount: device.io_pins.to_string(),
        },
    ]
}

/// One point of Fig. 2 (single-BRAM power vs frequency).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Fig2Point {
    /// Block granularity.
    pub mode: BramMode,
    /// Speed grade.
    pub grade: SpeedGrade,
    /// Operating frequency in MHz.
    pub freq_mhz: f64,
    /// Power of a single block, in mW.
    pub power_mw: f64,
}

/// Reproduces Fig. 2's four curves over [`FREQ_SWEEP_MHZ`].
#[must_use]
pub fn fig2_series() -> Vec<Fig2Point> {
    let mut out = Vec::new();
    for mode in BramMode::ALL {
        for grade in SpeedGrade::ALL {
            for &f in &FREQ_SWEEP_MHZ {
                out.push(Fig2Point {
                    mode,
                    grade,
                    freq_mhz: f,
                    power_mw: single_block_power_mw(mode, grade, f),
                });
            }
        }
    }
    out
}

/// One row of Table III.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table3Row {
    /// Setup label, e.g. `18Kb (-2)`.
    pub setup: String,
    /// Model: `⌈M/block⌉ × coeff × f` µW; this is the coefficient.
    pub uw_per_block_mhz: f64,
}

/// Reproduces Table III.
#[must_use]
pub fn table3_rows() -> Vec<Table3Row> {
    let mut out = Vec::new();
    for mode in BramMode::ALL {
        for grade in SpeedGrade::ALL {
            out.push(Table3Row {
                setup: format!("{mode} ({grade})"),
                uw_per_block_mhz: mode.uw_per_block_mhz(grade),
            });
        }
    }
    out
}

/// One point of Fig. 3 (per-stage logic power vs frequency).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Fig3Point {
    /// Speed grade.
    pub grade: SpeedGrade,
    /// Operating frequency in MHz.
    pub freq_mhz: f64,
    /// Per-stage logic+signal power, in mW.
    pub power_mw: f64,
}

/// Reproduces Fig. 3's curves over [`FREQ_SWEEP_MHZ`].
#[must_use]
pub fn fig3_series() -> Vec<Fig3Point> {
    let mut out = Vec::new();
    for grade in SpeedGrade::ALL {
        for &f in &FREQ_SWEEP_MHZ {
            out.push(Fig3Point {
                grade,
                freq_mhz: f,
                power_mw: stage_logic_power_mw(grade, f),
            });
        }
    }
    out
}

/// One row of the §V-A static-power summary.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StaticsRow {
    /// Speed grade.
    pub grade: SpeedGrade,
    /// Lower edge of the ±5 % band, in watts.
    pub min_w: f64,
    /// Reported base value, in watts.
    pub base_w: f64,
    /// Upper edge of the ±5 % band, in watts.
    pub max_w: f64,
}

/// Reproduces the §V-A static-power figures.
#[must_use]
pub fn statics_rows() -> Vec<StaticsRow> {
    SpeedGrade::ALL
        .iter()
        .map(|&grade| StaticsRow {
            grade,
            min_w: static_power_w(grade, 0.0),
            base_w: grade.static_base_w(),
            max_w: static_power_w(grade, 1.0),
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Fig. 4 — pointer and NHI memory vs K.
// ---------------------------------------------------------------------------

/// One point of Fig. 4.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig4Point {
    /// Series label: `separate`, `merged (α≈0.8)` or `merged (α≈0.2)`.
    pub series: String,
    /// Number of virtual networks.
    pub k: usize,
    /// Pointer (non-leaf) memory, in Mbit.
    pub pointer_mbits: f64,
    /// NHI (leaf) memory, in Mbit.
    pub nhi_mbits: f64,
    /// Merging efficiency measured on the merged trie (merged series).
    pub measured_alpha: Option<f64>,
}

const MBIT: f64 = 1024.0 * 1024.0;

/// Fans independent sweep points across threads, one scoped thread per
/// point (every sweep here has at most a few dozen), and returns the
/// results in input order. The first failing point's error is returned.
///
/// All the workload experiments decompose this way: each point builds its
/// own tables/tries/scenarios from shared read-only inputs, so the sweeps
/// are embarrassingly parallel and wall-clock shrinks to the slowest
/// point.
fn fan_out<P, R, F>(points: Vec<P>, work: F) -> Result<Vec<R>, PowerError>
where
    P: Send,
    R: Send,
    F: Fn(P) -> Result<R, PowerError> + Sync,
{
    let slots: Mutex<Vec<Option<Result<R, PowerError>>>> =
        Mutex::new(points.iter().map(|_| None).collect());
    crossbeam::thread::scope(|scope| {
        for (i, point) in points.into_iter().enumerate() {
            let slots = &slots;
            let work = &work;
            scope.spawn(move |_| {
                let result = work(point);
                slots.lock()[i] = Some(result);
            });
        }
    })
    .expect("experiment worker panicked");
    slots
        .into_inner()
        .into_iter()
        .map(|slot| slot.expect("worker filled its slot"))
        .collect()
}

/// Reproduces Fig. 4: memory requirements of the merged scheme (at the two
/// α targets) and the separate scheme, as K grows.
///
/// # Errors
/// Propagates family-generation and trie errors.
pub fn fig4_series(cfg: &ExperimentConfig) -> Result<Vec<Fig4Point>, PowerError> {
    let (frac_low, frac_high) = cfg.resolve_shared_fractions();
    let layout = MemoryLayout::default();
    let per_k = fan_out((1..=cfg.k_max_fig4).collect(), |k| {
        let mut points = Vec::new();
        // Separate: K independent leaf-pushed tries.
        let tables = cfg.family(k, frac_high)?;
        let (mut ptr_bits, mut nhi_bits) = (0u64, 0u64);
        for table in &tables {
            let lp = LeafPushedTrie::from_unibit(&UnibitTrie::from_table(table));
            let profile = PipelineProfile::for_single(&lp, cfg.stages, layout)?;
            ptr_bits += profile.pointer_memory_bits();
            nhi_bits += profile.nhi_memory_bits();
        }
        points.push(Fig4Point {
            series: "separate".into(),
            k,
            pointer_mbits: ptr_bits as f64 / MBIT,
            nhi_mbits: nhi_bits as f64 / MBIT,
            measured_alpha: None,
        });
        // Merged at the two α targets.
        for (label, frac) in [
            ("merged (α≈0.8)", frac_high),
            ("merged (α≈0.2)", frac_low),
        ] {
            let tables = cfg.family(k, frac)?;
            let merged = MergedTrie::from_tables(&tables)?;
            let pushed = merged.leaf_pushed();
            let profile = PipelineProfile::for_merged(&pushed, cfg.stages, layout)?;
            points.push(Fig4Point {
                series: label.into(),
                k,
                pointer_mbits: profile.pointer_memory_bits() as f64 / MBIT,
                nhi_mbits: profile.nhi_memory_bits() as f64 / MBIT,
                measured_alpha: Some(merged.merging_efficiency()),
            });
        }
        Ok(points)
    })?;
    let mut out: Vec<Fig4Point> = per_k.into_iter().flatten().collect();
    out.sort_by(|a, b| (a.k, &a.series).cmp(&(b.k, &b.series)));
    Ok(out)
}

// ---------------------------------------------------------------------------
// Figs. 5–8 — the power sweep.
// ---------------------------------------------------------------------------

/// One configuration point of the Figs. 5–8 sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepPoint {
    /// Series label: `NV`, `VS`, `VM (α≈0.2)`, `VM (α≈0.8)`.
    pub series: String,
    /// Scheme.
    pub scheme: SchemeKind,
    /// Speed grade.
    pub grade: SpeedGrade,
    /// Number of virtual networks.
    pub k: usize,
    /// Measured merging efficiency (merged series).
    pub alpha: Option<f64>,
    /// Analytical total power (Figs. 5/6 model side), in watts.
    pub model_w: f64,
    /// Simulated post-PAR power (Figs. 5/6 experimental side), in watts.
    pub experimental_w: f64,
    /// Fig. 7's percentage error.
    pub error_pct: f64,
    /// Aggregate capacity, in Gbps.
    pub capacity_gbps: f64,
    /// Fig. 8's metric (over experimental power), in mW/Gbps.
    pub mw_per_gbps: f64,
    /// Operating frequency, in MHz.
    pub freq_mhz: f64,
}

/// Runs the full Figs. 5–8 sweep: K = 1..=k_max × {NV, VS, VM(α_low),
/// VM(α_high)} × both speed grades.
///
/// # Errors
/// Propagates scenario construction errors (VS points beyond the pin limit
/// are impossible with the paper's k_max = 15 and are an error otherwise).
pub fn power_sweep(cfg: &ExperimentConfig) -> Result<Vec<SweepPoint>, PowerError> {
    let (frac_low, frac_high) = cfg.resolve_shared_fractions();
    let par = ParSimulator::default();
    let per_k = fan_out((1..=cfg.k_max).collect(), |k| {
        let mut points = Vec::new();
        let tables_high = cfg.family(k, frac_high)?;
        let tables_low = cfg.family(k, frac_low)?;
        for grade in SpeedGrade::ALL {
            let mut eval = |series: &str,
                            scheme: SchemeKind,
                            tables: &[RoutingTable],
                            merged_memory: MergedMemoryModel|
             -> Result<(), PowerError> {
                let spec = ScenarioSpec {
                    stages: cfg.stages,
                    merged_memory,
                    ..ScenarioSpec::paper_default(scheme, grade)
                };
                let scenario = Scenario::build(tables, spec, Device::xc6vlx760())?;
                let point = validate_scenario(&scenario, &par);
                let capacity = scenario.capacity_gbps();
                points.push(SweepPoint {
                    series: series.into(),
                    scheme,
                    grade,
                    k,
                    alpha: scenario.alpha(),
                    model_w: point.model_w,
                    experimental_w: point.experimental_w,
                    error_pct: point.error_pct,
                    capacity_gbps: capacity,
                    mw_per_gbps: mw_per_gbps(point.experimental_w, capacity),
                    freq_mhz: scenario.freq_mhz(),
                });
                Ok(())
            };
            eval(
                "NV",
                SchemeKind::NonVirtualized,
                &tables_high,
                MergedMemoryModel::Structural,
            )?;
            eval(
                "VS",
                SchemeKind::Separate,
                &tables_high,
                MergedMemoryModel::Structural,
            )?;
            eval(
                "VM (α≈0.8)",
                SchemeKind::Merged,
                &tables_high,
                MergedMemoryModel::Structural,
            )?;
            eval(
                "VM (α≈0.2)",
                SchemeKind::Merged,
                &tables_low,
                MergedMemoryModel::Structural,
            )?;
        }
        Ok(points)
    })?;
    let mut out: Vec<SweepPoint> = per_k.into_iter().flatten().collect();
    out.sort_by(|a, b| {
        (a.k, &a.series, a.grade.label()).cmp(&(b.k, &b.series, b.grade.label()))
    });
    Ok(out)
}

// ---------------------------------------------------------------------------
// Ablations.
// ---------------------------------------------------------------------------

/// One row of the merged-memory-model ablation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AblationMergedMemRow {
    /// Number of virtual networks.
    pub k: usize,
    /// α plugged into the literal Eq. 5 (= the measured structural α).
    pub alpha: f64,
    /// Literal Eq. 5 total memory, in Mbit.
    pub literal_mbits: f64,
    /// Structural (actually merged) total memory, in Mbit.
    pub structural_mbits: f64,
}

/// Compares Eq. 5 as printed against the structural merged memory
/// (DESIGN.md §3) across K.
///
/// # Errors
/// Propagates scenario construction errors.
pub fn ablation_merged_memory(
    cfg: &ExperimentConfig,
) -> Result<Vec<AblationMergedMemRow>, PowerError> {
    let (_, frac_high) = cfg.resolve_shared_fractions();
    fan_out((1..=cfg.k_max).collect(), |k| {
        let tables = cfg.family(k, frac_high)?;
        let structural = Scenario::build(
            &tables,
            ScenarioSpec {
                stages: cfg.stages,
                ..ScenarioSpec::paper_default(SchemeKind::Merged, SpeedGrade::Minus2)
            },
            Device::xc6vlx760(),
        )?;
        let alpha = structural.alpha().expect("merged scenario has alpha");
        let literal = Scenario::build(
            &tables,
            ScenarioSpec {
                stages: cfg.stages,
                merged_memory: MergedMemoryModel::PaperLiteral { alpha },
                ..ScenarioSpec::paper_default(SchemeKind::Merged, SpeedGrade::Minus2)
            },
            Device::xc6vlx760(),
        )?;
        Ok(AblationMergedMemRow {
            k,
            alpha,
            literal_mbits: literal.resources().memory_bits as f64 / MBIT,
            structural_mbits: structural.resources().memory_bits as f64 / MBIT,
        })
    })
}

/// One row of the clock-gating ablation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GatingRow {
    /// Offered load (≈ duty cycle).
    pub offered_load: f64,
    /// Simulated dynamic power with the paper's gating, in watts.
    pub gated_dynamic_w: f64,
    /// Simulated dynamic power with no power management, in watts.
    pub ungated_dynamic_w: f64,
}

/// Sweeps the offered load and compares gated vs ungated dynamic power on
/// a separate-scheme simulation (§IV's idle-mode argument, quantified).
///
/// # Errors
/// Propagates simulator errors.
pub fn ablation_gating(cfg: &ExperimentConfig, k: usize) -> Result<Vec<GatingRow>, PowerError> {
    use vr_engine::{ArrivalModel, EngineConfig, SimConfig, VirtualRouterSim};
    use vr_net::{TrafficGenerator, TrafficSpec};

    let (_, frac_high) = cfg.resolve_shared_fractions();
    let tables = cfg.family(k, frac_high)?;
    let packets = 2000u64;
    fan_out(vec![0.1, 0.25, 0.5, 0.75, 1.0], |load| {
        let run = |gating| -> Result<f64, PowerError> {
            let sim_cfg = SimConfig {
                organization: SchemeKind::Separate,
                stages: cfg.stages,
                engine: EngineConfig {
                    grade: SpeedGrade::Minus2,
                    bram_mode: BramMode::K18,
                    gating,
                    freq_mhz: SpeedGrade::Minus2.base_clock_mhz(),
                },
                arrivals: ArrivalModel::SharedLine { offered_load: load },
                arrival_seed: cfg.seed,
            };
            let mut sim = VirtualRouterSim::new(tables.clone(), sim_cfg)?;
            let mut traffic =
                TrafficGenerator::new(TrafficSpec::uniform(k, cfg.seed), &tables)?;
            let report = sim.run(&mut traffic, packets)?;
            Ok(report.dynamic_power_w())
        };
        Ok(GatingRow {
            offered_load: load,
            gated_dynamic_w: run(vr_fpga::gating::GatingPolicy::PAPER)?,
            ungated_dynamic_w: run(vr_fpga::gating::GatingPolicy::NONE)?,
        })
    })
}

/// One row of the stride ablation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StrideRow {
    /// Uniform stride width in bits.
    pub stride: u8,
    /// Pipeline stages (= 32 / stride).
    pub stages: usize,
    /// Total expanded entries (memory words).
    pub entries: usize,
    /// Total memory in Mbit.
    pub memory_mbits: f64,
    /// 18 Kb BRAM blocks after per-stage quantization.
    pub bram_blocks: u64,
    /// Dynamic (logic + memory) power at the base -2 clock, in watts.
    pub dynamic_w: f64,
    /// Lookup latency in cycles (= stages).
    pub latency_cycles: usize,
}

/// Ablation (ours, after paper refs. [7][8]): the multi-bit stride
/// depth/memory/power trade-off on the worst-case table. Wider strides
/// shorten the pipeline (less logic power, lower latency) but expand
/// memory via CPE (more BRAM power).
///
/// # Errors
/// Propagates table-generation and trie errors.
pub fn ablation_stride(cfg: &ExperimentConfig) -> Result<Vec<StrideRow>, PowerError> {
    use vr_trie::StrideTrie;
    let table = vr_net::synth::TableSpec {
        prefixes: cfg.prefixes_per_table,
        seed: cfg.seed,
        distribution: PrefixLenDistribution::edge_default(),
        clustering: Some(vr_net::synth::ClusterSpec::edge_default(cfg.prefixes_per_table)),
        include_default_route: true,
        next_hops: 16,
    }
    .generate()?;
    // One 32-bit stage word: 8-bit NHI + 6-bit original length + 18-bit
    // child pointer.
    const ENTRY_BITS: u32 = 32;
    let grade = SpeedGrade::Minus2;
    let f = grade.base_clock_mhz();
    fan_out(vec![1u8, 2, 4, 8], |stride| {
        let trie = StrideTrie::from_table(&table, &vec![stride; 32 / usize::from(stride)])?;
        let per_stage = trie.per_stage_memory_bits(ENTRY_BITS);
        let blocks = vr_fpga::bram::blocks_for_stages(BramMode::K18, &per_stage);
        let memory_bits: u64 = per_stage.iter().sum();
        let dynamic_w = vr_fpga::logic::pipeline_logic_power_w(grade, trie.levels(), f)
            + vr_fpga::bram::bram_power_w(BramMode::K18, grade, blocks, f);
        Ok(StrideRow {
            stride,
            stages: trie.levels(),
            entries: trie.entry_count(),
            memory_mbits: memory_bits as f64 / MBIT,
            bram_blocks: blocks,
            dynamic_w,
            latency_cycles: trie.levels(),
        })
    })
}

/// One row of the stage-balancing ablation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BalanceRow {
    /// Pipeline stages.
    pub stages: usize,
    /// Critical-stage memory with the even level-per-stage split, Kbit.
    pub even_max_kbits: f64,
    /// Critical-stage memory with the balanced partition, Kbit.
    pub balanced_max_kbits: f64,
    /// BRAM blocks (18 Kb) under the even split.
    pub even_blocks: u64,
    /// BRAM blocks (18 Kb) under the balanced partition.
    pub balanced_blocks: u64,
}

/// Ablation (ours, after paper refs. [7][8]): memory-balanced level→stage
/// partitioning vs the even split, on the worst-case table.
///
/// # Errors
/// Propagates table-generation and trie errors.
pub fn ablation_balance(cfg: &ExperimentConfig) -> Result<Vec<BalanceRow>, PowerError> {
    let table = vr_net::synth::TableSpec::paper_worst_case(cfg.seed).generate()?;
    let lp = LeafPushedTrie::from_unibit(&UnibitTrie::from_table(&table));
    let stats = lp.stats();
    let layout = MemoryLayout::default();
    fan_out(vec![4usize, 8, 16, 28], |stages| {
        let even = PipelineProfile::from_stats(&stats, stages, 1, layout)?;
        let balanced = PipelineProfile::balanced(&stats, stages, 1, layout)?;
        Ok(BalanceRow {
            stages,
            even_max_kbits: even.max_stage_memory_bits() as f64 / 1024.0,
            balanced_max_kbits: balanced.max_stage_memory_bits() as f64 / 1024.0,
            even_blocks: vr_fpga::bram::blocks_for_stages(
                BramMode::K18,
                &even.per_stage_memory_bits(),
            ),
            balanced_blocks: vr_fpga::bram::blocks_for_stages(
                BramMode::K18,
                &balanced.per_stage_memory_bits(),
            ),
        })
    })
}

/// One row of the TCAM baseline comparison.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TcamRow {
    /// Engine label.
    pub engine: String,
    /// Number of virtual networks.
    pub k: usize,
    /// Total power, in watts.
    pub power_w: f64,
    /// Throughput, in Gbps.
    pub throughput_gbps: f64,
    /// Efficiency, in mW/Gbps.
    pub mw_per_gbps: f64,
}

/// Baseline comparison (§II-B, refs. [20][10]): the paper's trie engines
/// vs TCAM organizations holding the same K merged tables.
///
/// # Errors
/// Propagates scenario construction errors.
pub fn tcam_comparison(cfg: &ExperimentConfig) -> Result<Vec<TcamRow>, PowerError> {
    use vr_fpga::tcam::TcamSpec;
    let (_, frac_high) = cfg.resolve_shared_fractions();
    let ks: Vec<usize> = [1usize, cfg.k_max / 2, cfg.k_max]
        .into_iter()
        .map(|k| k.max(1))
        .collect();
    let per_k = fan_out(ks, |k| {
        let mut rows = Vec::new();
        let tables = cfg.family(k, frac_high)?;
        let scenario = Scenario::build(
            &tables,
            ScenarioSpec {
                stages: cfg.stages,
                ..ScenarioSpec::paper_default(SchemeKind::Separate, SpeedGrade::Minus2)
            },
            Device::xc6vlx760(),
        )?;
        let estimate = analytical_power(&scenario);
        rows.push(TcamRow {
            engine: "FPGA trie (VS)".into(),
            k,
            power_w: estimate.total_w(),
            throughput_gbps: scenario.capacity_gbps(),
            mw_per_gbps: vr_fpga::timing::mw_per_gbps(
                estimate.total_w(),
                scenario.capacity_gbps(),
            ),
        });
        let entries = k * cfg.prefixes_per_table;
        for (label, spec) in [
            ("TCAM monolithic", TcamSpec::monolithic(entries)),
            ("TCAM partitioned (8)", TcamSpec::partitioned(entries, 8)),
            ("IPStash-like", TcamSpec::ipstash(entries)),
        ] {
            rows.push(TcamRow {
                engine: label.into(),
                k,
                power_w: spec.total_power_w(),
                throughput_gbps: spec.throughput_gbps(),
                mw_per_gbps: spec.mw_per_gbps(),
            });
        }
        Ok(rows)
    })?;
    Ok(per_k.into_iter().flatten().collect())
}

/// One row of the update-cost experiment.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct UpdateRow {
    /// Updates applied.
    pub updates: usize,
    /// Mean stage-memory writes per update (≈ touched path length).
    pub mean_writes_per_update: f64,
    /// Merged-trie node count before the churn.
    pub nodes_before: usize,
    /// Merged-trie node count after the churn.
    pub nodes_after: usize,
    /// Table-write rate implied by one update per this many lookups.
    pub write_rate: f64,
    /// Merged-engine BRAM power at that write rate (W), via the §V-B
    /// write-rate extension of the Table III model.
    pub bram_power_w: f64,
}

/// Update-cost experiment (after paper ref. [6]): applies an
/// announce/withdraw stream to the merged trie and prices the resulting
/// write rate with the write-aware Table III model.
///
/// # Errors
/// Propagates generation and trie errors.
pub fn update_cost(cfg: &ExperimentConfig, k: usize) -> Result<Vec<UpdateRow>, PowerError> {
    use vr_net::{UpdateMix, UpdateStream};
    use vr_trie::MergedTrie;
    let (_, frac_high) = cfg.resolve_shared_fractions();
    let tables = cfg.family(k, frac_high)?;
    let mut merged = MergedTrie::from_tables(&tables)?;
    let mut stream = UpdateStream::new(tables, UpdateMix::default(), 16, cfg.seed)?;

    let grade = SpeedGrade::Minus2;
    let mut rows = Vec::new();
    for &updates in &[200usize, 1000] {
        let nodes_before = merged.node_count();
        let mut writes = 0u64;
        for update in stream.batch(updates) {
            match update {
                vr_net::RouteUpdate::Announce {
                    vnid,
                    prefix,
                    next_hop,
                } => {
                    writes += u64::from(prefix.len()) + 1;
                    merged.insert(usize::from(vnid), prefix, next_hop);
                }
                vr_net::RouteUpdate::Withdraw { vnid, prefix } => {
                    writes += u64::from(prefix.len()) + 1;
                    merged.remove(usize::from(vnid), &prefix);
                }
            }
        }
        let nodes_after = merged.node_count();
        // Price a deployment seeing one update per 100 lookups (1 %
        // write rate, the paper's reference) scaled by the mean writes.
        let mean_writes = writes as f64 / updates as f64;
        let write_rate = (0.01 * mean_writes / 29.0).min(1.0); // 29 ≈ path writes at reference
        let pushed = merged.leaf_pushed();
        let profile = PipelineProfile::for_merged(&pushed, cfg.stages, MemoryLayout::default())?;
        let blocks = vr_fpga::bram::blocks_for_stages(
            BramMode::K18,
            &profile.per_stage_memory_bits(),
        );
        rows.push(UpdateRow {
            updates,
            mean_writes_per_update: mean_writes,
            nodes_before,
            nodes_after,
            write_rate,
            bram_power_w: vr_fpga::bram::bram_power_w_with_writes(
                BramMode::K18,
                grade,
                blocks,
                grade.base_clock_mhz(),
                write_rate,
            ),
        });
    }
    Ok(rows)
}

/// One row of the latency comparison.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LatencyRow {
    /// Engine label.
    pub engine: String,
    /// Pipeline depth in cycles.
    pub cycles: usize,
    /// Operating clock in MHz.
    pub clock_mhz: f64,
    /// Lookup latency in nanoseconds.
    pub latency_ns: f64,
}

/// Latency comparison (§I ties virtualization to preserved latency
/// guarantees): the uni-bit organizations at their achievable clocks vs
/// depth-bounded stride engines at the base clock.
///
/// # Errors
/// Propagates scenario construction errors.
pub fn latency_comparison(cfg: &ExperimentConfig, k: usize) -> Result<Vec<LatencyRow>, PowerError> {
    let (_, frac_high) = cfg.resolve_shared_fractions();
    let tables = cfg.family(k, frac_high)?;
    let grade = SpeedGrade::Minus2;
    let uni_bit_points = vec![
        ("NV / VS uni-bit", SchemeKind::Separate),
        ("VM uni-bit", SchemeKind::Merged),
    ];
    let mut rows = fan_out(uni_bit_points, |(label, scheme)| {
        let scenario = Scenario::build(
            &tables,
            ScenarioSpec {
                stages: cfg.stages,
                ..ScenarioSpec::paper_default(scheme, grade)
            },
            Device::xc6vlx760(),
        )?;
        Ok(LatencyRow {
            engine: label.into(),
            cycles: cfg.stages,
            clock_mhz: scenario.freq_mhz(),
            latency_ns: cfg.stages as f64 / scenario.freq_mhz() * 1e3,
        })
    })?;
    for stride in [2u8, 4, 8] {
        let levels = 32 / usize::from(stride);
        let f = grade.base_clock_mhz();
        rows.push(LatencyRow {
            engine: format!("stride-{stride} multi-bit"),
            cycles: levels,
            clock_mhz: f,
            latency_ns: levels as f64 / f * 1e3,
        });
    }
    Ok(rows)
}

/// One row of the utilization study.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UtilizationRow {
    /// Traffic-skew label.
    pub traffic: String,
    /// Scheme label.
    pub scheme: String,
    /// Total power, in watts.
    pub total_w: f64,
    /// Dynamic component, in watts.
    pub dynamic_w: f64,
}

/// Utilization study (§IV-A: "more complex distributions can be modeled
/// by appropriately changing the µᵢ values"), on a *heterogeneous* family
/// (Assumption 2 relaxed): with unequal tables, where the traffic lands
/// changes the µ-weighted dynamic power — concentrating load on the
/// largest table costs more BRAM energy than on the smallest, while the
/// merged engine (no µ in Eq. 6) is indifferent.
///
/// # Errors
/// Propagates generation and scenario errors.
pub fn utilization_study(cfg: &ExperimentConfig) -> Result<Vec<UtilizationRow>, PowerError> {
    let p = cfg.prefixes_per_table;
    let sizes = [p, p / 2, p / 4, (p / 8).max(16)];
    let tables = vr_net::synth::generate_heterogeneous(
        &sizes,
        0.4,
        cfg.seed,
        &PrefixLenDistribution::edge_default(),
        16,
    )?;
    let k = tables.len();
    let variants: [(&str, Vec<f64>); 3] = [
        ("uniform", vec![1.0; k]),
        ("hot-largest", vec![8.0, 2.0, 1.0, 1.0]),
        ("hot-smallest", vec![1.0, 1.0, 2.0, 8.0]),
    ];
    let mut points = Vec::new();
    for (label, mu) in variants {
        for scheme in [SchemeKind::Separate, SchemeKind::Merged] {
            points.push((label, mu.clone(), scheme));
        }
    }
    fan_out(points, |(label, mu, scheme)| {
        let scenario = Scenario::build(
            &tables,
            ScenarioSpec {
                stages: cfg.stages,
                utilization: Some(mu),
                ..ScenarioSpec::paper_default(scheme, SpeedGrade::Minus2)
            },
            Device::xc6vlx760(),
        )?;
        let estimate = analytical_power(&scenario);
        Ok(UtilizationRow {
            traffic: label.into(),
            scheme: scheme.label().into(),
            total_w: estimate.total_w(),
            dynamic_w: estimate.dynamic_w(),
        })
    })
}

/// One row of the multi-way pipelining study.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MultiwayRow {
    /// Split bits s (2^s ways).
    pub split_bits: u8,
    /// Number of sub-pipelines.
    pub ways: usize,
    /// Stages per sub-pipeline.
    pub stages_per_way: usize,
    /// Total leaf-pushed nodes across ways.
    pub total_nodes: usize,
    /// Memory-balance factor (max way / mean way).
    pub balance_factor: f64,
    /// Simulated mean lookup latency, in cycles.
    pub latency_cycles: f64,
    /// Simulated dynamic energy per lookup, in pJ.
    pub energy_per_lookup_pj: f64,
    /// Simulated dynamic power at a saturated input, in watts.
    pub dynamic_power_w: f64,
}

/// Multi-way pipelining study (paper ref. [7]): split the worst-case
/// table into 2^s re-rooted sub-pipelines and measure — on the cycle-level
/// simulator — how latency and per-lookup energy fall as only the
/// addressed way activates per lookup.
///
/// # Errors
/// Propagates generation, partition and engine errors.
pub fn multiway_study(cfg: &ExperimentConfig) -> Result<Vec<MultiwayRow>, PowerError> {
    use vr_engine::{EngineConfig, MultiwayEngine};
    use vr_trie::PartitionedTrie;

    let table = vr_net::synth::TableSpec::paper_worst_case(cfg.seed).generate()?;
    let inputs: Vec<(vr_net::VnId, u32)> = table
        .prefixes()
        .map(|p| (0, p.addr() | 1))
        .take(2000)
        .collect();
    fan_out(vec![0u8, 1, 2, 3, 4], |split| {
        let partition = PartitionedTrie::from_table(&table, split)?;
        let (ways, total_nodes, balance) = (
            partition.ways(),
            partition.total_nodes(),
            partition.balance_factor(),
        );
        let mut engine = MultiwayEngine::new(partition, EngineConfig::paper_default())?;
        for done in engine.run_batch(&inputs) {
            debug_assert_eq!(done.next_hop, table.lookup(done.dst));
        }
        let stats = engine.stats();
        Ok(MultiwayRow {
            split_bits: split,
            ways,
            stages_per_way: engine.stages_per_way(),
            total_nodes,
            balance_factor: balance,
            latency_cycles: stats.mean_latency_cycles(),
            energy_per_lookup_pj: (stats.logic_energy_pj + stats.bram_energy_pj)
                / stats.completed.max(1) as f64,
            dynamic_power_w: stats.dynamic_power_w(SpeedGrade::Minus2.base_clock_mhz()),
        })
    })
}

/// One row of the queueing study.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct QueueingRow {
    /// Packets per burst (1 = smooth arrivals).
    pub burst_len: usize,
    /// Mean distributor queueing delay, in cycles.
    pub mean_wait_cycles: f64,
    /// Deepest distributor queue observed.
    pub max_queue_depth: usize,
    /// Achieved throughput, in Gbps.
    pub throughput_gbps: f64,
    /// All lookups matched the oracle.
    pub fully_correct: bool,
}

/// Queueing study: burstiness vs distributor queueing delay on the
/// separate scheme (the Fig. 1 distributor made concrete). Mean offered
/// load is held at ~1 packet/cycle while the burst length grows, so any
/// added delay is purely a burstiness effect — the QoS angle of §I's
/// "ensuring the throughput and latency requirements guaranteed
/// originally".
///
/// # Errors
/// Propagates generation and simulator errors.
pub fn queueing_study(cfg: &ExperimentConfig, k: usize) -> Result<Vec<QueueingRow>, PowerError> {
    use vr_engine::{ArrivalModel, EngineConfig, SimConfig, VirtualRouterSim};
    use vr_net::{TrafficGenerator, TrafficSpec};
    let (_, frac_high) = cfg.resolve_shared_fractions();
    let tables = cfg.family(k, frac_high)?;
    fan_out(vec![1usize, 2, 4, 8, 16], |burst_len| {
        let sim_cfg = SimConfig {
            organization: SchemeKind::Separate,
            stages: cfg.stages,
            engine: EngineConfig::paper_default(),
            arrivals: ArrivalModel::Bursty {
                burst_probability: 1.0 / burst_len as f64,
                burst_len,
            },
            arrival_seed: cfg.seed,
        };
        let mut sim = VirtualRouterSim::new(tables.clone(), sim_cfg)?;
        let mut traffic = TrafficGenerator::new(TrafficSpec::uniform(k, cfg.seed), &tables)?;
        let report = sim.run(&mut traffic, 4000)?;
        Ok(QueueingRow {
            burst_len,
            mean_wait_cycles: report.mean_queue_wait_cycles(),
            max_queue_depth: report.max_queue_depth,
            throughput_gbps: report.achieved_throughput_gbps(),
            fully_correct: report.is_fully_correct(),
        })
    })
}

/// One row of the thermal study.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ThermalRow {
    /// Scheme label.
    pub scheme: String,
    /// Speed grade.
    pub grade: SpeedGrade,
    /// Nominal (temperature-uncorrected) total power, in watts.
    pub nominal_w: f64,
    /// Thermally self-consistent total power across devices, in watts.
    pub thermal_w: f64,
    /// Hottest device's junction temperature, in °C.
    pub junction_c: f64,
    /// Every device found a stable operating point.
    pub converged: bool,
}

/// Thermal study (extension of §V-A's temperature note and §II-B's
/// cooling motivation): solve each scheme's self-consistent leakage ↔
/// temperature fixed point. Consolidation concentrates heat in one device
/// — it runs hotter and leaks more than any single NV device — but the
/// fleet total still collapses by ~K.
///
/// # Errors
/// Propagates generation and scenario errors.
pub fn thermal_study(cfg: &ExperimentConfig, k: usize) -> Result<Vec<ThermalRow>, PowerError> {
    use vr_fpga::thermal::ThermalModel;
    let (_, frac_high) = cfg.resolve_shared_fractions();
    let tables = cfg.family(k, frac_high)?;
    let thermal = ThermalModel::default();
    let mut points = Vec::new();
    for grade in SpeedGrade::ALL {
        for scheme in SchemeKind::ALL {
            points.push((grade, scheme));
        }
    }
    fan_out(points, |(grade, scheme)| {
        let scenario = Scenario::build(
            &tables,
            ScenarioSpec {
                stages: cfg.stages,
                ..ScenarioSpec::paper_default(scheme, grade)
            },
            Device::xc6vlx760(),
        )?;
        let estimate = analytical_power(&scenario);
        let devices = scenario.devices() as f64;
        // Per-device load: NV spreads the dynamic power over K
        // devices; the virtualized schemes concentrate it in one.
        let per_device_dynamic = estimate.dynamic_w() / devices;
        let per_device_static_ref = estimate.static_w / devices;
        let point = thermal.solve(per_device_dynamic, per_device_static_ref);
        Ok(ThermalRow {
            scheme: scheme.label().into(),
            grade,
            nominal_w: estimate.total_w(),
            thermal_w: point.total_w * devices,
            junction_c: point.junction_c,
            converged: point.converged,
        })
    })
}

/// One row of the device sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeviceRow {
    /// Device name.
    pub device: String,
    /// Largest VS engine count the device's pins admit.
    pub max_vs_engines: usize,
    /// Whether the VS design at the requested K fits every resource.
    pub fits: bool,
    /// VS total power at K when it fits, in watts.
    pub power_w: Option<f64>,
    /// VS efficiency at K when it fits, in mW/Gbps.
    pub mw_per_gbps: Option<f64>,
}

/// Device sweep (extension of the paper's §VI device-family exploration):
/// walk the Virtex-6 catalog and find the smallest device that still fits
/// the K-engine separate design — smaller dies leak proportionally less,
/// so right-sizing the device is itself a power optimization.
///
/// # Errors
/// Propagates generation errors; per-device fit failures are reported in
/// the rows, not as errors.
pub fn device_sweep(cfg: &ExperimentConfig, k: usize) -> Result<Vec<DeviceRow>, PowerError> {
    let (_, frac_high) = cfg.resolve_shared_fractions();
    let tables = cfg.family(k, frac_high)?;
    fan_out(Device::catalog(), |device| {
        let max_vs_engines = vr_fpga::io::max_engines(&device);
        let built = Scenario::build(
            &tables,
            ScenarioSpec {
                stages: cfg.stages,
                ..ScenarioSpec::paper_default(SchemeKind::Separate, SpeedGrade::Minus2)
            },
            device.clone(),
        );
        Ok(match built {
            Ok(scenario) => {
                let estimate = analytical_power(&scenario);
                let capacity = scenario.capacity_gbps();
                DeviceRow {
                    device: device.name.clone(),
                    max_vs_engines,
                    fits: true,
                    power_w: Some(estimate.total_w()),
                    mw_per_gbps: Some(vr_fpga::timing::mw_per_gbps(
                        estimate.total_w(),
                        capacity,
                    )),
                }
            }
            Err(_) => DeviceRow {
                device: device.name.clone(),
                max_vs_engines,
                fits: false,
                power_w: None,
                mw_per_gbps: None,
            },
        })
    })
}

/// One row of the braiding study.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BraidingRow {
    /// Workload label.
    pub workload: String,
    /// Plain overlay-merged node count.
    pub plain_nodes: usize,
    /// Braided-merge node count.
    pub braided_nodes: usize,
    /// Braiding's extra saving over plain merging (fraction of plain).
    pub extra_saving: f64,
    /// Shape nodes carrying at least one swapped orientation.
    pub braided_node_count: usize,
}

/// Braiding study (paper ref. [17]): plain overlay merging vs trie
/// braiding across overlap regimes, plus the mirrored-tables showcase
/// where orientation is the *only* difference between networks.
///
/// # Errors
/// Propagates generation and merge errors.
pub fn braiding_study(cfg: &ExperimentConfig) -> Result<Vec<BraidingRow>, PowerError> {
    use vr_trie::{BraidedTrie, MergedTrie};
    let k = 4.min(cfg.k_max.max(2));
    let overlap_points = vec![
        ("low overlap", 0.1),
        ("mid overlap", 0.5),
        ("high overlap", 0.9),
    ];
    let mut rows = fan_out(overlap_points, |(label, frac)| {
        let tables = cfg.family(k, frac)?;
        let plain = MergedTrie::from_tables(&tables)?.node_count();
        let braided_trie = BraidedTrie::from_tables(&tables)?;
        Ok(BraidingRow {
            workload: format!("{label} (s={frac})"),
            plain_nodes: plain,
            braided_nodes: braided_trie.node_count(),
            extra_saving: 1.0 - braided_trie.node_count() as f64 / plain as f64,
            braided_node_count: braided_trie.braided_node_count(),
        })
    })?;
    // Mirrored pair: identical structure, opposite orientation.
    let mut spec = vr_net::synth::TableSpec::paper_worst_case(cfg.seed);
    spec.prefixes = cfg.prefixes_per_table;
    spec.include_default_route = false;
    let a = spec.generate()?;
    let b: vr_net::RoutingTable = a
        .iter()
        .map(|e| {
            let len = e.prefix.len();
            let mut addr = 0u32;
            for i in 0..len {
                if !e.prefix.bit(i) {
                    addr |= 1 << (31 - i);
                }
            }
            vr_net::RouteEntry::new(vr_net::Ipv4Prefix::must(addr, len), e.next_hop)
        })
        .collect();
    let tables = [a, b];
    let plain = MergedTrie::from_tables(&tables)?.node_count();
    let braided_trie = BraidedTrie::from_tables(&tables)?;
    rows.push(BraidingRow {
        workload: "mirrored pair".into(),
        plain_nodes: plain,
        braided_nodes: braided_trie.node_count(),
        extra_saving: 1.0 - braided_trie.node_count() as f64 / plain as f64,
        braided_node_count: braided_trie.braided_node_count(),
    });
    Ok(rows)
}

/// One row of the optimal-stride study.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OptimalStrideRow {
    /// Pipeline depth bound (levels).
    pub max_levels: usize,
    /// Entries of the uniform schedule at that depth.
    pub uniform_entries: usize,
    /// Entries of the DP-optimal schedule.
    pub optimal_entries: usize,
    /// The optimal schedule found.
    pub strides: Vec<u8>,
    /// Memory saving of optimal vs uniform.
    pub saving: f64,
}

/// Optimal variable-stride study (Srinivasan–Varghese CPE DP; ref. [8]'s
/// depth-bounded lever): at each pipeline depth bound, compare the
/// uniform stride schedule against the memory-optimal one.
///
/// # Errors
/// Propagates generation and trie errors.
pub fn optimal_stride_study(
    cfg: &ExperimentConfig,
) -> Result<Vec<OptimalStrideRow>, PowerError> {
    use vr_trie::multibit::optimal_strides;
    use vr_trie::StrideTrie;
    let table = vr_net::synth::TableSpec::paper_worst_case(cfg.seed).generate()?;
    let unibit = UnibitTrie::from_table(&table);
    fan_out(vec![(4usize, 8u8), (8, 4), (16, 2)], |(max_levels, uniform)| {
        let optimal = optimal_strides(&unibit, 8, max_levels)?;
        let opt_trie = StrideTrie::from_table(&table, &optimal)?;
        let uni_trie = StrideTrie::from_table(&table, &vec![uniform; max_levels])?;
        Ok(OptimalStrideRow {
            max_levels,
            uniform_entries: uni_trie.entry_count(),
            optimal_entries: opt_trie.entry_count(),
            strides: optimal,
            saving: 1.0 - opt_trie.entry_count() as f64 / uni_trie.entry_count() as f64,
        })
    })
}

/// One row of the full-router pin-budget comparison.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FullRouterRow {
    /// Device name.
    pub device: String,
    /// User I/O pins available.
    pub io_pins: u64,
    /// Max separate engines with the lookup-only interface (§VI-A's 15).
    pub lookup_only_engines: usize,
    /// Max separate engines with the complete data path.
    pub full_router_engines: usize,
}

/// Full-router pin budget (§VI-A: "this number may become even less when
/// other inputs and outputs are considered"): the lookup-only interface
/// vs the complete parse/lookup/edit/schedule data path, per device.
#[must_use]
pub fn full_router_budget() -> Vec<FullRouterRow> {
    Device::catalog()
        .into_iter()
        .map(|device| FullRouterRow {
            device: device.name.clone(),
            io_pins: device.io_pins,
            lookup_only_engines: vr_fpga::io::max_engines(&device),
            full_router_engines: vr_engine::datapath::full_router_max_engines(&device),
        })
        .collect()
}

/// One row of the merged-scheme scalability experiment.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MergedScalingRow {
    /// Number of virtual networks.
    pub k: usize,
    /// Measured merging efficiency.
    pub alpha: f64,
    /// Merged memory demand, in Mbit.
    pub memory_mbits: f64,
    /// 36 Kb-equivalent BRAM blocks demanded.
    pub bram_36k: u64,
    /// Whether one XC6VLX760 still fits the engine.
    pub fits_one_device: bool,
}

/// Merged-scheme scalability (§IV-C: "the total size of memory required
/// to store the merged lookup tree may exceed the memory available on
/// the device"): sweep K at the low α target until the single-device
/// memory wall, reporting where it hits.
///
/// # Errors
/// Propagates generation and trie errors.
pub fn merged_scaling(cfg: &ExperimentConfig) -> Result<Vec<MergedScalingRow>, PowerError> {
    let (frac_low, _) = cfg.resolve_shared_fractions();
    let device = Device::xc6vlx760();
    let layout = MemoryLayout::default();
    let ks: Vec<usize> = (2..=cfg.k_max_fig4.max(cfg.k_max)).step_by(4).collect();
    fan_out(ks, |k| {
        let tables = cfg.family(k, frac_low)?;
        let merged = MergedTrie::from_tables(&tables)?;
        let pushed = merged.leaf_pushed();
        let profile = PipelineProfile::for_merged(&pushed, cfg.stages, layout)?;
        let per_stage = profile.per_stage_memory_bits();
        let blocks18 = vr_fpga::bram::blocks_for_stages(BramMode::K18, &per_stage);
        let bram_36k = blocks18.div_ceil(2);
        Ok(MergedScalingRow {
            k,
            alpha: merged.merging_efficiency(),
            memory_mbits: profile.total_memory_bits() as f64 / MBIT,
            bram_36k,
            fits_one_device: bram_36k <= device.bram_36k_blocks,
        })
    })
}

/// One row of the concurrent lookup-service study.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServiceRow {
    /// Virtual networks hosted (merged K-wide trie when > 1).
    pub k: usize,
    /// Worker shards.
    pub workers: usize,
    /// Batch width in effect (sweep-selected).
    pub batch_width: usize,
    /// End-to-end throughput in packets per second.
    pub packets_per_sec: f64,
    /// Mean worker-side ns per lookup.
    pub ns_per_lookup: f64,
    /// Speedup over the single-worker row.
    pub speedup_vs_one_worker: f64,
    /// Snapshot generations the workers were observed resolving against
    /// (≥ 2 proves lookups kept flowing across the mid-run table swap).
    pub generations_seen: usize,
    /// Fraction of lookups that missed every route.
    pub miss_fraction: f64,
}

/// Concurrent lookup-service scaling study: the `JumpTrie`-backed
/// [`vr_engine::LookupService`] driven at 1/2/4 workers over a K-network
/// family, with a route-update burst published mid-run so every row also
/// exercises the RCU-style snapshot swap under load.
///
/// # Errors
/// Propagates generation, trie, and service-construction errors.
pub fn lookup_service_study(cfg: &ExperimentConfig, k: usize) -> Result<Vec<ServiceRow>, PowerError> {
    use vr_engine::service::{LookupService, ServiceConfig};
    use vr_net::{UpdateMix, UpdateStream, VnId};

    let tables = cfg.family(k, 0.5)?;
    // Probe stream: perturbed installed prefixes, round-robin across VNs,
    // so walks reach realistic depths in every virtual network.
    let packets: Vec<(VnId, u32)> = tables
        .iter()
        .enumerate()
        .flat_map(|(vn, t)| {
            t.prefixes().flat_map(move |p| {
                [(vn as VnId, p.addr() | 0x2B), (vn as VnId, p.addr() ^ 0x0101)]
            })
        })
        .collect();
    let updates =
        UpdateStream::new(tables.clone(), UpdateMix::default(), 16, cfg.seed)?.batch(64);

    let mut rows: Vec<ServiceRow> = Vec::new();
    for workers in [1usize, 2, 4] {
        let service_cfg = ServiceConfig {
            workers,
            ..ServiceConfig::default()
        };
        let mut service = LookupService::new(tables.clone(), service_cfg)?;
        let start = std::time::Instant::now();
        // First half, swap under load, second half: the swap must neither
        // stall nor corrupt the stream.
        let half = packets.len() / 2;
        let mut results = service.process(&packets[..half]);
        service.apply_updates(&updates)?;
        results.extend(service.process(&packets[half..]));
        let elapsed = start.elapsed().as_secs_f64();
        let report = service.shutdown();
        let ns_per_lookup = report.mean_ns_per_lookup();
        let packets_per_sec = if elapsed > 0.0 {
            results.len() as f64 / elapsed
        } else {
            0.0
        };
        let baseline = rows
            .first()
            .map_or(packets_per_sec, |r: &ServiceRow| r.packets_per_sec);
        rows.push(ServiceRow {
            k,
            workers,
            batch_width: report.batch_width,
            packets_per_sec,
            ns_per_lookup,
            speedup_vs_one_worker: if baseline > 0.0 {
                packets_per_sec / baseline
            } else {
                1.0
            },
            generations_seen: report.generations_seen.len(),
            miss_fraction: if report.lookups > 0 {
                report.misses as f64 / report.lookups as f64
            } else {
                0.0
            },
        });
    }
    Ok(rows)
}

/// Zipf exponents swept by [`cache_skew_study`]: uniform traffic
/// (`s = 0`) through strongly skewed (`s = 1.5`).
pub const CACHE_SKEW_SWEEP: [f64; 4] = [0.0, 0.5, 1.0, 1.5];

/// One row of the hot-path result-cache skew sweep: how the per-worker
/// LPM cache converts traffic skew into throughput and into a dynamic
/// memory-power discount (watts/Gbps vs Zipf `s`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CacheSkewRow {
    /// Virtual networks merged into the trie under test.
    pub k: usize,
    /// Zipf exponent of the offered traffic (0 = uniform).
    pub zipf_s: f64,
    /// Cache capacity in slots (power of two).
    pub cache_slots: usize,
    /// Distinct destinations the stream draws from.
    pub working_set: usize,
    /// Steady-state cache hit rate over the measured stream.
    pub hit_rate: f64,
    /// Mean ns per lookup walking the trie for every packet.
    pub ns_uncached: f64,
    /// Mean ns per lookup with the cache probing ahead of the walk.
    pub ns_cached: f64,
    /// Throughput ratio, cached over uncached.
    pub speedup: f64,
    /// Analytical dynamic memory power of the merged scheme, in watts.
    pub memory_w: f64,
    /// Memory power that survives the cache discount, in watts.
    pub memory_w_cached: f64,
    /// Power efficiency without the cache, in watts per Gbps.
    pub w_per_gbps_uncached: f64,
    /// Power efficiency with the cache, in watts per Gbps.
    pub w_per_gbps_cached: f64,
}

/// Hot-path cache skew sweep: a merged `JumpTrie` over a K-network
/// family is driven by seeded [`vr_net::SkewedTraffic`] streams at each
/// [`CACHE_SKEW_SWEEP`] exponent, with and without an
/// [`vr_engine::LpmCache`] in front of the batch walk. Each row records
/// the measured hit rate and throughput alongside the analytical
/// memory power discounted by that hit rate
/// ([`crate::models::cache_discounted_memory_w`]) — the watts/Gbps
/// vs-skew figure the power model contributes to the cache story.
///
/// The hit rate is measured honestly: the cache is warmed on one stream
/// from the distribution, stats are reset, and the rate is taken over an
/// independent continuation stream — neither cold misses nor a literal
/// replay of the warmup inflate it.
///
/// # Errors
/// Propagates generation, trie, cache-construction, and scenario errors.
pub fn cache_skew_study(cfg: &ExperimentConfig, k: usize) -> Result<Vec<CacheSkewRow>, PowerError> {
    use vr_engine::service::lookup_batch_mixed;
    use vr_engine::LpmCache;
    use vr_net::{NextHop, SkewedSpec, SkewedTraffic, VnId};
    use vr_trie::JumpTrie;

    const CHUNK: usize = 512;
    // The probe/fill path tags slots with the publish generation; any
    // fixed value works when driving the trie directly.
    const GENERATION: u64 = 1;

    let tables = cfg.family(k, 0.5)?;
    let merged = MergedTrie::from_tables(&tables)?;
    let jump = JumpTrie::from_merged(&merged.leaf_pushed());
    let estimate = quick_estimate(&tables, SchemeKind::Merged, SpeedGrade::Minus2)?;
    let bits_per_packet = f64::from(vr_net::traffic::MIN_PACKET_BYTES * 8);

    // Enough packets that the timed pass dominates, bounded so the quick
    // configuration stays fast.
    let measure = (cfg.prefixes_per_table * k * 8).clamp(16_384, 262_144);
    let slot_sweep = [DEFAULT_SKEW_SLOTS >> 2, DEFAULT_SKEW_SLOTS];

    let mut rows = Vec::new();
    for &s in &CACHE_SKEW_SWEEP {
        for &slots in &slot_sweep {
            let spec = SkewedSpec::zipf(k, s, cfg.seed);
            let mut traffic = SkewedTraffic::new(spec, &tables)?;
            let warm_pairs: Vec<(VnId, u32)> = traffic.pairs(measure);
            let pairs: Vec<(VnId, u32)> = traffic.pairs(measure);
            let mut out: Vec<Option<NextHop>> = vec![None; CHUNK];

            let start = std::time::Instant::now();
            for chunk in pairs.chunks(CHUNK) {
                lookup_batch_mixed(&jump, chunk, &mut out[..chunk.len()]);
                std::hint::black_box(&out);
            }
            let ns_uncached = elapsed_ns_per(&start, pairs.len());

            let mut cache = LpmCache::new(slots)?;
            for chunk in warm_pairs.chunks(CHUNK) {
                cache.lookup_batch(&jump, GENERATION, chunk, &mut out[..chunk.len()]);
            }
            cache.reset_stats();
            let start = std::time::Instant::now();
            for chunk in pairs.chunks(CHUNK) {
                cache.lookup_batch(&jump, GENERATION, chunk, &mut out[..chunk.len()]);
                std::hint::black_box(&out);
            }
            let ns_cached = elapsed_ns_per(&start, pairs.len());
            let hit_rate = cache.stats().hit_rate();

            let gbps = |ns: f64| {
                if ns > 0.0 {
                    bits_per_packet / ns
                } else {
                    0.0
                }
            };
            let static_logic_w = estimate.static_w + estimate.logic_w;
            let memory_w = estimate.memory_w;
            let memory_w_cached = crate::models::cache_discounted_memory_w(memory_w, hit_rate);
            let eff = |total_w: f64, ns: f64| {
                let g = gbps(ns);
                if g > 0.0 {
                    total_w / g
                } else {
                    0.0
                }
            };
            rows.push(CacheSkewRow {
                k,
                zipf_s: s,
                cache_slots: cache.capacity(),
                working_set: traffic.working_set(),
                hit_rate,
                ns_uncached,
                ns_cached,
                speedup: if ns_cached > 0.0 {
                    ns_uncached / ns_cached
                } else {
                    1.0
                },
                memory_w,
                memory_w_cached,
                w_per_gbps_uncached: eff(static_logic_w + memory_w, ns_uncached),
                w_per_gbps_cached: eff(static_logic_w + memory_w_cached, ns_cached),
            });
        }
    }
    Ok(rows)
}

/// Default cache capacity swept by [`cache_skew_study`] (matches
/// `vr_engine::DEFAULT_CACHE_SLOTS`; a quarter-size point rides along to
/// show capacity sensitivity).
const DEFAULT_SKEW_SLOTS: usize = 1 << 16;

fn elapsed_ns_per(start: &std::time::Instant, n: usize) -> f64 {
    if n == 0 {
        return 0.0;
    }
    start.elapsed().as_secs_f64() * 1e9 / n as f64
}

/// Computes the analytical estimate for a single ad-hoc scenario — a
/// convenience for examples and quick exploration.
///
/// # Errors
/// Propagates scenario construction errors.
pub fn quick_estimate(
    tables: &[RoutingTable],
    scheme: SchemeKind,
    grade: SpeedGrade,
) -> Result<crate::PowerEstimate, PowerError> {
    let scenario = Scenario::build(
        tables,
        ScenarioSpec::paper_default(scheme, grade),
        Device::xc6vlx760(),
    )?;
    Ok(analytical_power(&scenario))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig2_has_four_curves_with_expected_ordering() {
        let points = fig2_series();
        assert_eq!(points.len(), 4 * FREQ_SWEEP_MHZ.len());
        // At any frequency: 36Kb(-2) > 18Kb(-2) > 18Kb(-1L); and 36Kb(-1L)
        // > 18Kb(-1L).
        let at = |mode, grade| {
            points
                .iter()
                .find(|p| p.mode == mode && p.grade == grade && p.freq_mhz == 300.0)
                .unwrap()
                .power_mw
        };
        assert!(at(BramMode::K36, SpeedGrade::Minus2) > at(BramMode::K18, SpeedGrade::Minus2));
        assert!(at(BramMode::K18, SpeedGrade::Minus2) > at(BramMode::K18, SpeedGrade::Minus1L));
        assert!(at(BramMode::K36, SpeedGrade::Minus1L) > at(BramMode::K18, SpeedGrade::Minus1L));
    }

    #[test]
    fn table3_has_paper_coefficients() {
        let rows = table3_rows();
        assert_eq!(rows.len(), 4);
        let find = |label: &str| {
            rows.iter()
                .find(|r| r.setup == label)
                .unwrap()
                .uw_per_block_mhz
        };
        assert_eq!(find("18Kb (-2)"), 13.65);
        assert_eq!(find("36Kb (-2)"), 24.60);
        assert_eq!(find("18Kb (-1L)"), 11.00);
        assert_eq!(find("36Kb (-1L)"), 19.70);
    }

    #[test]
    fn fig3_is_linear_in_frequency() {
        let points = fig3_series();
        let p100 = points
            .iter()
            .find(|p| p.grade == SpeedGrade::Minus2 && p.freq_mhz == 100.0)
            .unwrap();
        let p500 = points
            .iter()
            .find(|p| p.grade == SpeedGrade::Minus2 && p.freq_mhz == 500.0)
            .unwrap();
        assert!((p500.power_mw - 5.0 * p100.power_mw).abs() < 1e-9);
    }

    #[test]
    fn table2_matches_paper_formatting() {
        let rows = table2_rows(&Device::xc6vlx760());
        assert_eq!(rows.len(), 4);
        assert_eq!(rows[0].amount, "758K");
        assert_eq!(rows[1].amount, "8 Mb");
        assert!(rows[2].amount.contains("Mb"));
        assert_eq!(rows[3].amount, "1200");
    }

    #[test]
    fn statics_rows_have_5_percent_bands() {
        let rows = statics_rows();
        assert_eq!(rows.len(), 2);
        for r in rows {
            assert!((r.min_w - r.base_w * 0.95).abs() < 1e-12);
            assert!((r.max_w - r.base_w * 1.05).abs() < 1e-12);
        }
    }

    #[test]
    fn fig4_shapes_hold_on_quick_config() {
        let cfg = ExperimentConfig::quick();
        let points = fig4_series(&cfg).unwrap();
        let series = |name: &str| -> Vec<&Fig4Point> {
            let mut v: Vec<&Fig4Point> =
                points.iter().filter(|p| p.series == name).collect();
            v.sort_by_key(|p| p.k);
            v
        };
        let sep = series("separate");
        let hi = series("merged (α≈0.8)");
        let lo = series("merged (α≈0.2)");
        assert_eq!(sep.len(), cfg.k_max_fig4);
        let last = cfg.k_max_fig4 - 1;
        // Pointer memory: separate grows ∝K and exceeds both merged
        // variants; low-α merged exceeds high-α merged.
        assert!(sep[last].pointer_mbits > hi[last].pointer_mbits);
        assert!(lo[last].pointer_mbits > hi[last].pointer_mbits);
        // Memory grows with K everywhere.
        assert!(sep[last].pointer_mbits > sep[0].pointer_mbits);
        assert!(hi[last].nhi_mbits > hi[0].nhi_mbits);
        // Merged NHI memory (K-wide vectors) exceeds separate NHI memory.
        assert!(hi[last].nhi_mbits > sep[last].nhi_mbits * 0.8);
        // α ordering is realized.
        assert!(
            hi[last].measured_alpha.unwrap() > lo[last].measured_alpha.unwrap()
        );
    }

    #[test]
    fn power_sweep_shapes_hold_on_quick_config() {
        let cfg = ExperimentConfig::quick();
        let points = power_sweep(&cfg).unwrap();
        // 4 series × 2 grades × k_max points.
        assert_eq!(points.len(), 4 * 2 * cfg.k_max);
        let get = |series: &str, grade: SpeedGrade, k: usize| -> &SweepPoint {
            points
                .iter()
                .find(|p| p.series == series && p.grade == grade && p.k == k)
                .unwrap()
        };
        let g = SpeedGrade::Minus2;
        // Fig. 5: NV grows ∝ K; virtualized stays near one device.
        let nv1 = get("NV", g, 1);
        let nvk = get("NV", g, cfg.k_max);
        assert!(nvk.model_w > 0.8 * cfg.k_max as f64 * nv1.model_w);
        let vsk = get("VS", g, cfg.k_max);
        assert!(vsk.model_w < 2.0 * nv1.model_w);
        // Fig. 7: everything within ±3 %.
        for p in &points {
            assert!(p.error_pct.abs() <= 3.0, "{} K={}", p.series, p.k);
        }
        // Fig. 8 at k_max: VS best, NV middle, VM worst; low α worse than
        // high α.
        let vm_hi = get("VM (α≈0.8)", g, cfg.k_max);
        let vm_lo = get("VM (α≈0.2)", g, cfg.k_max);
        assert!(vsk.mw_per_gbps < nvk.mw_per_gbps);
        assert!(nvk.mw_per_gbps < vm_hi.mw_per_gbps);
        assert!(vm_lo.mw_per_gbps >= vm_hi.mw_per_gbps * 0.95);
        // §VI-B: -1L uses ~30 % less power at similar efficiency.
        let vs_lo_grade = get("VS", SpeedGrade::Minus1L, cfg.k_max);
        let saving = 1.0 - vs_lo_grade.model_w / vsk.model_w;
        assert!((0.2..0.4).contains(&saving), "saving {saving}");
    }

    #[test]
    fn ablation_merged_memory_shows_the_contradiction() {
        let cfg = ExperimentConfig::quick();
        let rows = ablation_merged_memory(&cfg).unwrap();
        assert_eq!(rows.len(), cfg.k_max);
        // At K > 1 with high α, the literal model (α×ΣM) charges much
        // more memory than actually merging the tries does.
        let last = rows.last().unwrap();
        assert!(last.alpha > 0.4);
        assert!(last.literal_mbits > 0.0 && last.structural_mbits > 0.0);
    }

    #[test]
    fn ablation_gating_quantifies_idle_savings() {
        let cfg = ExperimentConfig::quick();
        let rows = ablation_gating(&cfg, 3).unwrap();
        assert_eq!(rows.len(), 5);
        for r in &rows {
            assert!(
                r.gated_dynamic_w <= r.ungated_dynamic_w + 1e-12,
                "gating can only save"
            );
        }
        // At low load, gating saves a large fraction.
        let low = &rows[0];
        assert!(low.gated_dynamic_w < 0.5 * low.ungated_dynamic_w);
        // Gated power grows with load; ungated stays ~flat.
        assert!(rows[4].gated_dynamic_w > rows[0].gated_dynamic_w);
        let rel = (rows[4].ungated_dynamic_w - rows[0].ungated_dynamic_w).abs()
            / rows[4].ungated_dynamic_w;
        assert!(rel < 0.35, "ungated drift {rel}");
    }

    #[test]
    fn ablation_stride_shows_the_depth_memory_tradeoff() {
        let cfg = ExperimentConfig::quick();
        let rows = ablation_stride(&cfg).unwrap();
        assert_eq!(rows.len(), 4);
        // Wider stride → fewer stages, lower latency.
        for pair in rows.windows(2) {
            assert!(pair[1].stages < pair[0].stages);
            assert!(pair[1].latency_cycles < pair[0].latency_cycles);
        }
        // ...but CPE expansion makes wide strides markedly memory-heavier
        // (adjacent small strides may tie: a stride-1 node already holds
        // two slots, so monotonicity only binds across the sweep).
        assert!(rows[3].entries > rows[0].entries);
        assert!(rows[3].memory_mbits > 2.0 * rows[0].memory_mbits);
    }

    #[test]
    fn ablation_balance_never_hurts() {
        let cfg = ExperimentConfig::quick();
        let rows = ablation_balance(&cfg).unwrap();
        assert_eq!(rows.len(), 4);
        for r in &rows {
            assert!(r.balanced_max_kbits <= r.even_max_kbits + 1e-9, "N={}", r.stages);
            assert!(r.balanced_blocks <= r.even_blocks + 2, "N={}", r.stages);
        }
        // At a short pipeline the balancing win is substantial.
        assert!(rows[0].balanced_max_kbits < 0.9 * rows[0].even_max_kbits);
    }

    #[test]
    fn tcam_comparison_reproduces_the_related_work_claims() {
        let cfg = ExperimentConfig::quick();
        let rows = tcam_comparison(&cfg).unwrap();
        let at = |engine: &str, k: usize| {
            rows.iter()
                .find(|r| r.engine == engine && r.k == k)
                .unwrap()
        };
        let k = cfg.k_max;
        // §II-B: TCAM is the power-hungry option.
        assert!(
            at("TCAM monolithic", k).mw_per_gbps > at("FPGA trie (VS)", k).mw_per_gbps
        );
        // Ref. [20]: partitioning recovers most of the dynamic power.
        assert!(
            at("TCAM partitioned (8)", k).power_w < at("TCAM monolithic", k).power_w
        );
        // Ref. [10]: IPStash sits between monolithic TCAM and partitioned.
        assert!(at("IPStash-like", k).power_w < at("TCAM monolithic", k).power_w);
    }

    #[test]
    fn update_cost_runs_and_prices_writes() {
        let cfg = ExperimentConfig::quick();
        let rows = update_cost(&cfg, 3).unwrap();
        assert_eq!(rows.len(), 2);
        for r in &rows {
            assert!(r.mean_writes_per_update > 1.0);
            assert!(r.write_rate > 0.0 && r.write_rate <= 1.0);
            assert!(r.bram_power_w > 0.0);
            assert!(r.nodes_before > 0 && r.nodes_after > 0);
        }
    }

    #[test]
    fn latency_comparison_orders_engines() {
        let cfg = ExperimentConfig::quick();
        let rows = latency_comparison(&cfg, 4).unwrap();
        let at = |label: &str| rows.iter().find(|r| r.engine == label).unwrap();
        // Merged runs the same depth at a slower clock → higher latency.
        assert!(at("VM uni-bit").latency_ns > at("NV / VS uni-bit").latency_ns);
        // Depth-bounded engines cut latency with stride width.
        assert!(at("stride-8 multi-bit").latency_ns < at("stride-2 multi-bit").latency_ns);
        assert!(at("stride-8 multi-bit").latency_ns < at("NV / VS uni-bit").latency_ns);
        assert!(rows.iter().all(|r| r.latency_ns > 0.0));
    }

    #[test]
    fn utilization_study_shows_mu_sensitivity() {
        // The µ signal only shows once the largest and smallest tables
        // need different per-stage BRAM block counts; below ~1k prefixes
        // the 18Kb quantization can make all four engines identical and
        // the comparison degenerates to noise.
        let cfg = ExperimentConfig {
            prefixes_per_table: 1200,
            seed: 99,
            ..ExperimentConfig::quick()
        };
        let rows = utilization_study(&cfg).unwrap();
        let at = |traffic: &str, scheme: &str| {
            rows.iter()
                .find(|r| r.traffic == traffic && r.scheme == scheme)
                .unwrap()
        };
        let vs = "Virtualized-separate";
        let vm = "Virtualized-merged";
        // With unequal tables, concentrating traffic on the largest table
        // costs more dynamic power than on the smallest (Eq. 4's µ).
        assert!(
            at("hot-largest", vs).dynamic_w > at("hot-smallest", vs).dynamic_w,
            "hot-largest {} vs hot-smallest {}",
            at("hot-largest", vs).dynamic_w,
            at("hot-smallest", vs).dynamic_w
        );
        // The merged engine has no µ in Eq. 6 — identical under any skew.
        let vm_dyn: Vec<f64> = ["uniform", "hot-largest", "hot-smallest"]
            .iter()
            .map(|t| at(t, vm).dynamic_w)
            .collect();
        assert!((vm_dyn[0] - vm_dyn[1]).abs() < 1e-12);
        assert!((vm_dyn[0] - vm_dyn[2]).abs() < 1e-12);
    }

    #[test]
    fn multiway_study_shows_the_power_lever() {
        let cfg = ExperimentConfig::quick();
        let rows = multiway_study(&cfg).unwrap();
        assert_eq!(rows.len(), 5);
        // Deeper splits: more (and shorter) ways, lower latency, lower
        // energy per lookup — ref. [7]'s claim.
        let first = &rows[0];
        let last = rows.last().unwrap();
        assert_eq!(first.ways, 1);
        assert_eq!(last.ways, 16);
        assert!(last.stages_per_way < first.stages_per_way);
        assert!(last.latency_cycles < first.latency_cycles);
        assert!(
            last.energy_per_lookup_pj < first.energy_per_lookup_pj,
            "split {} vs mono {}",
            last.energy_per_lookup_pj,
            first.energy_per_lookup_pj
        );
        for r in &rows {
            assert!(r.balance_factor >= 1.0);
            assert!(r.dynamic_power_w > 0.0);
        }
    }

    #[test]
    fn queueing_study_shows_burstiness_cost() {
        let cfg = ExperimentConfig::quick();
        let rows = queueing_study(&cfg, 3).unwrap();
        assert_eq!(rows.len(), 5);
        for r in &rows {
            assert!(r.fully_correct, "burst {}", r.burst_len);
        }
        // Smooth arrivals never wait; long bursts wait visibly.
        assert_eq!(rows[0].mean_wait_cycles, 0.0);
        let last = rows.last().unwrap();
        assert!(last.mean_wait_cycles > rows[1].mean_wait_cycles);
        assert!(last.max_queue_depth > rows[0].max_queue_depth);
    }

    #[test]
    fn thermal_study_shows_concentration_and_collapse() {
        let cfg = ExperimentConfig::quick();
        let k = 6;
        let rows = thermal_study(&cfg, k).unwrap();
        assert_eq!(rows.len(), 6);
        let at = |scheme: &str, grade: SpeedGrade| {
            rows.iter()
                .find(|r| r.scheme == scheme && r.grade == grade)
                .unwrap()
        };
        let g = SpeedGrade::Minus2;
        let nv = at("Non-virtualized", g);
        let vs = at("Virtualized-separate", g);
        for r in &rows {
            assert!(r.converged, "{} {}", r.scheme, r.grade);
            // Near the reference junction the correction is small either
            // way (slightly negative when the device runs cooler than the
            // 50 °C the §V-A figures were taken at).
            let rel = (r.thermal_w - r.nominal_w).abs() / r.nominal_w;
            assert!(rel < 0.10, "{} {}: correction {rel}", r.scheme, r.grade);
        }
        // Consolidation concentrates heat: the shared device runs hotter
        // than any single NV device...
        assert!(vs.junction_c > nv.junction_c);
        // ...but the fleet total still collapses by ≈ K.
        assert!(nv.thermal_w > 0.7 * k as f64 * vs.thermal_w);
        // The low-power grade runs cooler.
        assert!(
            at("Virtualized-separate", SpeedGrade::Minus1L).junction_c < vs.junction_c
        );
    }

    #[test]
    fn device_sweep_right_sizes_the_device() {
        let cfg = ExperimentConfig::quick();
        let rows = device_sweep(&cfg, 4).unwrap();
        assert_eq!(rows.len(), 3);
        // Every catalog device fits 4 separate engines at quick scale...
        let fitting: Vec<_> = rows.iter().filter(|r| r.fits).collect();
        assert!(fitting.len() >= 2);
        // ...and the smallest fitting die draws the least power.
        let powers: Vec<f64> = fitting.iter().map(|r| r.power_w.unwrap()).collect();
        assert!(
            powers.windows(2).all(|w| w[1] <= w[0] + 1e-9),
            "power must not grow down the catalog: {powers:?}"
        );
        // Pin budgets differ: the LX240T admits fewer engines.
        let lx240 = rows.iter().find(|r| r.device == "XC6VLX240T").unwrap();
        let lx760 = rows.iter().find(|r| r.device == "XC6VLX760").unwrap();
        assert!(lx240.max_vs_engines < lx760.max_vs_engines);
    }

    #[test]
    fn braiding_study_beats_plain_merging_where_it_should() {
        let cfg = ExperimentConfig::quick();
        let rows = braiding_study(&cfg).unwrap();
        assert_eq!(rows.len(), 4);
        for r in &rows {
            // Greedy braiding can only help or tie plain merging here.
            assert!(
                r.braided_nodes <= r.plain_nodes + r.plain_nodes / 20,
                "{}: braided {} vs plain {}",
                r.workload,
                r.braided_nodes,
                r.plain_nodes
            );
        }
        // The mirrored showcase must show a dramatic saving.
        let mirrored = rows.iter().find(|r| r.workload == "mirrored pair").unwrap();
        assert!(mirrored.extra_saving > 0.3, "saving {}", mirrored.extra_saving);
        assert!(mirrored.braided_node_count > 0);
    }

    #[test]
    fn optimal_stride_study_always_saves() {
        let cfg = ExperimentConfig::quick();
        let rows = optimal_stride_study(&cfg).unwrap();
        assert_eq!(rows.len(), 3);
        for r in &rows {
            assert!(r.optimal_entries <= r.uniform_entries, "{:?}", r.strides);
            assert!(r.saving >= 0.0);
            assert_eq!(
                r.strides.iter().map(|&s| u32::from(s)).sum::<u32>(),
                32,
                "{:?}",
                r.strides
            );
            assert!(r.strides.len() <= r.max_levels);
        }
        // Tight depth bounds cost memory.
        assert!(rows[0].optimal_entries >= rows[2].optimal_entries);
    }

    #[test]
    fn full_router_budget_shrinks_engine_counts() {
        let rows = full_router_budget();
        assert_eq!(rows.len(), 3);
        for r in &rows {
            assert!(
                r.full_router_engines < r.lookup_only_engines,
                "{}: full {} vs lookup-only {}",
                r.device,
                r.full_router_engines,
                r.lookup_only_engines
            );
        }
        let lx760 = rows.iter().find(|r| r.device == "XC6VLX760").unwrap();
        assert_eq!(lx760.lookup_only_engines, 15);
    }

    #[test]
    fn merged_scaling_finds_the_memory_wall_direction() {
        let cfg = ExperimentConfig::quick();
        let rows = merged_scaling(&cfg).unwrap();
        assert!(rows.len() >= 2);
        // Memory demand grows monotonically with K at fixed (low) α.
        for pair in rows.windows(2) {
            assert!(pair[1].memory_mbits > pair[0].memory_mbits);
            assert!(pair[1].bram_36k >= pair[0].bram_36k);
        }
        // At quick scale everything still fits one device.
        assert!(rows.iter().all(|r| r.fits_one_device));
    }

    #[test]
    fn quick_estimate_works_end_to_end() {
        let cfg = ExperimentConfig::quick();
        let tables = cfg.family(3, 0.5).unwrap();
        let e = quick_estimate(&tables, SchemeKind::Separate, SpeedGrade::Minus2).unwrap();
        assert!(e.total_w() > 3.0 && e.total_w() < 7.0);
    }

    #[test]
    fn lookup_service_study_scales_and_swaps() {
        let cfg = ExperimentConfig::quick();
        let rows = lookup_service_study(&cfg, 2).unwrap();
        assert_eq!(rows.len(), 3);
        assert_eq!(
            rows.iter().map(|r| r.workers).collect::<Vec<_>>(),
            vec![1, 2, 4]
        );
        for row in &rows {
            assert_eq!(row.k, 2);
            assert!(row.packets_per_sec > 0.0);
            assert!(row.batch_width >= 1);
            // The mid-run update burst published generation 1; batches
            // were served against at most the pre- and post-swap tables.
            assert!((1..=2).contains(&row.generations_seen));
            assert!(row.miss_fraction < 1.0);
        }
        assert!((rows[0].speedup_vs_one_worker - 1.0).abs() < f64::EPSILON);
    }

    #[test]
    fn cache_skew_study_discounts_memory_power_with_skew() {
        let cfg = ExperimentConfig::quick();
        let rows = cache_skew_study(&cfg, 2).unwrap();
        assert_eq!(rows.len(), CACHE_SKEW_SWEEP.len() * 2);
        for row in &rows {
            assert_eq!(row.k, 2);
            assert!(row.cache_slots.is_power_of_two());
            assert!(row.working_set > 0);
            assert!((0.0..=1.0).contains(&row.hit_rate));
            assert!(row.ns_uncached > 0.0 && row.ns_cached > 0.0);
            assert!(row.memory_w > 0.0);
            assert!(row.memory_w_cached <= row.memory_w);
            assert!(row.w_per_gbps_uncached > 0.0 && row.w_per_gbps_cached > 0.0);
            // The discount is exactly the hit-rate share of memory power.
            let expected = row.memory_w * (1.0 - row.hit_rate);
            assert!((row.memory_w_cached - expected).abs() < 1e-12);
        }
        // The quick family's working set fits the cache, so skewed
        // traffic must hit nearly always and uniform traffic must still
        // hit often enough to discount meaningfully.
        let skewed = rows.iter().find(|r| r.zipf_s > 1.25).unwrap();
        assert!(skewed.hit_rate > 0.9, "s=1.5 hit rate {}", skewed.hit_rate);
    }
}

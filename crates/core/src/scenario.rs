//! Building concrete evaluation scenarios.
//!
//! A [`Scenario`] binds a K-table workload to a scheme, speed grade, BRAM
//! granularity and pipeline length, resolving everything the equations
//! need: per-engine per-stage memories (Mᵢ,ⱼ), the measured merging
//! efficiency α, the achievable clock and the utilization vector µ.

use crate::resources::{paper_literal_merged_stage_bits, MergedMemoryModel, ResourceUsage};
use crate::PowerError;
use serde::{Deserialize, Serialize};
use vr_fpga::logic::PeProfile;
use vr_fpga::timing::{self, TimingContext};
use vr_fpga::{BramMode, Device, SchemeKind, SpeedGrade};
use vr_net::RoutingTable;
use vr_trie::merge::merge_tables;
use vr_trie::pipeline_map::{MemoryLayout, PAPER_PIPELINE_STAGES};
use vr_trie::{LeafPushedTrie, PipelineProfile, UnibitTrie};

/// Everything needed to evaluate one configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScenarioSpec {
    /// Router organization.
    pub scheme: SchemeKind,
    /// Speed grade.
    pub grade: SpeedGrade,
    /// BRAM granularity.
    pub bram_mode: BramMode,
    /// Pipeline stages N (the paper uses 28).
    pub stages: usize,
    /// Per-network utilization weights µᵢ (`None` = uniform, Assumption 1).
    pub utilization: Option<Vec<f64>>,
    /// Merged-memory model (ignored for NV/VS).
    pub merged_memory: MergedMemoryModel,
    /// Word widths of stage memories.
    pub layout: MemoryLayout,
}

impl ScenarioSpec {
    /// The paper's defaults: 28 stages, 18 Kb blocks, uniform µ,
    /// structural merged memory.
    #[must_use]
    pub fn paper_default(scheme: SchemeKind, grade: SpeedGrade) -> Self {
        Self {
            scheme,
            grade,
            bram_mode: BramMode::K18,
            stages: PAPER_PIPELINE_STAGES,
            utilization: None,
            merged_memory: MergedMemoryModel::Structural,
            layout: MemoryLayout::default(),
        }
    }
}

/// A fully resolved scenario, ready for the Eq. 2/4/6 evaluation.
///
/// ```
/// use vr_net::synth::FamilySpec;
/// use vr_power::models::analytical_power;
/// use vr_power::{Device, Scenario, ScenarioSpec, SchemeKind, SpeedGrade};
///
/// let tables = FamilySpec {
///     k: 4,
///     prefixes_per_table: 300,
///     shared_fraction: 0.6,
///     seed: 42,
///     distribution: vr_net::synth::PrefixLenDistribution::edge_default(),
///     next_hops: 16,
/// }
/// .generate()
/// .unwrap();
/// let scenario = Scenario::build(
///     &tables,
///     ScenarioSpec::paper_default(SchemeKind::Separate, SpeedGrade::Minus2),
///     Device::xc6vlx760(),
/// )
/// .unwrap();
/// let estimate = analytical_power(&scenario);
/// // One device's static power dominates the virtualized budget.
/// assert!(estimate.static_w > 4.0 && estimate.total_w() < 6.0);
/// ```
#[derive(Debug, Clone)]
pub struct Scenario {
    spec: ScenarioSpec,
    k: usize,
    mu: Vec<f64>,
    /// Per-engine per-stage memory bits on one device (1 engine for
    /// NV/VM, K engines for VS). NV replicates the device K times.
    engine_stage_bits: Vec<Vec<u64>>,
    /// Measured merging efficiency (merged scenarios only).
    alpha: Option<f64>,
    /// Resolved operating frequency in MHz.
    freq_mhz: f64,
    device: Device,
}

impl Scenario {
    /// Builds a scenario for `tables` (one per virtual network) on
    /// `device`.
    ///
    /// # Errors
    /// Rejects empty workloads, invalid µ vectors, zero stages; propagates
    /// trie errors and device-fit failures.
    pub fn build(
        tables: &[RoutingTable],
        spec: ScenarioSpec,
        device: Device,
    ) -> Result<Self, PowerError> {
        let k = tables.len();
        if k == 0 {
            return Err(PowerError::InvalidParameter("need at least one table"));
        }
        if spec.stages == 0 {
            return Err(PowerError::InvalidParameter("need at least one stage"));
        }
        let mu = resolve_mu(spec.utilization.as_deref(), k)?;

        let single_profiles = || -> Result<Vec<Vec<u64>>, PowerError> {
            tables
                .iter()
                .map(|t| {
                    let lp = LeafPushedTrie::from_unibit(&UnibitTrie::from_table(t));
                    let profile = PipelineProfile::for_single(&lp, spec.stages, spec.layout)?;
                    Ok(profile.per_stage_memory_bits())
                })
                .collect()
        };

        let (engine_stage_bits, alpha) = match spec.scheme {
            SchemeKind::NonVirtualized | SchemeKind::Separate => (single_profiles()?, None),
            SchemeKind::Merged => {
                let (merged, pushed) = merge_tables(tables)?;
                let measured_alpha = merged.merging_efficiency();
                let stage_bits = match spec.merged_memory {
                    MergedMemoryModel::Structural => {
                        let profile =
                            PipelineProfile::for_merged(&pushed, spec.stages, spec.layout)?;
                        profile.per_stage_memory_bits()
                    }
                    MergedMemoryModel::PaperLiteral { alpha } => {
                        if !(0.0..=1.0).contains(&alpha) || !alpha.is_finite() {
                            return Err(PowerError::InvalidParameter(
                                "literal Eq. 5 alpha must be in [0, 1]",
                            ));
                        }
                        paper_literal_merged_stage_bits(&single_profiles()?, alpha)
                    }
                };
                (vec![stage_bits], Some(measured_alpha))
            }
        };

        let ctx = match spec.scheme {
            SchemeKind::NonVirtualized => TimingContext::SINGLE,
            SchemeKind::Separate => TimingContext {
                parallel_engines: k,
                merged_arity: 1,
            },
            SchemeKind::Merged => TimingContext {
                parallel_engines: 1,
                merged_arity: k,
            },
        };
        let freq_mhz = timing::clock_mhz(spec.grade, ctx);

        let scenario = Self {
            spec,
            k,
            mu,
            engine_stage_bits,
            alpha,
            freq_mhz,
            device,
        };
        scenario.resources().check_fit(&scenario.device)?;
        Ok(scenario)
    }

    /// The spec this scenario was built from.
    #[must_use]
    pub fn spec(&self) -> &ScenarioSpec {
        &self.spec
    }

    /// Number of virtual networks K.
    #[must_use]
    pub fn k(&self) -> usize {
        self.k
    }

    /// The normalized utilization vector µ.
    #[must_use]
    pub fn mu(&self) -> &[f64] {
        &self.mu
    }

    /// Measured merging efficiency, for merged scenarios.
    #[must_use]
    pub fn alpha(&self) -> Option<f64> {
        self.alpha
    }

    /// Resolved operating frequency in MHz.
    #[must_use]
    pub fn freq_mhz(&self) -> f64 {
        self.freq_mhz
    }

    /// The target device.
    #[must_use]
    pub fn device(&self) -> &Device {
        &self.device
    }

    /// Per-engine per-stage memory bits on one device.
    #[must_use]
    pub fn engine_stage_bits(&self) -> &[Vec<u64>] {
        &self.engine_stage_bits
    }

    /// Number of devices D (Eq. 1 vs Eqs. 3/5).
    #[must_use]
    pub fn devices(&self) -> usize {
        match self.spec.scheme {
            SchemeKind::NonVirtualized => self.k,
            _ => 1,
        }
    }

    /// Evaluates the resource model (Eqs. 1/3/5).
    #[must_use]
    pub fn resources(&self) -> ResourceUsage {
        // NV: each device hosts one engine; per-device demand is the
        // *largest* single engine (tables are same-size by Assumption 2,
        // so any engine is representative; we take the max for safety).
        match self.spec.scheme {
            SchemeKind::NonVirtualized => {
                let widest = self
                    .engine_stage_bits
                    .iter()
                    .max_by_key(|bits| bits.iter().sum::<u64>())
                    .cloned()
                    .unwrap_or_default();
                ResourceUsage::from_stage_bits(
                    self.spec.scheme,
                    self.k,
                    std::slice::from_ref(&widest),
                    self.spec.bram_mode,
                    PeProfile::PAPER_UNIBIT,
                )
            }
            _ => ResourceUsage::from_stage_bits(
                self.spec.scheme,
                1,
                &self.engine_stage_bits,
                self.spec.bram_mode,
                PeProfile::PAPER_UNIBIT,
            ),
        }
    }

    /// Exports the scenario as an XPE-style [`vr_fpga::DesignSpec`] —
    /// the handle for per-resource-type reports and device-fit questions
    /// the analytical equations don't answer. The design carries every
    /// engine on one device (so NV exports one device's worth).
    #[must_use]
    pub fn design_spec(&self) -> vr_fpga::DesignSpec {
        // Per-stage memory of the *widest* engine, replicated: a
        // conservative, same-shaped stand-in for near-identical engines
        // (Assumption 2 keeps them close).
        let widest = self
            .engine_stage_bits
            .iter()
            .max_by_key(|bits| bits.iter().sum::<u64>())
            .cloned()
            .unwrap_or_default();
        vr_fpga::DesignSpec::new(
            self.spec.grade,
            self.spec.bram_mode,
            widest,
            self.engine_stage_bits.len(),
            self.freq_mhz,
        )
    }

    /// Aggregate lookup capacity in Gbps at 40-byte packets (§VI-B):
    /// every engine contributes one lookup per cycle.
    #[must_use]
    pub fn capacity_gbps(&self) -> f64 {
        let engines_total = match self.spec.scheme {
            SchemeKind::NonVirtualized | SchemeKind::Separate => self.k,
            SchemeKind::Merged => 1,
        };
        timing::aggregate_throughput_gbps(self.freq_mhz, engines_total)
    }
}

/// Normalizes a µ vector (or builds the uniform one).
fn resolve_mu(utilization: Option<&[f64]>, k: usize) -> Result<Vec<f64>, PowerError> {
    match utilization {
        None => Ok(vec![1.0 / k as f64; k]),
        Some(w) => {
            if w.len() != k {
                return Err(PowerError::InvalidParameter(
                    "utilization length must equal the table count",
                ));
            }
            if w.iter().any(|x| *x < 0.0 || !x.is_finite()) {
                return Err(PowerError::InvalidParameter(
                    "utilization weights must be finite and non-negative",
                ));
            }
            let sum: f64 = w.iter().sum();
            if sum <= 0.0 {
                return Err(PowerError::InvalidParameter(
                    "utilization weights must not be all zero",
                ));
            }
            Ok(w.iter().map(|x| x / sum).collect())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vr_net::synth::FamilySpec;

    fn family(k: usize) -> Vec<RoutingTable> {
        FamilySpec {
            k,
            prefixes_per_table: 300,
            shared_fraction: 0.6,
            seed: 5,
            distribution: vr_net::synth::PrefixLenDistribution::edge_default(),
            next_hops: 8,
        }
        .generate()
        .unwrap()
    }

    fn build(scheme: SchemeKind, k: usize) -> Scenario {
        Scenario::build(
            &family(k),
            ScenarioSpec::paper_default(scheme, SpeedGrade::Minus2),
            Device::xc6vlx760(),
        )
        .unwrap()
    }

    #[test]
    fn device_counts_follow_eq_1_3_5() {
        assert_eq!(build(SchemeKind::NonVirtualized, 4).devices(), 4);
        assert_eq!(build(SchemeKind::Separate, 4).devices(), 1);
        assert_eq!(build(SchemeKind::Merged, 4).devices(), 1);
    }

    #[test]
    fn uniform_mu_by_default() {
        let s = build(SchemeKind::Separate, 4);
        assert_eq!(s.mu().len(), 4);
        for m in s.mu() {
            assert!((m - 0.25).abs() < 1e-12);
        }
    }

    #[test]
    fn merged_scenario_measures_alpha() {
        let s = build(SchemeKind::Merged, 4);
        let alpha = s.alpha().unwrap();
        assert!((0.0..=1.0).contains(&alpha));
        assert!(build(SchemeKind::Separate, 4).alpha().is_none());
    }

    #[test]
    fn merged_clock_is_slower_than_separate() {
        let vm = build(SchemeKind::Merged, 8);
        let vs = build(SchemeKind::Separate, 8);
        let nv = build(SchemeKind::NonVirtualized, 8);
        assert!(vm.freq_mhz() < vs.freq_mhz());
        assert!(vs.freq_mhz() < nv.freq_mhz());
    }

    #[test]
    fn capacity_ordering_matches_sharing() {
        let k = 6;
        let nv = build(SchemeKind::NonVirtualized, k);
        let vs = build(SchemeKind::Separate, k);
        let vm = build(SchemeKind::Merged, k);
        assert!(nv.capacity_gbps() > vm.capacity_gbps());
        assert!(vs.capacity_gbps() > vm.capacity_gbps());
        // NV capacity is exactly K × the single line rate.
        let line = timing::throughput_gbps(SpeedGrade::Minus2.base_clock_mhz());
        assert!((nv.capacity_gbps() - k as f64 * line).abs() < 1e-9);
    }

    #[test]
    fn separate_beyond_pin_budget_fails() {
        let err = Scenario::build(
            &family(16),
            ScenarioSpec::paper_default(SchemeKind::Separate, SpeedGrade::Minus2),
            Device::xc6vlx760(),
        );
        assert!(matches!(
            err,
            Err(PowerError::Fpga(vr_fpga::FpgaError::ResourceExhausted {
                resource: "I/O pins",
                ..
            }))
        ));
        // Merged and NV still fit at K = 16.
        assert!(Scenario::build(
            &family(16),
            ScenarioSpec::paper_default(SchemeKind::Merged, SpeedGrade::Minus2),
            Device::xc6vlx760(),
        )
        .is_ok());
    }

    #[test]
    fn paper_literal_merged_memory_scales_with_alpha() {
        let tables = family(4);
        let mk = |alpha| {
            let spec = ScenarioSpec {
                merged_memory: MergedMemoryModel::PaperLiteral { alpha },
                ..ScenarioSpec::paper_default(SchemeKind::Merged, SpeedGrade::Minus2)
            };
            Scenario::build(&tables, spec, Device::xc6vlx760()).unwrap()
        };
        let lo = mk(0.2);
        let hi = mk(0.8);
        // Literal Eq. 5: memory grows with α (the documented contradiction).
        assert!(hi.resources().memory_bits > lo.resources().memory_bits);
    }

    #[test]
    fn structural_merged_memory_shrinks_with_alpha() {
        // Families with higher structural overlap yield less merged memory.
        let spec = ScenarioSpec::paper_default(SchemeKind::Merged, SpeedGrade::Minus2);
        let make = |shared: f64| {
            let tables = FamilySpec {
                k: 4,
                prefixes_per_table: 300,
                shared_fraction: shared,
                seed: 5,
                distribution: vr_net::synth::PrefixLenDistribution::edge_default(),
                next_hops: 8,
            }
            .generate()
            .unwrap();
            Scenario::build(&tables, spec.clone(), Device::xc6vlx760()).unwrap()
        };
        let lo = make(0.1);
        let hi = make(0.9);
        assert!(hi.alpha().unwrap() > lo.alpha().unwrap());
        assert!(hi.resources().memory_bits < lo.resources().memory_bits);
    }

    #[test]
    fn invalid_parameters_are_rejected() {
        let tables = family(2);
        let mut spec = ScenarioSpec::paper_default(SchemeKind::Separate, SpeedGrade::Minus2);
        spec.stages = 0;
        assert!(Scenario::build(&tables, spec, Device::xc6vlx760()).is_err());
        let mut spec = ScenarioSpec::paper_default(SchemeKind::Separate, SpeedGrade::Minus2);
        spec.utilization = Some(vec![1.0]);
        assert!(Scenario::build(&tables, spec, Device::xc6vlx760()).is_err());
        let mut spec = ScenarioSpec::paper_default(SchemeKind::Merged, SpeedGrade::Minus2);
        spec.merged_memory = MergedMemoryModel::PaperLiteral { alpha: 1.5 };
        assert!(Scenario::build(&tables, spec, Device::xc6vlx760()).is_err());
        assert!(Scenario::build(
            &[],
            ScenarioSpec::paper_default(SchemeKind::Merged, SpeedGrade::Minus2),
            Device::xc6vlx760()
        )
        .is_err());
    }

    #[test]
    fn design_spec_export_agrees_with_the_analytical_memory_model() {
        // The XPE façade and Eq. 6 price the merged engine's memory with
        // the same Table III coefficients: full-activity BRAM power must
        // match exactly; static power differs only by the ±5 % area band.
        let s = build(SchemeKind::Merged, 5);
        let design = s.design_spec();
        let report = design.evaluate(s.device()).unwrap();
        let estimate = crate::models::analytical_power(&s);
        assert!((report.bram_w - estimate.memory_w).abs() < 1e-12);
        assert!((report.logic_w - estimate.logic_w).abs() < 1e-12);
        let static_rel = (report.static_w - estimate.static_w).abs() / estimate.static_w;
        assert!(static_rel <= 0.05 + 1e-9, "static gap {static_rel}");
        // The separate design exports K engines and fits the device.
        let vs = build(SchemeKind::Separate, 5);
        let vs_design = vs.design_spec();
        assert_eq!(vs_design.engines, 5);
        assert!(vs_design.evaluate(vs.device()).is_ok());
    }

    #[test]
    fn weighted_mu_normalizes() {
        let tables = family(2);
        let spec = ScenarioSpec {
            utilization: Some(vec![3.0, 1.0]),
            ..ScenarioSpec::paper_default(SchemeKind::Separate, SpeedGrade::Minus2)
        };
        let s = Scenario::build(&tables, spec, Device::xc6vlx760()).unwrap();
        assert!((s.mu()[0] - 0.75).abs() < 1e-12);
        assert!((s.mu()[1] - 0.25).abs() < 1e-12);
    }
}

//! Model validation — Fig. 7's pipeline, plus a behavioural cross-check.
//!
//! Two independent validations of the analytical models:
//!
//! 1. **Against the PAR simulator** (what the paper does with post
//!    place-and-route results): percentage error `(model − experimental)
//!    / experimental`, which must stay within ±3 %.
//! 2. **Against the cycle-level engine simulator** (ours): the simulator
//!    derives dynamic power from per-cycle energy with the same
//!    coefficients; at matched offered load the two agree up to the
//!    model's conservative assumption that every packet reads memory in
//!    *every* stage (real walks terminate at their leaf depth, so the
//!    simulated BRAM energy is bounded above by the model's).

use crate::models::{analytical_power, experimental_power_w};
use crate::scenario::Scenario;
use crate::PowerError;
use serde::{Deserialize, Serialize};
use vr_engine::{ArrivalModel, EngineConfig, SimConfig, VirtualRouterSim};
use vr_fpga::par::{percentage_error, ParSimulator};
use vr_fpga::{SchemeKind, SpeedGrade};
use vr_net::{RoutingTable, TrafficGenerator, TrafficSpec};

/// One model-vs-experimental comparison (a point of Fig. 7).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ValidationPoint {
    /// Scheme evaluated.
    pub scheme: SchemeKind,
    /// Speed grade.
    pub grade: SpeedGrade,
    /// Number of virtual networks.
    pub k: usize,
    /// Analytical model total, in watts.
    pub model_w: f64,
    /// Simulated post-PAR total, in watts.
    pub experimental_w: f64,
    /// Percentage error, the paper's formula.
    pub error_pct: f64,
}

/// Validates a scenario against the PAR simulator.
#[must_use]
pub fn validate_scenario(scenario: &Scenario, par: &ParSimulator) -> ValidationPoint {
    let model_w = analytical_power(scenario).total_w();
    let experimental_w = experimental_power_w(scenario, par);
    ValidationPoint {
        scheme: scenario.spec().scheme,
        grade: scenario.spec().grade,
        k: scenario.k(),
        model_w,
        experimental_w,
        error_pct: percentage_error(model_w, experimental_w),
    }
}

/// Result of the behavioural (cycle-level) cross-check.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BehavioralCheck {
    /// Model dynamic power, in watts.
    pub model_dynamic_w: f64,
    /// Simulator-measured dynamic power, in watts.
    pub simulated_dynamic_w: f64,
    /// simulated / model ratio (≤ ~1 by construction, see module docs).
    pub ratio: f64,
    /// Lookups completed in the simulation.
    pub completed: u64,
    /// All lookups matched the linear-scan oracle.
    pub fully_correct: bool,
}

/// Runs the engine simulator at saturated shared-line load and compares
/// its measured dynamic power to the model's dynamic component.
///
/// # Errors
/// Propagates simulator construction/run errors.
pub fn behavioral_check(
    tables: &[RoutingTable],
    scenario: &Scenario,
    packets: u64,
    seed: u64,
) -> Result<BehavioralCheck, PowerError> {
    let spec = scenario.spec();
    let sim_cfg = SimConfig {
        organization: spec.scheme,
        stages: spec.stages,
        engine: EngineConfig {
            grade: spec.grade,
            bram_mode: spec.bram_mode,
            gating: vr_fpga::gating::GatingPolicy::PAPER,
            freq_mhz: scenario.freq_mhz(),
        },
        arrivals: ArrivalModel::SharedLine { offered_load: 1.0 },
        arrival_seed: seed,
    };
    let mut sim = VirtualRouterSim::new(tables.to_vec(), sim_cfg)?;
    let mut traffic = TrafficGenerator::new(TrafficSpec::uniform(tables.len(), seed), tables)?;
    let report = sim.run(&mut traffic, packets)?;

    let model_dynamic_w = analytical_power(scenario).dynamic_w();
    let simulated_dynamic_w = report.dynamic_power_w();
    Ok(BehavioralCheck {
        model_dynamic_w,
        simulated_dynamic_w,
        ratio: if model_dynamic_w > 0.0 {
            simulated_dynamic_w / model_dynamic_w
        } else {
            0.0
        },
        completed: report.completed,
        fully_correct: report.is_fully_correct(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::ScenarioSpec;
    use vr_fpga::Device;
    use vr_net::synth::FamilySpec;

    fn family(k: usize) -> Vec<RoutingTable> {
        FamilySpec {
            k,
            prefixes_per_table: 250,
            shared_fraction: 0.6,
            seed: 5,
            distribution: vr_net::synth::PrefixLenDistribution::edge_default(),
            next_hops: 8,
        }
        .generate()
        .unwrap()
    }

    #[test]
    fn validation_points_stay_in_envelope() {
        let par = ParSimulator::default();
        for scheme in SchemeKind::ALL {
            for k in [1usize, 7, 14] {
                let tables = family(k);
                let s = Scenario::build(
                    &tables,
                    ScenarioSpec::paper_default(scheme, SpeedGrade::Minus1L),
                    Device::xc6vlx760(),
                )
                .unwrap();
                let point = validate_scenario(&s, &par);
                assert!(point.error_pct.abs() <= 3.0, "{scheme} K={k}");
                assert!(point.model_w > 0.0 && point.experimental_w > 0.0);
            }
        }
    }

    #[test]
    fn behavioral_check_is_correct_and_bounded() {
        for scheme in SchemeKind::ALL {
            let tables = family(3);
            let s = Scenario::build(
                &tables,
                ScenarioSpec::paper_default(scheme, SpeedGrade::Minus2),
                Device::xc6vlx760(),
            )
            .unwrap();
            let check = behavioral_check(&tables, &s, 1500, 17).unwrap();
            assert!(check.fully_correct, "{scheme}");
            assert_eq!(check.completed, 1500);
            // Simulated ≤ model (early walk termination) but same order.
            assert!(
                check.ratio > 0.3 && check.ratio < 1.15,
                "{scheme}: ratio {}",
                check.ratio
            );
        }
    }
}

//! Guard-style timing that feeds histograms.
//!
//! Hot-path code should never call `std::time::Instant::now()` ad hoc —
//! `vr-audit lint` forbids it in the engine's timed modules. Instead it
//! takes a [`Stopwatch`] (raw elapsed-nanoseconds readings for loops
//! that batch their own accounting) or opens a [`Span`] (a guard that
//! records its lifetime into a histogram when finished or dropped).

use crate::histogram::Histogram;
use crate::registry::MetricsRegistry;
use std::time::Instant;

/// A restartable nanosecond stopwatch. This is the one sanctioned
/// wrapper around `Instant` for instrumented code: callers read elapsed
/// time and decide where it is recorded.
#[derive(Debug, Clone, Copy)]
pub struct Stopwatch {
    started: Instant,
}

impl Stopwatch {
    /// Starts (or restarts) the clock.
    #[must_use]
    pub fn start() -> Self {
        Self {
            started: Instant::now(),
        }
    }

    /// Nanoseconds since `start`, saturated into `u64` (≈584 years).
    #[must_use]
    pub fn elapsed_ns(&self) -> u64 {
        u64::try_from(self.started.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }

    /// Restarts the clock and returns the nanoseconds elapsed before
    /// the restart — convenient for per-stage timing in a loop.
    pub fn lap_ns(&mut self) -> u64 {
        let ns = self.elapsed_ns();
        self.started = Instant::now();
        ns
    }
}

impl Default for Stopwatch {
    fn default() -> Self {
        Self::start()
    }
}

/// A timing guard: created over a histogram handle, it records its own
/// lifetime in nanoseconds exactly once — at [`Span::finish`], or at
/// drop if the caller forgets (early return, panic unwind).
#[derive(Debug)]
pub struct Span {
    watch: Stopwatch,
    histogram: Histogram,
    done: bool,
}

impl Span {
    /// Opens a span recording into `histogram` when it ends.
    #[must_use]
    pub fn enter(histogram: Histogram) -> Self {
        Self {
            watch: Stopwatch::start(),
            histogram,
            done: false,
        }
    }

    /// Ends the span now and returns the recorded duration in
    /// nanoseconds. Dropping after `finish` records nothing further.
    pub fn finish(mut self) -> u64 {
        self.record_once()
    }

    fn record_once(&mut self) -> u64 {
        if self.done {
            return 0;
        }
        self.done = true;
        let ns = self.watch.elapsed_ns();
        self.histogram.record(ns);
        ns
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        self.record_once();
    }
}

/// Opens a [`Span`] recording into the named histogram of a registry:
/// `let _span = span!(registry, "vr_service_publish_ns");`.
///
/// The span holds its own handle (an `Arc` clone), so the registry
/// borrow ends at the macro call site.
#[macro_export]
macro_rules! span {
    ($registry:expr, $name:expr) => {
        $crate::Span::enter($registry.histogram($name))
    };
}

impl MetricsRegistry {
    /// Opens a [`Span`] over the named histogram — the method form of
    /// the [`span!`] macro.
    #[must_use]
    pub fn span(&self, name: &str) -> Span {
        Span::enter(self.histogram(name))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stopwatch_monotonic() {
        let mut w = Stopwatch::start();
        let a = w.elapsed_ns();
        let b = w.elapsed_ns();
        assert!(b >= a);
        let lap = w.lap_ns();
        assert!(lap >= b);
    }

    #[test]
    fn span_records_exactly_once_on_finish() {
        let reg = MetricsRegistry::new(1);
        let span = span!(reg, "vr_span_ns");
        let _ns = span.finish(); // value is timing-dependent
        assert_eq!(reg.histogram("vr_span_ns").count(), 1);
    }

    #[test]
    fn span_records_on_drop() {
        let reg = MetricsRegistry::new(1);
        {
            let _span = reg.span("vr_drop_ns");
        }
        assert_eq!(reg.histogram("vr_drop_ns").count(), 1);
    }

    #[test]
    fn finished_span_does_not_double_record() {
        let reg = MetricsRegistry::new(1);
        let span = reg.span("vr_once_ns");
        let _ = span.finish();
        // finish consumed the span; drop already ran inside finish's
        // scope. One record total.
        assert_eq!(reg.histogram("vr_once_ns").count(), 1);
    }
}

//! Prometheus text exposition for a [`TelemetrySnapshot`], plus a
//! structural validator the smoke tests and CI run over the output.
//!
//! The format follows the Prometheus text exposition conventions:
//! one `# TYPE` line per metric family, counters suffixed `_total`,
//! histograms as cumulative `le`-labelled bucket series plus `_sum`
//! and `_count`. Log₂ buckets are emitted up to the highest non-empty
//! bucket (then `+Inf`), so a 64-bucket histogram stays compact.

use crate::histogram::{bucket_bounds, HistogramSnapshot};
use crate::snapshot::TelemetrySnapshot;
use std::fmt::Write as _;

/// Curated `# HELP` strings for the metric families the workspace
/// emits. Families not listed fall back to a generated one-liner, so
/// every family always carries a HELP line (some scrapers warn on its
/// absence).
const KNOWN_HELP: &[(&str, &str)] = &[
    ("vr_service_lookups_total", "Packets looked up by the service workers"),
    ("vr_service_batches_total", "Batches completed by the service workers"),
    ("vr_service_lookup_ns", "Per-lookup wall time as seen by the workers"),
    ("vr_service_queue_stalls_total", "Submits that found a bounded job queue full"),
    ("vr_service_swaps_total", "RCU table-generation publishes"),
    ("vr_service_generation", "Table generation currently visible to workers"),
    ("vr_service_generation_lag", "Newest published generation minus oldest in-flight one"),
    ("vr_service_updates_total", "Route updates applied through apply_updates"),
    ("vr_service_update_ns", "Wall time of each apply_updates call"),
    ("vr_cache_hits_total", "LPM result-cache hits across workers"),
    ("vr_cache_misses_total", "LPM result-cache misses across workers"),
    ("vr_cache_fills_total", "LPM result-cache slots filled after a miss walk"),
    ("vr_cache_hit_rate_permille", "Steady-state LPM cache hit rate, parts per mille"),
];

/// Escapes a `# HELP` string per the Prometheus text exposition rules:
/// backslash and newline are the only characters with escape sequences
/// (`\\` and `\n`); everything else passes through verbatim.
#[must_use]
pub fn escape_help(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    for c in text.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

fn write_help(out: &mut String, name: &str, kind: &str) {
    let help = KNOWN_HELP
        .iter()
        .find(|(n, _)| *n == name)
        .map_or_else(|| format!("vr-telemetry {kind} {name}"), |(_, h)| (*h).to_string());
    let _ = writeln!(out, "# HELP {} {}", name, escape_help(&help));
}

/// Renders the snapshot in Prometheus text exposition format. Events
/// are not exported here (they are structured, not numeric); use the
/// JSON exporter for the ring. Every family gets a `# HELP` line
/// (escaped per the exposition rules) followed by its `# TYPE` line.
#[must_use]
pub fn to_prometheus(snapshot: &TelemetrySnapshot) -> String {
    let mut out = String::new();
    for c in &snapshot.counters {
        write_help(&mut out, &c.name, "counter");
        let _ = writeln!(out, "# TYPE {} counter", c.name);
        let _ = writeln!(out, "{} {}", c.name, c.value);
    }
    for g in &snapshot.gauges {
        write_help(&mut out, &g.name, "gauge");
        let _ = writeln!(out, "# TYPE {} gauge", g.name);
        let _ = writeln!(out, "{} {}", g.name, g.value);
    }
    for h in &snapshot.histograms {
        write_histogram(&mut out, h);
    }
    out
}

fn write_histogram(out: &mut String, h: &HistogramSnapshot) {
    write_help(out, &h.name, "histogram");
    let _ = writeln!(out, "# TYPE {} histogram", h.name);
    let last_used = h
        .buckets
        .iter()
        .rposition(|&c| c > 0)
        .map_or(0, |i| i + 1)
        .min(h.buckets.len().saturating_sub(1));
    let mut cumulative = 0u64;
    for (i, &c) in h.buckets.iter().enumerate().take(last_used + 1) {
        cumulative += c;
        let _ = writeln!(
            out,
            "{}_bucket{{le=\"{}\"}} {}",
            h.name,
            bucket_bounds(i).1,
            cumulative
        );
    }
    let _ = writeln!(out, "{}_bucket{{le=\"+Inf\"}} {}", h.name, h.count);
    let _ = writeln!(out, "{}_sum {}", h.name, h.sum);
    let _ = writeln!(out, "{}_count {}", h.name, h.count);
}

/// Structurally validates Prometheus text output:
///
/// * exactly one `# TYPE` line per metric family, with a known type;
/// * at most one `# HELP` line per family, naming a family that is
///   also `# TYPE`-declared somewhere in the exposition;
/// * every sample line belongs to a declared family and its value
///   parses as a finite number;
/// * histogram `le` buckets are cumulative (non-decreasing) and the
///   `+Inf` bucket equals `_count`.
///
/// # Errors
/// Returns a description of the first violation found.
pub fn check_prometheus(text: &str) -> Result<(), String> {
    let mut families: Vec<(String, &'static str)> = Vec::new();
    let mut helped: Vec<String> = Vec::new();
    // Per-histogram running state: (family, last cumulative, inf, count)
    let mut hist_last: Vec<(String, u64, Option<u64>, Option<u64>)> = Vec::new();

    for (lineno, line) in text.lines().enumerate() {
        let lineno = lineno + 1;
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# HELP ") {
            let Some(name) = rest.split_whitespace().next() else {
                return Err(format!("line {lineno}: # HELP line names no family"));
            };
            if helped.iter().any(|n| n == name) {
                return Err(format!("line {lineno}: duplicate # HELP for {name}"));
            }
            helped.push(name.to_string());
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut parts = rest.split_whitespace();
            let (Some(name), Some(kind), None) = (parts.next(), parts.next(), parts.next())
            else {
                return Err(format!("line {lineno}: malformed # TYPE line"));
            };
            let kind = match kind {
                "counter" => "counter",
                "gauge" => "gauge",
                "histogram" => "histogram",
                other => return Err(format!("line {lineno}: unknown metric type {other:?}")),
            };
            if families.iter().any(|(n, _)| n == name) {
                return Err(format!("line {lineno}: duplicate # TYPE for {name}"));
            }
            families.push((name.to_string(), kind));
            if kind == "histogram" {
                hist_last.push((name.to_string(), 0, None, None));
            }
            continue;
        }
        if line.starts_with('#') {
            continue; // comments / HELP lines
        }
        let Some((sample, value)) = line.rsplit_once(' ') else {
            return Err(format!("line {lineno}: sample line has no value"));
        };
        let Ok(value) = value.parse::<f64>() else {
            return Err(format!("line {lineno}: value {value:?} is not a number"));
        };
        if !value.is_finite() {
            return Err(format!("line {lineno}: non-finite sample value"));
        }
        let (name, label) = match sample.split_once('{') {
            Some((n, rest)) => (n, rest.strip_suffix('}')),
            None => (sample, None),
        };
        let family = name
            .strip_suffix("_bucket")
            .or_else(|| name.strip_suffix("_sum"))
            .or_else(|| name.strip_suffix("_count"))
            .filter(|base| families.iter().any(|(n, k)| n == base && *k == "histogram"))
            .unwrap_or(name);
        let Some((_, kind)) = families.iter().find(|(n, _)| n == family) else {
            return Err(format!("line {lineno}: sample {name} has no # TYPE line"));
        };
        if *kind == "histogram" {
            let state = hist_last
                .iter_mut()
                .find(|(n, ..)| n == family)
                .expect("histogram families are tracked");
            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
            let count = value as u64;
            if name.ends_with("_bucket") {
                let le = label
                    .and_then(|l| l.strip_prefix("le=\""))
                    .and_then(|l| l.strip_suffix('"'))
                    .ok_or_else(|| format!("line {lineno}: bucket without le label"))?;
                if le == "+Inf" {
                    state.2 = Some(count);
                } else {
                    le.parse::<u64>()
                        .map_err(|_| format!("line {lineno}: bad le bound {le:?}"))?;
                    if count < state.1 {
                        return Err(format!(
                            "line {lineno}: histogram {family} buckets not cumulative"
                        ));
                    }
                    state.1 = count;
                }
            } else if name.ends_with("_count") {
                state.3 = Some(count);
            }
        } else if (*kind == "counter") && value < 0.0 {
            return Err(format!("line {lineno}: counter {name} is negative"));
        }
    }
    for name in &helped {
        if !families.iter().any(|(n, _)| n == name) {
            return Err(format!("# HELP {name} has no matching # TYPE line"));
        }
    }
    for (family, last, inf, count) in &hist_last {
        let (Some(inf), Some(count)) = (inf, count) else {
            return Err(format!("histogram {family} missing +Inf bucket or _count"));
        };
        if inf != count {
            return Err(format!(
                "histogram {family}: +Inf bucket {inf} != _count {count}"
            ));
        }
        if last > inf {
            return Err(format!(
                "histogram {family}: finite buckets exceed +Inf ({last} > {inf})"
            ));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::events::EventKind;
    use crate::registry::MetricsRegistry;

    fn sample() -> TelemetrySnapshot {
        let reg = MetricsRegistry::new(2);
        reg.counter("vr_lookups_total").add(0, 100);
        reg.counter("vr_misses_total").inc(1);
        reg.gauge("vr_generation").set(3);
        let h = reg.histogram("vr_lookup_ns");
        for v in [1u64, 5, 300, 300, 9000] {
            h.record(v);
        }
        reg.events()
            .publish(EventKind::GenerationSwap { generation: 3 });
        reg.snapshot()
    }

    #[test]
    fn exposition_has_one_type_line_per_metric() {
        let text = to_prometheus(&sample());
        let type_lines: Vec<&str> = text
            .lines()
            .filter(|l| l.starts_with("# TYPE "))
            .collect();
        assert_eq!(type_lines.len(), 4);
        assert!(text.contains("# TYPE vr_lookups_total counter"));
        assert!(text.contains("# TYPE vr_generation gauge"));
        assert!(text.contains("# TYPE vr_lookup_ns histogram"));
        assert!(text.contains("vr_lookup_ns_bucket{le=\"+Inf\"} 5"));
        assert!(text.contains("vr_lookup_ns_sum 9606"));
        assert!(text.contains("vr_lookup_ns_count 5"));
    }

    #[test]
    fn exposition_passes_its_own_checker() {
        check_prometheus(&to_prometheus(&sample())).unwrap();
        // An empty snapshot is trivially valid too.
        let empty = MetricsRegistry::new(1).snapshot();
        check_prometheus(&to_prometheus(&empty)).unwrap();
    }

    #[test]
    fn help_lines_round_trip_through_the_checker() {
        let snap = sample();
        let text = to_prometheus(&snap);
        check_prometheus(&text).unwrap();
        // Every family — counter, gauge, histogram, curated or
        // fallback — carries exactly one HELP line, adjacent to (and
        // before) its TYPE line.
        let lines: Vec<&str> = text.lines().collect();
        let helps: Vec<&str> = lines
            .iter()
            .copied()
            .filter(|l| l.starts_with("# HELP "))
            .collect();
        let types: Vec<&str> = lines
            .iter()
            .copied()
            .filter(|l| l.starts_with("# TYPE "))
            .collect();
        assert_eq!(helps.len(), types.len());
        for (i, l) in lines.iter().enumerate() {
            if let Some(rest) = l.strip_prefix("# HELP ") {
                let name = rest.split_whitespace().next().unwrap();
                assert!(
                    lines[i + 1].starts_with(&format!("# TYPE {name} ")),
                    "HELP for {name} not followed by its TYPE line"
                );
            }
        }
        // Unknown families get the generated fallback text…
        assert!(text.contains("# HELP vr_lookups_total vr-telemetry counter vr_lookups_total"));
        // …and a family from the curated table lands verbatim.
        let reg = MetricsRegistry::new(1);
        reg.counter("vr_cache_hits_total").inc(0);
        let curated = to_prometheus(&reg.snapshot());
        check_prometheus(&curated).unwrap();
        assert!(curated.contains("# HELP vr_cache_hits_total LPM result-cache hits across workers"));

        // The checker rejects HELP-specific malformations.
        assert!(check_prometheus("# HELP \n# TYPE vr_x counter\nvr_x 1\n").is_err());
        let dup = "# HELP vr_x a\n# HELP vr_x b\n# TYPE vr_x counter\nvr_x 1\n";
        assert!(check_prometheus(dup).is_err());
        assert!(check_prometheus("# HELP vr_ghost spooky\n").is_err());
    }

    #[test]
    fn escape_help_covers_backslash_and_newline() {
        assert_eq!(escape_help("plain text"), "plain text");
        assert_eq!(escape_help("a\\b"), "a\\\\b");
        assert_eq!(escape_help("line1\nline2"), "line1\\nline2");
        // Escaped output never contains a raw newline, so a HELP line
        // built from arbitrary text stays a single exposition line.
        let nasty = "multi\nline \\ with\nbreaks";
        assert!(!escape_help(nasty).contains('\n'));
    }

    #[test]
    fn checker_rejects_structural_violations() {
        assert!(check_prometheus("vr_orphan 1\n").is_err());
        assert!(check_prometheus("# TYPE vr_x widget\n").is_err());
        assert!(
            check_prometheus("# TYPE vr_x counter\n# TYPE vr_x counter\nvr_x 1\n").is_err()
        );
        assert!(check_prometheus("# TYPE vr_x counter\nvr_x abc\n").is_err());
        let non_cumulative = "# TYPE vr_h histogram\n\
             vr_h_bucket{le=\"1\"} 5\n\
             vr_h_bucket{le=\"3\"} 2\n\
             vr_h_bucket{le=\"+Inf\"} 5\n\
             vr_h_sum 9\n\
             vr_h_count 5\n";
        assert!(check_prometheus(non_cumulative).is_err());
        let missing_inf = "# TYPE vr_h histogram\nvr_h_sum 9\nvr_h_count 5\n";
        assert!(check_prometheus(missing_inf).is_err());
    }
}

//! Prometheus text exposition for a [`TelemetrySnapshot`], plus a
//! structural validator the smoke tests and CI run over the output.
//!
//! The format follows the Prometheus text exposition conventions:
//! one `# TYPE` line per metric family, counters suffixed `_total`,
//! histograms as cumulative `le`-labelled bucket series plus `_sum`
//! and `_count`. Log₂ buckets are emitted up to the highest non-empty
//! bucket (then `+Inf`), so a 64-bucket histogram stays compact.

use crate::histogram::{bucket_bounds, HistogramSnapshot};
use crate::snapshot::TelemetrySnapshot;
use std::fmt::Write as _;

/// Renders the snapshot in Prometheus text exposition format. Events
/// are not exported here (they are structured, not numeric); use the
/// JSON exporter for the ring.
#[must_use]
pub fn to_prometheus(snapshot: &TelemetrySnapshot) -> String {
    let mut out = String::new();
    for c in &snapshot.counters {
        let _ = writeln!(out, "# TYPE {} counter", c.name);
        let _ = writeln!(out, "{} {}", c.name, c.value);
    }
    for g in &snapshot.gauges {
        let _ = writeln!(out, "# TYPE {} gauge", g.name);
        let _ = writeln!(out, "{} {}", g.name, g.value);
    }
    for h in &snapshot.histograms {
        write_histogram(&mut out, h);
    }
    out
}

fn write_histogram(out: &mut String, h: &HistogramSnapshot) {
    let _ = writeln!(out, "# TYPE {} histogram", h.name);
    let last_used = h
        .buckets
        .iter()
        .rposition(|&c| c > 0)
        .map_or(0, |i| i + 1)
        .min(h.buckets.len().saturating_sub(1));
    let mut cumulative = 0u64;
    for (i, &c) in h.buckets.iter().enumerate().take(last_used + 1) {
        cumulative += c;
        let _ = writeln!(
            out,
            "{}_bucket{{le=\"{}\"}} {}",
            h.name,
            bucket_bounds(i).1,
            cumulative
        );
    }
    let _ = writeln!(out, "{}_bucket{{le=\"+Inf\"}} {}", h.name, h.count);
    let _ = writeln!(out, "{}_sum {}", h.name, h.sum);
    let _ = writeln!(out, "{}_count {}", h.name, h.count);
}

/// Structurally validates Prometheus text output:
///
/// * exactly one `# TYPE` line per metric family, with a known type;
/// * every sample line belongs to a declared family and its value
///   parses as a finite number;
/// * histogram `le` buckets are cumulative (non-decreasing) and the
///   `+Inf` bucket equals `_count`.
///
/// # Errors
/// Returns a description of the first violation found.
pub fn check_prometheus(text: &str) -> Result<(), String> {
    let mut families: Vec<(String, &'static str)> = Vec::new();
    // Per-histogram running state: (family, last cumulative, inf, count)
    let mut hist_last: Vec<(String, u64, Option<u64>, Option<u64>)> = Vec::new();

    for (lineno, line) in text.lines().enumerate() {
        let lineno = lineno + 1;
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut parts = rest.split_whitespace();
            let (Some(name), Some(kind), None) = (parts.next(), parts.next(), parts.next())
            else {
                return Err(format!("line {lineno}: malformed # TYPE line"));
            };
            let kind = match kind {
                "counter" => "counter",
                "gauge" => "gauge",
                "histogram" => "histogram",
                other => return Err(format!("line {lineno}: unknown metric type {other:?}")),
            };
            if families.iter().any(|(n, _)| n == name) {
                return Err(format!("line {lineno}: duplicate # TYPE for {name}"));
            }
            families.push((name.to_string(), kind));
            if kind == "histogram" {
                hist_last.push((name.to_string(), 0, None, None));
            }
            continue;
        }
        if line.starts_with('#') {
            continue; // comments / HELP lines
        }
        let Some((sample, value)) = line.rsplit_once(' ') else {
            return Err(format!("line {lineno}: sample line has no value"));
        };
        let Ok(value) = value.parse::<f64>() else {
            return Err(format!("line {lineno}: value {value:?} is not a number"));
        };
        if !value.is_finite() {
            return Err(format!("line {lineno}: non-finite sample value"));
        }
        let (name, label) = match sample.split_once('{') {
            Some((n, rest)) => (n, rest.strip_suffix('}')),
            None => (sample, None),
        };
        let family = name
            .strip_suffix("_bucket")
            .or_else(|| name.strip_suffix("_sum"))
            .or_else(|| name.strip_suffix("_count"))
            .filter(|base| families.iter().any(|(n, k)| n == base && *k == "histogram"))
            .unwrap_or(name);
        let Some((_, kind)) = families.iter().find(|(n, _)| n == family) else {
            return Err(format!("line {lineno}: sample {name} has no # TYPE line"));
        };
        if *kind == "histogram" {
            let state = hist_last
                .iter_mut()
                .find(|(n, ..)| n == family)
                .expect("histogram families are tracked");
            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
            let count = value as u64;
            if name.ends_with("_bucket") {
                let le = label
                    .and_then(|l| l.strip_prefix("le=\""))
                    .and_then(|l| l.strip_suffix('"'))
                    .ok_or_else(|| format!("line {lineno}: bucket without le label"))?;
                if le == "+Inf" {
                    state.2 = Some(count);
                } else {
                    le.parse::<u64>()
                        .map_err(|_| format!("line {lineno}: bad le bound {le:?}"))?;
                    if count < state.1 {
                        return Err(format!(
                            "line {lineno}: histogram {family} buckets not cumulative"
                        ));
                    }
                    state.1 = count;
                }
            } else if name.ends_with("_count") {
                state.3 = Some(count);
            }
        } else if (*kind == "counter") && value < 0.0 {
            return Err(format!("line {lineno}: counter {name} is negative"));
        }
    }
    for (family, last, inf, count) in &hist_last {
        let (Some(inf), Some(count)) = (inf, count) else {
            return Err(format!("histogram {family} missing +Inf bucket or _count"));
        };
        if inf != count {
            return Err(format!(
                "histogram {family}: +Inf bucket {inf} != _count {count}"
            ));
        }
        if last > inf {
            return Err(format!(
                "histogram {family}: finite buckets exceed +Inf ({last} > {inf})"
            ));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::events::EventKind;
    use crate::registry::MetricsRegistry;

    fn sample() -> TelemetrySnapshot {
        let reg = MetricsRegistry::new(2);
        reg.counter("vr_lookups_total").add(0, 100);
        reg.counter("vr_misses_total").inc(1);
        reg.gauge("vr_generation").set(3);
        let h = reg.histogram("vr_lookup_ns");
        for v in [1u64, 5, 300, 300, 9000] {
            h.record(v);
        }
        reg.events()
            .publish(EventKind::GenerationSwap { generation: 3 });
        reg.snapshot()
    }

    #[test]
    fn exposition_has_one_type_line_per_metric() {
        let text = to_prometheus(&sample());
        let type_lines: Vec<&str> = text
            .lines()
            .filter(|l| l.starts_with("# TYPE "))
            .collect();
        assert_eq!(type_lines.len(), 4);
        assert!(text.contains("# TYPE vr_lookups_total counter"));
        assert!(text.contains("# TYPE vr_generation gauge"));
        assert!(text.contains("# TYPE vr_lookup_ns histogram"));
        assert!(text.contains("vr_lookup_ns_bucket{le=\"+Inf\"} 5"));
        assert!(text.contains("vr_lookup_ns_sum 9606"));
        assert!(text.contains("vr_lookup_ns_count 5"));
    }

    #[test]
    fn exposition_passes_its_own_checker() {
        check_prometheus(&to_prometheus(&sample())).unwrap();
        // An empty snapshot is trivially valid too.
        let empty = MetricsRegistry::new(1).snapshot();
        check_prometheus(&to_prometheus(&empty)).unwrap();
    }

    #[test]
    fn checker_rejects_structural_violations() {
        assert!(check_prometheus("vr_orphan 1\n").is_err());
        assert!(check_prometheus("# TYPE vr_x widget\n").is_err());
        assert!(
            check_prometheus("# TYPE vr_x counter\n# TYPE vr_x counter\nvr_x 1\n").is_err()
        );
        assert!(check_prometheus("# TYPE vr_x counter\nvr_x abc\n").is_err());
        let non_cumulative = "# TYPE vr_h histogram\n\
             vr_h_bucket{le=\"1\"} 5\n\
             vr_h_bucket{le=\"3\"} 2\n\
             vr_h_bucket{le=\"+Inf\"} 5\n\
             vr_h_sum 9\n\
             vr_h_count 5\n";
        assert!(check_prometheus(non_cumulative).is_err());
        let missing_inf = "# TYPE vr_h histogram\nvr_h_sum 9\nvr_h_count 5\n";
        assert!(check_prometheus(missing_inf).is_err());
    }
}

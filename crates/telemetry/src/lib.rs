//! # vr-telemetry — always-on, low-overhead observability
//!
//! The paper's whole argument is quantitative: per-resource power
//! breakdowns, per-VN utilization µᵢ, mW/Gbps efficiency. The software
//! reproduction has grown a production datapath (`vr-engine`'s
//! `LookupService`) whose behaviour deserves the same treatment — not
//! one-shot counters flattened into a report at shutdown, but live
//! metrics a scraper can read while the service runs, the way the
//! Terabit hybrid FPGA-ASIC switch-virtualization platform exposes
//! per-virtual-switch counters.
//!
//! Four pieces, designed so the record path costs a handful of relaxed
//! atomic operations and never allocates:
//!
//! * [`MetricsRegistry`] — a global-free registry of named counters,
//!   gauges, and histograms. Counters are **sharded**: one cache-line
//!   padded `AtomicU64` cell per worker shard, so concurrent workers
//!   never contend on a line; a snapshot sums the cells.
//! * [`Histogram`] — fixed 64-bucket log₂ latency histograms (HDR
//!   style): `record(ns)` is one `leading_zeros` plus three relaxed
//!   `fetch_add`s; snapshots extract p50/p90/p99/p999 and merge
//!   losslessly.
//! * [`Span`] / [`Stopwatch`] — guard-style timers feeding histograms,
//!   so hot-path code never touches `std::time::Instant` directly
//!   (`vr-audit lint` enforces this in the engine's timed modules).
//! * [`EventRing`] — a bounded ring of structured events (generation
//!   swaps, audit rejections, worker stalls, batch-width retunes) with
//!   monotonic sequence numbers, so a scraper can *detect* droppage
//!   instead of silently missing history.
//!
//! Everything aggregates into a [`TelemetrySnapshot`] with
//! deterministic field order, exportable as Prometheus text
//! ([`export::to_prometheus`]) or JSON (serde), and audit-friendly:
//! the snapshot round-trips through serde and the Prometheus output
//! passes [`export::check_prometheus`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod events;
pub mod export;
pub mod histogram;
pub mod registry;
pub mod snapshot;
pub mod span;

pub use events::{EventDrain, EventKind, EventRecord, EventRing, EventRingSnapshot};
pub use histogram::{bucket_bounds, bucket_index, Histogram, HistogramSnapshot, BUCKETS};
pub use registry::{Counter, Gauge, MetricsRegistry};
pub use snapshot::{CounterSnapshot, GaugeSnapshot, TelemetrySnapshot};
pub use span::{Span, Stopwatch};

//! The metrics registry: named counters, gauges, and histograms.
//!
//! No global state — a [`MetricsRegistry`] is constructed by whoever
//! owns the instrumented subsystem (the `LookupService` builds one per
//! instance) and handles are cloned out to worker threads. Registration
//! takes a lock once; recording never does.
//!
//! Counters are sharded: each holds one cache-line padded `AtomicU64`
//! per shard (worker), so concurrent increments from different workers
//! touch different lines and never bounce ownership. A snapshot sums
//! the cells. Gauges are single last-writer-wins cells.

use crate::events::EventRing;
use crate::histogram::{Histogram, HistogramCore};
use crate::snapshot::{CounterSnapshot, GaugeSnapshot, TelemetrySnapshot};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// One counter cell, padded to two cache lines so adjacent shards never
/// share a line (128 B covers the adjacent-line prefetcher on x86).
#[repr(align(128))]
struct PaddedCell(AtomicU64);

/// Shared state of one sharded counter.
pub(crate) struct CounterCore {
    cells: Box<[PaddedCell]>,
    /// Bitmask for shard selection; `cells.len()` is a power of two.
    mask: usize,
}

impl CounterCore {
    fn new(shards: usize) -> Self {
        let n = shards.max(1).next_power_of_two();
        Self {
            cells: (0..n).map(|_| PaddedCell(AtomicU64::new(0))).collect(),
            mask: n - 1,
        }
    }
}

/// A cloneable handle onto one sharded monotonic counter.
#[derive(Clone)]
pub struct Counter {
    core: Arc<CounterCore>,
}

impl Counter {
    /// Adds 1 on the caller's shard. Relaxed atomics; lock-free.
    pub fn inc(&self, shard: usize) {
        self.add(shard, 1);
    }

    /// Adds `n` on the caller's shard. Out-of-range shard indexes wrap
    /// (mask), so a handle can never index out of bounds.
    pub fn add(&self, shard: usize, n: u64) {
        self.core.cells[shard & self.core.mask]
            .0
            .fetch_add(n, Ordering::Relaxed);
    }

    /// The counter's current value: the sum over all shard cells.
    #[must_use]
    pub fn value(&self) -> u64 {
        self.core
            .cells
            .iter()
            .map(|c| c.0.load(Ordering::Relaxed))
            .sum()
    }
}

impl std::fmt::Debug for Counter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Counter")
            .field("value", &self.value())
            .finish_non_exhaustive()
    }
}

/// A cloneable handle onto one gauge (a last-writer-wins level).
#[derive(Clone)]
pub struct Gauge {
    cell: Arc<AtomicU64>,
}

impl std::fmt::Debug for Gauge {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Gauge")
            .field("value", &self.value())
            .finish()
    }
}

impl Gauge {
    /// Stores a new level.
    pub fn set(&self, value: u64) {
        self.cell.store(value, Ordering::Relaxed);
    }

    /// Raises the level to `value` if it is higher (high-water mark).
    pub fn set_max(&self, value: u64) {
        self.cell.fetch_max(value, Ordering::Relaxed);
    }

    /// The gauge's current level.
    #[must_use]
    pub fn value(&self) -> u64 {
        self.cell.load(Ordering::Relaxed)
    }
}

/// Registry of named metrics plus the structured-event ring.
///
/// Names must be Prometheus-compatible (`[a-zA-Z_:][a-zA-Z0-9_:]*`);
/// registering the same name twice returns a handle onto the same
/// state, so independent subsystems can share a metric safely.
pub struct MetricsRegistry {
    shards: usize,
    counters: Mutex<Vec<(String, Arc<CounterCore>)>>,
    gauges: Mutex<Vec<(String, Arc<AtomicU64>)>>,
    histograms: Mutex<Vec<(String, Arc<HistogramCore>)>>,
    events: EventRing,
}

/// Default bound on the structured-event ring.
pub const DEFAULT_EVENT_CAPACITY: usize = 1024;

fn valid_metric_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

impl MetricsRegistry {
    /// Creates a registry whose counters are sharded `shards` ways
    /// (rounded up to a power of two), with the default event capacity.
    #[must_use]
    pub fn new(shards: usize) -> Self {
        Self::with_event_capacity(shards, DEFAULT_EVENT_CAPACITY)
    }

    /// Creates a registry with an explicit event-ring bound.
    #[must_use]
    pub fn with_event_capacity(shards: usize, event_capacity: usize) -> Self {
        Self {
            shards: shards.max(1).next_power_of_two(),
            counters: Mutex::new(Vec::new()),
            gauges: Mutex::new(Vec::new()),
            histograms: Mutex::new(Vec::new()),
            events: EventRing::new(event_capacity),
        }
    }

    /// Shard count counters are padded to.
    #[must_use]
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// Gets or registers the counter `name`.
    ///
    /// # Panics
    /// Panics on a name that is not Prometheus-compatible — metric
    /// names are compile-time constants, so this is a programmer error.
    #[must_use]
    pub fn counter(&self, name: &str) -> Counter {
        assert!(valid_metric_name(name), "invalid metric name: {name:?}");
        let mut counters = self.counters.lock();
        if let Some((_, core)) = counters.iter().find(|(n, _)| n == name) {
            return Counter {
                core: Arc::clone(core),
            };
        }
        let core = Arc::new(CounterCore::new(self.shards));
        counters.push((name.to_string(), Arc::clone(&core)));
        Counter { core }
    }

    /// Gets or registers the gauge `name`.
    ///
    /// # Panics
    /// Panics on an invalid metric name.
    #[must_use]
    pub fn gauge(&self, name: &str) -> Gauge {
        assert!(valid_metric_name(name), "invalid metric name: {name:?}");
        let mut gauges = self.gauges.lock();
        if let Some((_, cell)) = gauges.iter().find(|(n, _)| n == name) {
            return Gauge {
                cell: Arc::clone(cell),
            };
        }
        let cell = Arc::new(AtomicU64::new(0));
        gauges.push((name.to_string(), Arc::clone(&cell)));
        Gauge { cell }
    }

    /// Gets or registers the histogram `name`.
    ///
    /// # Panics
    /// Panics on an invalid metric name.
    #[must_use]
    pub fn histogram(&self, name: &str) -> Histogram {
        assert!(valid_metric_name(name), "invalid metric name: {name:?}");
        let mut histograms = self.histograms.lock();
        if let Some((_, core)) = histograms.iter().find(|(n, _)| n == name) {
            return Histogram {
                core: Arc::clone(core),
            };
        }
        let core = Arc::new(HistogramCore::new());
        histograms.push((name.to_string(), Arc::clone(&core)));
        Histogram { core }
    }

    /// The structured-event ring.
    #[must_use]
    pub fn events(&self) -> &EventRing {
        &self.events
    }

    /// Captures every registered metric plus the event ring into a
    /// serializable snapshot. Metrics are sorted by name, so two
    /// snapshots of identical state serialize identically regardless of
    /// registration order.
    #[must_use]
    pub fn snapshot(&self) -> TelemetrySnapshot {
        let mut counters: Vec<CounterSnapshot> = self
            .counters
            .lock()
            .iter()
            .map(|(name, core)| CounterSnapshot {
                name: name.clone(),
                value: Counter {
                    core: Arc::clone(core),
                }
                .value(),
            })
            .collect();
        counters.sort_by(|a, b| a.name.cmp(&b.name));
        let mut gauges: Vec<GaugeSnapshot> = self
            .gauges
            .lock()
            .iter()
            .map(|(name, cell)| GaugeSnapshot {
                name: name.clone(),
                value: cell.load(Ordering::Relaxed),
            })
            .collect();
        gauges.sort_by(|a, b| a.name.cmp(&b.name));
        let mut histograms: Vec<crate::HistogramSnapshot> = self
            .histograms
            .lock()
            .iter()
            .map(|(name, core)| {
                Histogram {
                    core: Arc::clone(core),
                }
                .snapshot(name)
            })
            .collect();
        histograms.sort_by(|a, b| a.name.cmp(&b.name));
        TelemetrySnapshot {
            shards: self.shards as u64,
            counters,
            gauges,
            histograms,
            events: self.events.snapshot(),
        }
    }
}

impl std::fmt::Debug for MetricsRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MetricsRegistry")
            .field("shards", &self.shards)
            .field("counters", &self.counters.lock().len())
            .field("gauges", &self.gauges.lock().len())
            .field("histograms", &self.histograms.lock().len())
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_shard_and_sum() {
        let reg = MetricsRegistry::new(4);
        let c = reg.counter("vr_test_total");
        for shard in 0..4 {
            c.add(shard, 10);
        }
        c.inc(999); // wraps into range via the mask
        assert_eq!(c.value(), 41);
        // Same name → same underlying state.
        assert_eq!(reg.counter("vr_test_total").value(), 41);
    }

    #[test]
    fn gauges_set_and_high_water() {
        let reg = MetricsRegistry::new(1);
        let g = reg.gauge("vr_level");
        g.set(7);
        g.set_max(3);
        assert_eq!(g.value(), 7);
        g.set_max(20);
        assert_eq!(g.value(), 20);
    }

    #[test]
    #[should_panic(expected = "invalid metric name")]
    fn rejects_bad_names() {
        let reg = MetricsRegistry::new(1);
        let _ = reg.counter("1bad name");
    }

    #[test]
    fn snapshot_sorts_names() {
        let reg = MetricsRegistry::new(2);
        reg.counter("vr_b_total").inc(0);
        reg.counter("vr_a_total").inc(0);
        reg.gauge("vr_z").set(1);
        let _ = reg.histogram("vr_h_ns");
        let snap = reg.snapshot();
        assert_eq!(snap.counters[0].name, "vr_a_total");
        assert_eq!(snap.counters[1].name, "vr_b_total");
        assert_eq!(snap.shards, 2);
        assert_eq!(snap.histograms[0].name, "vr_h_ns");
    }

    #[test]
    fn concurrent_increments_lose_nothing() {
        let reg = MetricsRegistry::new(8);
        let c = reg.counter("vr_conc_total");
        std::thread::scope(|s| {
            for shard in 0..8usize {
                let c = c.clone();
                s.spawn(move || {
                    for _ in 0..100_000 {
                        c.inc(shard);
                    }
                });
            }
        });
        assert_eq!(c.value(), 800_000);
    }
}

//! The serializable aggregate of a registry's state.
//!
//! A [`TelemetrySnapshot`] is the contract between the running service
//! and everything downstream: JSON artifacts in CI, the Prometheus
//! exporter, `ServiceReport` fields, and the audit tooling. Field order
//! is declaration order and metric vectors are name-sorted at capture,
//! so two snapshots of identical state serialize to identical bytes.

use crate::events::EventRingSnapshot;
use crate::histogram::HistogramSnapshot;
use serde::{Deserialize, Serialize};

/// One counter's name and aggregated (cross-shard) value.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CounterSnapshot {
    /// Registered metric name.
    pub name: String,
    /// Sum over all shard cells at capture time.
    pub value: u64,
}

/// One gauge's name and current level.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct GaugeSnapshot {
    /// Registered metric name.
    pub name: String,
    /// Level at capture time.
    pub value: u64,
}

/// Everything a registry knows, frozen at one capture instant.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TelemetrySnapshot {
    /// Shard count the registry's counters are padded to.
    pub shards: u64,
    /// All counters, sorted by name.
    pub counters: Vec<CounterSnapshot>,
    /// All gauges, sorted by name.
    pub gauges: Vec<GaugeSnapshot>,
    /// All histograms, sorted by name.
    pub histograms: Vec<HistogramSnapshot>,
    /// The structured-event ring contents.
    pub events: EventRingSnapshot,
}

impl TelemetrySnapshot {
    /// Looks up a counter value by name.
    #[must_use]
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|c| c.name == name)
            .map(|c| c.value)
    }

    /// Looks up a gauge level by name.
    #[must_use]
    pub fn gauge(&self, name: &str) -> Option<u64> {
        self.gauges.iter().find(|g| g.name == name).map(|g| g.value)
    }

    /// Looks up a histogram by name.
    #[must_use]
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.iter().find(|h| h.name == name)
    }

    /// Checks that every counter present in `earlier` is present here
    /// with a value no smaller — the monotonicity a scraper relies on.
    /// Returns the first offending counter name, or `None` if all hold.
    #[must_use]
    pub fn first_counter_regression(&self, earlier: &TelemetrySnapshot) -> Option<String> {
        earlier
            .counters
            .iter()
            .find_map(|prev| match self.counter(&prev.name) {
                Some(now) if now >= prev.value => None,
                _ => Some(prev.name.clone()),
            })
    }

    /// Serializes to compact JSON.
    ///
    /// # Errors
    /// Propagates serializer errors (non-finite floats).
    pub fn to_json(&self) -> Result<String, serde_json::Error> {
        serde_json::to_string(self)
    }

    /// Serializes to pretty-printed JSON.
    ///
    /// # Errors
    /// Propagates serializer errors (non-finite floats).
    pub fn to_json_pretty(&self) -> Result<String, serde_json::Error> {
        serde_json::to_string_pretty(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::events::EventKind;
    use crate::registry::MetricsRegistry;

    fn sample() -> TelemetrySnapshot {
        let reg = MetricsRegistry::new(2);
        reg.counter("vr_lookups_total").add(0, 41);
        reg.counter("vr_lookups_total").inc(1);
        reg.gauge("vr_generation").set(7);
        reg.histogram("vr_lookup_ns").record(900);
        reg.events()
            .publish(EventKind::GenerationSwap { generation: 7 });
        reg.events().publish(EventKind::BatchRetune { width: 8 });
        reg.snapshot()
    }

    #[test]
    fn json_roundtrip_is_lossless() {
        let snap = sample();
        let json = snap.to_json().unwrap();
        let back: TelemetrySnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(back, snap);
        let pretty = snap.to_json_pretty().unwrap();
        let back: TelemetrySnapshot = serde_json::from_str(&pretty).unwrap();
        assert_eq!(back, snap);
    }

    #[test]
    fn serialization_is_deterministic_across_registration_order() {
        let a = {
            let reg = MetricsRegistry::new(2);
            reg.counter("vr_a_total").inc(0);
            reg.counter("vr_b_total").add(0, 2);
            reg.snapshot().to_json().unwrap()
        };
        let b = {
            let reg = MetricsRegistry::new(2);
            reg.counter("vr_b_total").add(1, 2);
            reg.counter("vr_a_total").inc(1);
            reg.snapshot().to_json().unwrap()
        };
        assert_eq!(a, b);
    }

    #[test]
    fn lookup_helpers() {
        let snap = sample();
        assert_eq!(snap.counter("vr_lookups_total"), Some(42));
        assert_eq!(snap.gauge("vr_generation"), Some(7));
        assert_eq!(snap.histogram("vr_lookup_ns").unwrap().count, 1);
        assert_eq!(snap.counter("vr_missing"), None);
        assert_eq!(snap.events.events.len(), 2);
    }

    #[test]
    fn counter_regression_detection() {
        let reg = MetricsRegistry::new(1);
        let c = reg.counter("vr_x_total");
        c.add(0, 5);
        let earlier = reg.snapshot();
        c.add(0, 3);
        let later = reg.snapshot();
        assert_eq!(later.first_counter_regression(&earlier), None);
        // Reversed order: the "later" snapshot has the smaller value.
        assert_eq!(
            earlier.first_counter_regression(&later),
            Some("vr_x_total".to_string())
        );
    }
}

//! Fixed-bucket log₂ latency histograms.
//!
//! Sixty-four buckets cover the whole `u64` domain: bucket `i` counts
//! values in `[2^i, 2^(i+1))` (bucket 0 additionally holds zero). That
//! is the HDR-histogram trade: relative error bounded by one octave,
//! constant memory, and a record path that is one `leading_zeros` plus
//! three relaxed `fetch_add`s — no allocation, no locking, safe to call
//! from every worker thread concurrently.

use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Number of log₂ buckets; covers all of `u64`.
pub const BUCKETS: usize = 64;

/// The bucket a value lands in: `floor(log2(value))`, with 0 and 1
/// sharing bucket 0.
#[must_use]
pub fn bucket_index(value: u64) -> usize {
    if value == 0 {
        0
    } else {
        63 - value.leading_zeros() as usize
    }
}

/// Inclusive `[lo, hi]` range of values bucket `i` counts.
///
/// # Panics
/// Panics if `i >= BUCKETS`.
#[must_use]
pub fn bucket_bounds(i: usize) -> (u64, u64) {
    assert!(i < BUCKETS, "bucket index out of range");
    let lo = if i == 0 { 0 } else { 1u64 << i };
    let hi = if i == 63 { u64::MAX } else { (1u64 << (i + 1)) - 1 };
    (lo, hi)
}

/// Shared atomic histogram state behind a [`Histogram`] handle.
pub(crate) struct HistogramCore {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

impl HistogramCore {
    pub(crate) fn new() -> Self {
        Self {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }
}

/// A cloneable handle onto one registered histogram. Recording is
/// lock-free and allocation-free; handles share state through an `Arc`.
#[derive(Clone)]
pub struct Histogram {
    pub(crate) core: Arc<HistogramCore>,
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Histogram")
            .field("count", &self.count())
            .finish_non_exhaustive()
    }
}

impl Histogram {
    /// Creates a detached histogram (not owned by a registry) — useful
    /// for ad-hoc measurement loops that only need the bucket math.
    #[must_use]
    pub fn detached() -> Self {
        Self {
            core: Arc::new(HistogramCore::new()),
        }
    }

    /// Records one observation. Relaxed atomics only; zero allocation.
    pub fn record(&self, value: u64) {
        let core = &self.core;
        core.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        core.count.fetch_add(1, Ordering::Relaxed);
        core.sum.fetch_add(value, Ordering::Relaxed);
    }

    /// Observations recorded so far.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.core.count.load(Ordering::Relaxed)
    }

    /// Captures the current bucket contents. Concurrent recorders may
    /// land between bucket reads; the snapshot re-derives `count` from
    /// the bucket sum so it is always internally consistent.
    #[must_use]
    pub fn snapshot(&self, name: &str) -> HistogramSnapshot {
        let buckets: Vec<u64> = self
            .core
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let count: u64 = buckets.iter().sum();
        let sum = self.core.sum.load(Ordering::Relaxed);
        HistogramSnapshot::from_buckets(name.to_string(), buckets, count, sum)
    }
}

/// An immutable, serializable view of one histogram, with the standard
/// latency quantiles pre-extracted. Field order is fixed by declaration
/// order, so serialized snapshots are byte-deterministic for equal data.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HistogramSnapshot {
    /// Registered metric name.
    pub name: String,
    /// Total observations (sum of `buckets`).
    pub count: u64,
    /// Sum of all recorded values (wraps on overflow, like HDR).
    pub sum: u64,
    /// Median estimate (upper bound of the bucket holding rank ½).
    pub p50: u64,
    /// 90th-percentile estimate.
    pub p90: u64,
    /// 99th-percentile estimate.
    pub p99: u64,
    /// 99.9th-percentile estimate.
    pub p999: u64,
    /// Raw per-bucket counts, `BUCKETS` entries, bucket `i` spanning
    /// `[2^i, 2^(i+1))`.
    pub buckets: Vec<u64>,
}

impl HistogramSnapshot {
    pub(crate) fn from_buckets(name: String, buckets: Vec<u64>, count: u64, sum: u64) -> Self {
        let mut snap = Self {
            name,
            count,
            sum,
            p50: 0,
            p90: 0,
            p99: 0,
            p999: 0,
            buckets,
        };
        snap.p50 = snap.quantile(0.50);
        snap.p90 = snap.quantile(0.90);
        snap.p99 = snap.quantile(0.99);
        snap.p999 = snap.quantile(0.999);
        snap
    }

    /// Nearest-rank quantile estimate: the upper bound of the bucket
    /// containing the `ceil(q·count)`-th smallest observation. Because
    /// buckets are log₂, the estimate is within one octave (one bucket
    /// width) of the true order statistic — the property tests hold it
    /// to exactly the oracle's bucket.
    #[must_use]
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        #[allow(clippy::cast_precision_loss, clippy::cast_sign_loss)]
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_bounds(i).1;
            }
        }
        bucket_bounds(BUCKETS - 1).1
    }

    /// Mean of the recorded values (0 when empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        #[allow(clippy::cast_precision_loss)]
        {
            self.sum as f64 / self.count as f64
        }
    }

    /// Merges another snapshot into this one (bucket-wise addition) and
    /// re-derives the quantiles. Merging is lossless: the result equals
    /// a histogram that recorded both value streams directly.
    ///
    /// # Panics
    /// Panics if the bucket layouts differ in length.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        assert_eq!(
            self.buckets.len(),
            other.buckets.len(),
            "histogram bucket layouts must match to merge"
        );
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.wrapping_add(other.sum);
        self.p50 = self.quantile(0.50);
        self.p90 = self.quantile(0.90);
        self.p99 = self.quantile(0.99);
        self.p999 = self.quantile(0.999);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_matches_bounds() {
        for i in 0..BUCKETS {
            let (lo, hi) = bucket_bounds(i);
            assert_eq!(bucket_index(lo), i);
            assert_eq!(bucket_index(hi), i);
        }
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 0);
        assert_eq!(bucket_index(2), 1);
        assert_eq!(bucket_index(3), 1);
        assert_eq!(bucket_index(4), 2);
        assert_eq!(bucket_index(u64::MAX), 63);
    }

    #[test]
    fn record_and_quantiles() {
        let h = Histogram::detached();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let snap = h.snapshot("t");
        assert_eq!(snap.count, 1000);
        assert_eq!(snap.sum, 500_500);
        // Rank 500 value is 500 → bucket 8 ([256, 511]), upper bound 511.
        assert_eq!(snap.p50, 511);
        // Rank 990 value is 990 → bucket 9 ([512, 1023]).
        assert_eq!(snap.p99, 1023);
        assert!(snap.mean() > 499.0 && snap.mean() < 502.0);
    }

    #[test]
    fn empty_histogram_is_all_zero() {
        let snap = Histogram::detached().snapshot("t");
        assert_eq!(snap.count, 0);
        assert_eq!(snap.p50, 0);
        assert_eq!(snap.p999, 0);
        assert_eq!(snap.mean(), 0.0);
    }

    #[test]
    fn merge_equals_combined_recording() {
        let a = Histogram::detached();
        let b = Histogram::detached();
        let both = Histogram::detached();
        for v in [1u64, 5, 5, 100, 7000] {
            a.record(v);
            both.record(v);
        }
        for v in [2u64, 900, 1_000_000] {
            b.record(v);
            both.record(v);
        }
        let mut merged = a.snapshot("t");
        merged.merge(&b.snapshot("t"));
        let oracle = both.snapshot("t");
        assert_eq!(merged.buckets, oracle.buckets);
        assert_eq!(merged.count, oracle.count);
        assert_eq!(merged.sum, oracle.sum);
        assert_eq!(merged.p50, oracle.p50);
        assert_eq!(merged.p999, oracle.p999);
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        let h = Histogram::detached();
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let h = h.clone();
                s.spawn(move || {
                    for i in 0..10_000u64 {
                        h.record(t * 1000 + i);
                    }
                });
            }
        });
        assert_eq!(h.snapshot("t").count, 40_000);
    }
}

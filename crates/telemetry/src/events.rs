//! Bounded structured-event ring with droppage-detectable sequencing.
//!
//! Metrics answer "how much"; events answer "what happened, in order".
//! The ring keeps the most recent `capacity` events. Every event gets a
//! monotonic sequence number at publish time, so a consumer comparing
//! the first retained sequence against `dropped` knows exactly how many
//! older events were evicted — droppage is visible, never silent.

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// The structured events the service emits. Variants carry the minimum
/// context needed to reconstruct what the control plane did.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum EventKind {
    /// A new table generation was published (RCU snapshot swap).
    GenerationSwap {
        /// Generation number now visible to workers.
        generation: u64,
    },
    /// A publish was rejected by the audit gate; no swap happened.
    AuditRejected {
        /// Generation that would have been published.
        generation: u64,
    },
    /// A submit found the bounded job queue full (backpressure signal).
    WorkerStall {
        /// Worker the batch was destined for.
        worker: u64,
    },
    /// The auto-tuner selected a new batch width.
    BatchRetune {
        /// Chosen lookup batch width.
        width: u64,
    },
    /// The control plane detected merging-efficiency drift below its
    /// floor and republished a freshly re-merged table generation.
    RemergeTriggered {
        /// Generation published by the re-merge.
        generation: u64,
        /// Merging efficiency α after the re-merge, in parts-per-mille
        /// (events are integer-only; 1000 = α of 1.0).
        alpha_pm: u64,
    },
}

/// One event plus its publish-time sequence number.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct EventRecord {
    /// Monotonic sequence number, starting at 0.
    pub seq: u64,
    /// What happened.
    pub kind: EventKind,
}

/// Bounded MPMC event buffer. Publishing takes a short mutex (events
/// are control-plane rate — swaps, stalls, retunes — not per-packet),
/// keeping the data-plane record path atomic-only.
pub struct EventRing {
    inner: Mutex<RingState>,
    capacity: usize,
}

struct RingState {
    events: VecDeque<EventRecord>,
    next_seq: u64,
    dropped: u64,
}

impl EventRing {
    /// Creates a ring retaining at most `capacity` events (min 1).
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        Self {
            inner: Mutex::new(RingState {
                events: VecDeque::with_capacity(capacity),
                next_seq: 0,
                dropped: 0,
            }),
            capacity,
        }
    }

    /// Maximum number of retained events.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Publishes an event, evicting the oldest if the ring is full.
    /// Returns the event's sequence number.
    pub fn publish(&self, kind: EventKind) -> u64 {
        let mut state = self.inner.lock();
        let seq = state.next_seq;
        state.next_seq += 1;
        if state.events.len() == self.capacity {
            state.events.pop_front();
            state.dropped += 1;
        }
        state.events.push_back(EventRecord { seq, kind });
        seq
    }

    /// Total events ever published.
    #[must_use]
    pub fn published(&self) -> u64 {
        self.inner.lock().next_seq
    }

    /// Copies the retained events out, oldest first.
    #[must_use]
    pub fn snapshot(&self) -> EventRingSnapshot {
        let state = self.inner.lock();
        EventRingSnapshot {
            next_seq: state.next_seq,
            dropped: state.dropped,
            events: state.events.iter().cloned().collect(),
        }
    }

    /// Cursor-based incremental read: returns every retained event with
    /// `seq >= cursor`, oldest first, without consuming anything (the
    /// ring itself stays a bounded MPMC buffer; each consumer keeps its
    /// own cursor). `missed` counts the events the cursor asked for that
    /// were already evicted — after a wrap, a consumer that fell behind
    /// learns exactly how large its gap is instead of silently skipping
    /// it. Feed `next_seq` back as the next call's cursor.
    #[must_use]
    pub fn drain_since(&self, cursor: u64) -> EventDrain {
        let state = self.inner.lock();
        // Events below `dropped` are gone; a cursor pointing into that
        // evicted range missed `dropped - cursor` events.
        let missed = state.dropped.saturating_sub(cursor);
        let events: Vec<EventRecord> = state
            .events
            .iter()
            .filter(|e| e.seq >= cursor)
            .cloned()
            .collect();
        EventDrain {
            events,
            missed,
            next_seq: state.next_seq,
        }
    }
}

/// Result of an incremental [`EventRing::drain_since`] read.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct EventDrain {
    /// Retained events with `seq >= cursor`, oldest first (contiguous).
    pub events: Vec<EventRecord>,
    /// Events in `[cursor, first retained seq)` that were evicted before
    /// this read — the consumer's gap, zero when it kept up.
    pub missed: u64,
    /// Cursor to pass to the next `drain_since` call.
    pub next_seq: u64,
}

impl std::fmt::Debug for EventRing {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let state = self.inner.lock();
        f.debug_struct("EventRing")
            .field("capacity", &self.capacity)
            .field("retained", &state.events.len())
            .field("next_seq", &state.next_seq)
            .field("dropped", &state.dropped)
            .finish()
    }
}

/// A serializable copy of the ring. `events` are oldest-first with
/// contiguous sequence numbers; `events[0].seq == dropped` always holds
/// (everything below it was evicted), so consumers can detect gaps.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct EventRingSnapshot {
    /// Sequence number the next published event will get (= total
    /// events ever published).
    pub next_seq: u64,
    /// Events evicted to stay within capacity.
    pub dropped: u64,
    /// Retained events, oldest first.
    pub events: Vec<EventRecord>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequences_are_monotonic_and_droppage_visible() {
        let ring = EventRing::new(3);
        for g in 0..5u64 {
            let seq = ring.publish(EventKind::GenerationSwap { generation: g });
            assert_eq!(seq, g);
        }
        let snap = ring.snapshot();
        assert_eq!(snap.next_seq, 5);
        assert_eq!(snap.dropped, 2);
        assert_eq!(snap.events.len(), 3);
        // Oldest retained sequence equals the drop count: gap detectable.
        assert_eq!(snap.events[0].seq, snap.dropped);
        assert_eq!(
            snap.events.last().map(|e| e.seq),
            Some(4),
            "newest event retained"
        );
    }

    #[test]
    fn empty_ring_snapshot() {
        let snap = EventRing::new(8).snapshot();
        assert_eq!(snap.next_seq, 0);
        assert_eq!(snap.dropped, 0);
        assert!(snap.events.is_empty());
    }

    #[test]
    fn wraparound_keeps_gap_arithmetic_exact() {
        // Wrap a tiny ring many times over: after N publishes into a
        // capacity-C ring the retained window must be the contiguous
        // tail [N-C, N) and `dropped` must equal N-C exactly, or a
        // consumer's gap computation silently lies after the first wrap.
        let ring = EventRing::new(4);
        let total = 1000u64;
        for g in 0..total {
            ring.publish(EventKind::GenerationSwap { generation: g });
        }
        let snap = ring.snapshot();
        assert_eq!(snap.next_seq, total);
        assert_eq!(snap.dropped, total - 4);
        let seqs: Vec<u64> = snap.events.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![total - 4, total - 3, total - 2, total - 1]);
        // Consumer-side gap check: a reader that last saw sequence 100
        // knows exactly how many events it missed, not just "some".
        let last_seen = 100u64;
        assert_eq!(snap.events[0].seq - (last_seen + 1), total - 4 - 101);
        // Capacity-1 is the degenerate wraparound: every publish evicts,
        // and the single retained seq still equals the drop count.
        let tiny = EventRing::new(1);
        for g in 0..10 {
            tiny.publish(EventKind::GenerationSwap { generation: g });
        }
        let snap = tiny.snapshot();
        assert_eq!(snap.dropped, 9);
        assert_eq!(snap.events[0].seq, snap.dropped);
    }

    #[test]
    fn drain_since_tracks_cursor_across_wraparound() {
        let ring = EventRing::new(4);
        // Empty ring: nothing to read, no gap, cursor stays at 0.
        let d = ring.drain_since(0);
        assert_eq!((d.events.len(), d.missed, d.next_seq), (0, 0, 0));

        for g in 0..3u64 {
            ring.publish(EventKind::GenerationSwap { generation: g });
        }
        // A consumer starting from 0 sees everything, no gap.
        let d = ring.drain_since(0);
        assert_eq!(d.missed, 0);
        assert_eq!(d.next_seq, 3);
        let seqs: Vec<u64> = d.events.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![0, 1, 2]);

        // Incremental read from the returned cursor: only the new events.
        ring.publish(EventKind::WorkerStall { worker: 7 });
        let d2 = ring.drain_since(d.next_seq);
        assert_eq!(d2.missed, 0);
        assert_eq!(d2.events.len(), 1);
        assert_eq!(d2.events[0].seq, 3);
        assert_eq!(d2.next_seq, 4);

        // Wrap the ring far past capacity: the stale cursor's gap is
        // exact (everything between the cursor and the oldest retained
        // event), and the retained tail is contiguous from `dropped`.
        for g in 0..100u64 {
            ring.publish(EventKind::GenerationSwap { generation: g });
        }
        let d3 = ring.drain_since(d2.next_seq);
        assert_eq!(d3.next_seq, 104);
        assert_eq!(d3.missed, 100 - 4, "gap = dropped - cursor");
        let seqs: Vec<u64> = d3.events.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![100, 101, 102, 103]);

        // A caught-up cursor reads nothing and reports no gap even
        // though the ring has dropped plenty overall.
        let d4 = ring.drain_since(d3.next_seq);
        assert_eq!((d4.events.len(), d4.missed), (0, 0));

        // Cursor inside the retained window: partial read, no gap.
        let d5 = ring.drain_since(102);
        let seqs: Vec<u64> = d5.events.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![102, 103]);
        assert_eq!(d5.missed, 0);
    }

    #[test]
    fn concurrent_publishes_assign_unique_seqs() {
        let ring = EventRing::new(1024);
        std::thread::scope(|s| {
            for w in 0..4u64 {
                let ring = &ring;
                s.spawn(move || {
                    for _ in 0..100 {
                        ring.publish(EventKind::WorkerStall { worker: w });
                    }
                });
            }
        });
        let snap = ring.snapshot();
        assert_eq!(snap.next_seq, 400);
        assert_eq!(snap.dropped, 0);
        let mut seqs: Vec<u64> = snap.events.iter().map(|e| e.seq).collect();
        seqs.sort_unstable();
        seqs.dedup();
        assert_eq!(seqs.len(), 400);
    }
}

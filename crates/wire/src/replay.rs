//! Synthetic traffic replay against a live [`crate::WireServer`].
//!
//! Drives a [`crate::WireClient`] with the workspace's standard
//! traffic models (uniform, Zipf, flash-crowd — the same
//! `vr_net::models` generators the in-process benches use, so wire
//! numbers are directly comparable to `bench_lookup` rows) and
//! measures what the paper's consolidation story needs end to end:
//! packets per second through the socket and p50/p99 batch round-trip
//! time. Overload replies are counted, not retried — a replay run at a
//! fixed offered load reports how much of it the server admitted.

use vr_net::{FlashCrowdStream, NetError, NextHop, RoutingTable, SkewedSpec, SkewedTraffic, VnId};
use vr_telemetry::{Histogram, Stopwatch};

use crate::client::WireClient;
use crate::frame::{Message, WireError};

/// Which synthetic workload the replay offers.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TrafficModel {
    /// Uniform draws over the hot set.
    Uniform,
    /// Zipf-skewed draws with exponent `s`.
    Zipf {
        /// Zipf exponent (`s = 0` degenerates to uniform).
        s: f64,
    },
    /// Zipf-skewed draws whose hot set shifts every `phase_len`
    /// packets (cache-adversarial).
    FlashCrowd {
        /// Zipf exponent inside each phase.
        s: f64,
        /// Packets per phase before the hot set shifts.
        phase_len: usize,
    },
}

impl TrafficModel {
    /// Short label for bench rows and logs.
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            TrafficModel::Uniform => "uniform",
            TrafficModel::Zipf { .. } => "zipf",
            TrafficModel::FlashCrowd { .. } => "flash_crowd",
        }
    }
}

/// One replay run's shape.
#[derive(Debug, Clone)]
pub struct ReplayConfig {
    /// Workload model.
    pub model: TrafficModel,
    /// Packets per `LookupRequest` frame.
    pub batch_size: usize,
    /// Frames to send.
    pub batches: usize,
    /// Working-set size the model draws from.
    pub hot_k: usize,
    /// Deterministic generator seed.
    pub seed: u64,
}

impl Default for ReplayConfig {
    fn default() -> Self {
        Self {
            model: TrafficModel::Zipf { s: 1.0 },
            batch_size: 64,
            batches: 200,
            hot_k: 4096,
            seed: 0xC0FF_EE00,
        }
    }
}

/// What one replay run measured.
#[derive(Debug, Clone)]
pub struct ReplayStats {
    /// Frames that came back as `LookupResponse`.
    pub responses: u64,
    /// Packets resolved (sum over responses).
    pub packets: u64,
    /// Frames refused with `Overloaded`.
    pub overloaded: u64,
    /// Frames answered with `ErrorReply`.
    pub errors: u64,
    /// Wall time for the whole run, nanoseconds.
    pub elapsed_ns: u64,
    /// Median batch round-trip, nanoseconds (admitted frames only).
    pub p50_rtt_ns: u64,
    /// Tail batch round-trip, nanoseconds.
    pub p99_rtt_ns: u64,
    /// Lowest snapshot generation seen in responses.
    pub min_generation: u64,
    /// Highest snapshot generation seen in responses.
    pub max_generation: u64,
}

impl ReplayStats {
    /// End-to-end resolved packets per second over the run.
    #[must_use]
    pub fn packets_per_sec(&self) -> f64 {
        if self.elapsed_ns == 0 {
            return 0.0;
        }
        self.packets as f64 * 1e9 / self.elapsed_ns as f64
    }
}

enum Source {
    Skewed(SkewedTraffic),
    Flash(FlashCrowdStream),
}

impl Source {
    fn pairs(&mut self, n: usize) -> Vec<(VnId, u32)> {
        match self {
            Source::Skewed(s) => s.pairs(n),
            Source::Flash(s) => s.pairs(n),
        }
    }
}

fn build_source(
    model: TrafficModel,
    tables: &[RoutingTable],
    hot_k: usize,
    seed: u64,
) -> Result<Source, NetError> {
    // `SkewedSpec`'s first knob is the VN count (must equal
    // `tables.len()`); the working-set size is shaped through
    // `expansions` — concrete destinations materialized per prefix —
    // so `hot_k` becomes a per-VN pool-size target.
    let prefixes = tables.iter().map(RoutingTable::len).min().unwrap_or(1).max(1);
    let expansions = hot_k.div_ceil(prefixes).max(1);
    let spec = |s: f64| {
        let mut spec = SkewedSpec::zipf(tables.len(), s, seed);
        spec.expansions = expansions;
        spec
    };
    match model {
        TrafficModel::Uniform => Ok(Source::Skewed(SkewedTraffic::new(spec(0.0), tables)?)),
        TrafficModel::Zipf { s } => Ok(Source::Skewed(SkewedTraffic::new(spec(s), tables)?)),
        TrafficModel::FlashCrowd { s, phase_len } => Ok(Source::Flash(FlashCrowdStream::new(
            spec(s),
            tables,
            phase_len,
        )?)),
    }
}

/// Replays `cfg` through `client`, strictly serially (one frame in
/// flight — RTT numbers are per-batch, undiluted by pipelining).
/// Returns the run's stats plus every response's `(packets, results,
/// generation)` triple so a caller can check them against an oracle
/// after the fact.
///
/// # Errors
/// Traffic-model construction failure (`hot_k`/table mismatch) mapped
/// to [`WireError::Protocol`], or any transport/framing failure.
pub fn replay(
    client: &mut WireClient,
    tables: &[RoutingTable],
    cfg: &ReplayConfig,
) -> Result<(ReplayStats, Vec<ReplayRecord>), WireError> {
    let mut source = build_source(cfg.model, tables, cfg.hot_k, cfg.seed)
        .map_err(|_| WireError::Protocol("traffic model construction failed"))?;
    let rtt = Histogram::detached();
    let run = Stopwatch::start();
    let mut stats = ReplayStats {
        responses: 0,
        packets: 0,
        overloaded: 0,
        errors: 0,
        elapsed_ns: 0,
        p50_rtt_ns: 0,
        p99_rtt_ns: 0,
        min_generation: u64::MAX,
        max_generation: 0,
    };
    let mut records = Vec::new();
    for _ in 0..cfg.batches {
        let packets = source.pairs(cfg.batch_size);
        let frame = Stopwatch::start();
        let reply = client.lookup(&packets)?;
        match reply {
            Message::LookupResponse {
                generation,
                results,
                ..
            } => {
                rtt.record(frame.elapsed_ns());
                stats.responses += 1;
                stats.packets += results.len() as u64;
                stats.min_generation = stats.min_generation.min(generation);
                stats.max_generation = stats.max_generation.max(generation);
                records.push(ReplayRecord {
                    packets,
                    results,
                    generation,
                });
            }
            Message::Overloaded { .. } => stats.overloaded += 1,
            _ => stats.errors += 1,
        }
    }
    stats.elapsed_ns = run.elapsed_ns();
    let rtt_snap = rtt.snapshot("wire_rtt_ns");
    stats.p50_rtt_ns = rtt_snap.p50;
    stats.p99_rtt_ns = rtt_snap.p99;
    if stats.min_generation == u64::MAX {
        stats.min_generation = 0;
    }
    Ok((stats, records))
}

/// One admitted batch, kept for post-run oracle verification.
#[derive(Debug, Clone)]
pub struct ReplayRecord {
    /// The packets as sent.
    pub packets: Vec<(VnId, u32)>,
    /// Per-packet results as received.
    pub results: Vec<Option<NextHop>>,
    /// Generation the server resolved the batch against.
    pub generation: u64,
}

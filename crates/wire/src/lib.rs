//! # vr-wire — binary data-plane serving tier
//!
//! The ROADMAP's open item: put the lookup engine behind a socket so
//! the virtual-router consolidation story can be measured end to end
//! (client → wire → batch → RCU-snapshot lookup → wire → client)
//! instead of in-process only. This crate is that front end, built —
//! like the rest of the workspace — on `std` plus the vendored
//! stand-ins only:
//!
//! * [`frame`] — the `VRW1` length-prefixed binary protocol: a 16-byte
//!   header (magic, version, frame type, flags, payload length,
//!   CRC-32) followed by a little-endian payload. Messages cover
//!   lookup request/response batches, route-update batches with acks,
//!   typed error and overload replies, and ping/pong liveness.
//! * [`decoder`] — the zero-copy incremental [`FrameDecoder`]: feed it
//!   arbitrary socket chunks, pull complete messages; framing errors
//!   poison the stream (fail-stop, no resynchronization).
//! * [`server`] — the blocking [`WireServer`] over TCP or Unix-domain
//!   sockets: thread-per-connection behind the shared
//!   `vr_obs::AcceptGate`, a backend thread that owns the lookup
//!   service and control plane, and admission control that sheds with
//!   explicit `Overloaded` frames (token-bucket rate limit, bounded
//!   job queue, slow-reader disconnect) instead of stalling.
//! * [`client`] — a small blocking [`WireClient`] used by the replay
//!   binary, the smoke harness, and tests.
//! * [`replay`] — synthetic traffic replay (uniform / Zipf /
//!   flash-crowd via `vr_net::models`) measuring end-to-end packets
//!   per second and p50/p99 round-trip latency.
//!
//! Every response batch carries the table generation it was served
//! from, extending the engine's never-torn batch guarantee across the
//! wire. Timing goes through `vr_telemetry::Stopwatch` and the hot
//! paths avoid panics: the vr-audit `no-raw-instant` and
//! `no-panic-hot-path` lints extend to this crate.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod decoder;
pub mod frame;
pub mod replay;
pub mod server;

pub use client::WireClient;
pub use decoder::FrameDecoder;
pub use frame::{
    ErrorCode, Message, OverloadReason, WireError, HEADER_LEN, MAX_PAYLOAD_BYTES, NO_ROUTE,
};
pub use replay::{replay, ReplayConfig, ReplayRecord, ReplayStats, TrafficModel};
pub use server::{ServerConfig, WireBackend, WireServer};

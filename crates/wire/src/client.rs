//! Minimal blocking client for the `VRW1` protocol.
//!
//! One socket, one [`FrameDecoder`], strictly serial request/response
//! — exactly what the replay harness, the smoke tests, and an oracle
//! checker need. Correlation ids are minted monotonically per client;
//! replies echo them, so a caller can assert it got the answer to the
//! question it asked.

use std::io::{self, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
#[cfg(unix)]
use std::os::unix::net::UnixStream;
use std::time::Duration;

use vr_net::VnId;
use vr_net::RouteUpdate;

use crate::frame::{encode, Message, WireError};
use crate::FrameDecoder;

enum Conn {
    Tcp(TcpStream),
    #[cfg(unix)]
    Uds(UnixStream),
}

impl Conn {
    fn read_some(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            Conn::Tcp(s) => s.read(buf),
            #[cfg(unix)]
            Conn::Uds(s) => s.read(buf),
        }
    }

    fn write_all(&mut self, bytes: &[u8]) -> io::Result<()> {
        match self {
            Conn::Tcp(s) => s.write_all(bytes),
            #[cfg(unix)]
            Conn::Uds(s) => s.write_all(bytes),
        }
    }

    fn set_read_timeout(&self, timeout: Option<Duration>) -> io::Result<()> {
        match self {
            Conn::Tcp(s) => s.set_read_timeout(timeout),
            #[cfg(unix)]
            Conn::Uds(s) => s.set_read_timeout(timeout),
        }
    }
}

/// A blocking `VRW1` client over TCP or a Unix-domain socket.
pub struct WireClient {
    conn: Conn,
    decoder: FrameDecoder,
    next_id: u64,
}

impl std::fmt::Debug for WireClient {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WireClient")
            .field("next_id", &self.next_id)
            .field("buffered", &self.decoder.buffered())
            .finish()
    }
}

impl WireClient {
    /// Connects over TCP.
    ///
    /// # Errors
    /// Connection failure.
    pub fn connect_tcp<A: ToSocketAddrs>(addr: A) -> io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Self::from_conn(Conn::Tcp(stream)))
    }

    /// Connects over a Unix-domain socket.
    ///
    /// # Errors
    /// Connection failure.
    #[cfg(unix)]
    pub fn connect_uds<P: AsRef<std::path::Path>>(path: P) -> io::Result<Self> {
        Ok(Self::from_conn(Conn::Uds(UnixStream::connect(path)?)))
    }

    fn from_conn(conn: Conn) -> Self {
        Self {
            conn,
            decoder: FrameDecoder::new(),
            next_id: 1,
        }
    }

    /// Bounds every subsequent [`Self::recv`]; `None` blocks forever.
    ///
    /// # Errors
    /// Propagates the socket option failure.
    pub fn set_read_timeout(&mut self, timeout: Option<Duration>) -> io::Result<()> {
        self.conn.set_read_timeout(timeout)
    }

    fn mint_id(&mut self) -> u64 {
        let id = self.next_id;
        self.next_id += 1;
        id
    }

    /// Sends one frame.
    ///
    /// # Errors
    /// Socket write failure.
    pub fn send(&mut self, msg: &Message) -> Result<(), WireError> {
        self.conn.write_all(&encode(msg))?;
        Ok(())
    }

    /// Blocks until the next complete frame arrives.
    ///
    /// # Errors
    /// Socket failure, clean server close (`Protocol`), or a framing
    /// error in the server's stream.
    pub fn recv(&mut self) -> Result<Message, WireError> {
        let mut buf = [0u8; 16 * 1024];
        loop {
            if let Some(msg) = self.decoder.next_message()? {
                return Ok(msg);
            }
            match self.conn.read_some(&mut buf) {
                Ok(0) => return Err(WireError::Protocol("connection closed by server")),
                Ok(n) => self.decoder.feed(&buf[..n]),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(WireError::Io(e.to_string())),
            }
        }
    }

    /// Sends `msg` and returns the next reply frame.
    ///
    /// # Errors
    /// Any [`Self::send`] / [`Self::recv`] failure.
    pub fn request(&mut self, msg: &Message) -> Result<Message, WireError> {
        self.send(msg)?;
        self.recv()
    }

    /// Looks a packet batch up. The reply is normally
    /// [`Message::LookupResponse`], but under load shed it is
    /// [`Message::Overloaded`] — callers must match.
    ///
    /// # Errors
    /// Transport or framing failure.
    pub fn lookup(&mut self, packets: &[(VnId, u32)]) -> Result<Message, WireError> {
        let id = self.mint_id();
        self.request(&Message::LookupRequest {
            id,
            packets: packets.to_vec(),
        })
    }

    /// Submits a route-update batch; replies with
    /// [`Message::UpdateAck`], [`Message::Overloaded`], or
    /// [`Message::ErrorReply`].
    ///
    /// # Errors
    /// Transport or framing failure.
    pub fn apply_updates(&mut self, updates: &[RouteUpdate]) -> Result<Message, WireError> {
        let id = self.mint_id();
        self.request(&Message::RouteUpdateBatch {
            id,
            updates: updates.to_vec(),
        })
    }

    /// Round-trips a ping; returns the echoed correlation id.
    ///
    /// # Errors
    /// Transport failure, or a non-pong reply.
    pub fn ping(&mut self) -> Result<u64, WireError> {
        let id = self.mint_id();
        match self.request(&Message::Ping { id })? {
            Message::Pong { id: echoed } if echoed == id => Ok(echoed),
            _ => Err(WireError::Protocol("expected matching pong")),
        }
    }
}

//! Blocking socket server for the `VRW1` protocol.
//!
//! Shape: an accept loop per listener (TCP and/or Unix-domain) admits
//! connections through the shared [`vr_obs::AcceptGate`]; each admitted
//! connection gets a reader thread (owns the [`FrameDecoder`] and the
//! token bucket) and a writer thread (owns the bounded reply queue and
//! the socket's write side). Decoded work frames flow over one bounded
//! job channel into a single backend thread that owns the
//! [`WireBackend`] — so lookups and route-update batches are
//! *serialized*, and a lookup batch can never straddle a publish: the
//! `(results, generation)` pair it returns is torn-free by
//! construction, extending the engine's never-torn batch guarantee
//! across the wire.
//!
//! Admission control sheds, it never stalls:
//!
//! 1. **Connection gate** — past `max_connections`, the socket gets an
//!    `Overloaded(Connections)` frame via the shared half-close-drain
//!    helper and is closed.
//! 2. **Token bucket** — per-connection packets-per-second budget;
//!    over-budget frames get `Overloaded(RateLimited)` and the
//!    connection stays open.
//! 3. **Queue watermark** — a full backend job queue returns
//!    `Overloaded(QueueFull)` immediately instead of queueing the
//!    caller behind a convoy.
//! 4. **Slow reader** — a full per-connection reply queue (the client
//!    stopped reading) disconnects the offender so it cannot wedge the
//!    backend; a write timeout bounds the cost of a half-dead peer.

use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
#[cfg(unix)]
use std::os::unix::net::{UnixListener, UnixStream};
use std::sync::Arc;
use std::time::Duration;

use crossbeam::channel::{bounded, Receiver, Sender, TrySendError};
use parking_lot::Mutex;
use vr_engine::{LookupService, ShardedService};
use vr_net::{NextHop, RouteUpdate, VnId};
use vr_obs::{shed_with, AcceptGate};
use vr_telemetry::{Counter, MetricsRegistry, Stopwatch};

use crate::frame::{encode, encode_into, ErrorCode, Message, OverloadReason, WireError};
use crate::FrameDecoder;

/// Reader poll granularity: the read timeout that lets a blocked
/// reader notice a doomed/stopping connection.
const READER_TICK: Duration = Duration::from_millis(100);

/// Tuning for [`WireServer`]. `Default` is sized for tests and the
/// smoke harness; the replay binary overrides per scenario.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Concurrent-connection bound enforced by the accept gate.
    pub max_connections: usize,
    /// Backend job queue depth — the overload watermark.
    pub job_queue_depth: usize,
    /// Per-connection reply queue depth — the slow-reader bound.
    pub writer_queue_depth: usize,
    /// Per-connection token-bucket rate in packets/updates per second;
    /// `0` disables rate limiting.
    pub rate_limit_pps: u64,
    /// Token-bucket burst capacity in packets; `0` means one second's
    /// worth of `rate_limit_pps`.
    pub rate_burst: u64,
    /// Back-off hint stamped into `Overloaded` frames.
    pub retry_after_ms: u32,
    /// Socket write timeout — bounds how long a wedged peer can hold
    /// the writer thread.
    pub write_timeout_ms: u64,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            max_connections: 64,
            job_queue_depth: 256,
            writer_queue_depth: 64,
            rate_limit_pps: 0,
            rate_burst: 0,
            retry_after_ms: 20,
            write_timeout_ms: 2_000,
        }
    }
}

/// What the server needs from a lookup/control engine. Implementations
/// run on the single backend thread, so `&mut self` methods are
/// naturally serialized — a lookup can never interleave with an update
/// publish.
pub trait WireBackend: Send + 'static {
    /// Resolves a packet batch; returns per-packet next hops in input
    /// order plus the snapshot generation the whole batch used.
    fn lookup(&mut self, packets: &[(VnId, u32)]) -> (Vec<Option<NextHop>>, u64);
    /// Applies a route-update batch atomically (one publish); returns
    /// the generation now live, or a human-readable refusal.
    fn apply_updates(&mut self, updates: &[RouteUpdate]) -> Result<u64, String>;
    /// The currently live generation.
    fn generation(&self) -> u64;
}

impl WireBackend for LookupService {
    fn lookup(&mut self, packets: &[(VnId, u32)]) -> (Vec<Option<NextHop>>, u64) {
        let generation = self.generation();
        (self.process(packets), generation)
    }

    fn apply_updates(&mut self, updates: &[RouteUpdate]) -> Result<u64, String> {
        LookupService::apply_updates(self, updates).map_err(|e| e.to_string())
    }

    fn generation(&self) -> u64 {
        LookupService::generation(self)
    }
}

impl WireBackend for ShardedService {
    fn lookup(&mut self, packets: &[(VnId, u32)]) -> (Vec<Option<NextHop>>, u64) {
        let generation = self.generation();
        (self.process(packets), generation)
    }

    fn apply_updates(&mut self, _updates: &[RouteUpdate]) -> Result<u64, String> {
        Err("sharded backend is lookup-only; route updates need the control plane".into())
    }

    fn generation(&self) -> u64 {
        ShardedService::generation(self)
    }
}

impl WireBackend for vr_control::ControlPlane {
    fn lookup(&mut self, packets: &[(VnId, u32)]) -> (Vec<Option<NextHop>>, u64) {
        let generation = self.service().generation();
        (self.service_mut().process(packets), generation)
    }

    fn apply_updates(&mut self, updates: &[RouteUpdate]) -> Result<u64, String> {
        self.apply_batch(updates)
            .map(|outcome| outcome.generation)
            .map_err(|e| e.to_string())
    }

    fn generation(&self) -> u64 {
        self.service().generation()
    }
}

/// The socket abstraction both listeners produce. All methods take
/// `&self` (sockets support concurrent read/write through shared
/// references), so one `Arc` serves the reader, the writer, and the
/// backend's kill switch.
trait WireStream: Send + Sync {
    fn read_some(&self, buf: &mut [u8]) -> io::Result<usize>;
    fn write_frame(&self, bytes: &[u8]) -> io::Result<()>;
    fn shutdown_both(&self);
    fn set_timeouts(&self, read: Duration, write: Duration);
}

impl WireStream for TcpStream {
    fn read_some(&self, buf: &mut [u8]) -> io::Result<usize> {
        (&mut &*self).read(buf)
    }

    fn write_frame(&self, bytes: &[u8]) -> io::Result<()> {
        (&mut &*self).write_all(bytes)
    }

    fn shutdown_both(&self) {
        let _ = self.shutdown(std::net::Shutdown::Both);
    }

    fn set_timeouts(&self, read: Duration, write: Duration) {
        let _ = self.set_read_timeout(Some(read));
        let _ = self.set_write_timeout(Some(write));
    }
}

#[cfg(unix)]
impl WireStream for UnixStream {
    fn read_some(&self, buf: &mut [u8]) -> io::Result<usize> {
        (&mut &*self).read(buf)
    }

    fn write_frame(&self, bytes: &[u8]) -> io::Result<()> {
        (&mut &*self).write_all(bytes)
    }

    fn shutdown_both(&self) {
        let _ = self.shutdown(std::net::Shutdown::Both);
    }

    fn set_timeouts(&self, read: Duration, write: Duration) {
        let _ = self.set_read_timeout(Some(read));
        let _ = self.set_write_timeout(Some(write));
    }
}

/// One decoded work frame in flight to the backend thread.
struct Job {
    msg: Message,
    /// The connection's bounded reply queue.
    reply: Sender<Message>,
    /// Kill switch for the slow-reader case: shutting the socket down
    /// wakes both connection threads into their exit paths.
    stream: Arc<dyn WireStream>,
}

/// Counters the server publishes when given a registry. Handles are
/// cheap clones; shard indexes wrap inside the counter.
#[derive(Clone)]
struct WireMetrics {
    connections: Option<Counter>,
    shed_connections: Option<Counter>,
    shed_rate_limited: Option<Counter>,
    shed_queue_full: Option<Counter>,
    slow_reader_disconnects: Option<Counter>,
    requests: Option<Counter>,
    lookup_packets: Option<Counter>,
    updates: Option<Counter>,
    decode_errors: Option<Counter>,
}

impl WireMetrics {
    fn new(registry: Option<&Arc<MetricsRegistry>>) -> Self {
        let c = |name: &str| registry.map(|r| r.counter(name));
        Self {
            connections: c("vr_wire_connections_total"),
            shed_connections: c("vr_wire_shed_connections_total"),
            shed_rate_limited: c("vr_wire_shed_rate_limited_total"),
            shed_queue_full: c("vr_wire_shed_queue_full_total"),
            slow_reader_disconnects: c("vr_wire_slow_reader_disconnects_total"),
            requests: c("vr_wire_requests_total"),
            lookup_packets: c("vr_wire_lookup_packets_total"),
            updates: c("vr_wire_updates_total"),
            decode_errors: c("vr_wire_decode_errors_total"),
        }
    }

    fn bump(counter: &Option<Counter>, shard: usize, n: u64) {
        if let Some(c) = counter {
            c.add(shard, n);
        }
    }
}

/// Per-connection token bucket over the monotonic `Stopwatch` clock.
/// Budget is tracked in token-nanoseconds (one token = 1e9 units) so
/// refill needs no floating point and loses no fractional tokens.
struct TokenBucket {
    rate_pps: u64,
    capacity_tok_ns: u64,
    available_tok_ns: u64,
    clock: Stopwatch,
    last_ns: u64,
}

const TOK_NS: u64 = 1_000_000_000;

impl TokenBucket {
    fn new(rate_pps: u64, burst: u64) -> Self {
        let burst = if burst == 0 { rate_pps } else { burst };
        Self {
            rate_pps,
            capacity_tok_ns: burst.saturating_mul(TOK_NS),
            // Start full so a fresh connection can send immediately.
            available_tok_ns: burst.saturating_mul(TOK_NS),
            clock: Stopwatch::start(),
            last_ns: 0,
        }
    }

    /// Takes `cost` tokens if the refilled budget covers them.
    fn try_take(&mut self, cost: u64) -> bool {
        if self.rate_pps == 0 {
            return true;
        }
        let now = self.clock.elapsed_ns();
        let gained = now.saturating_sub(self.last_ns).saturating_mul(self.rate_pps);
        self.last_ns = now;
        self.available_tok_ns = self
            .available_tok_ns
            .saturating_add(gained)
            .min(self.capacity_tok_ns);
        let need = cost.saturating_mul(TOK_NS);
        if self.available_tok_ns >= need {
            self.available_tok_ns -= need;
            true
        } else {
            false
        }
    }
}

/// Shared server state the accept loops and connections see.
struct Shared {
    gate: Arc<AcceptGate>,
    stopping: Mutex<bool>,
    cfg: ServerConfig,
    metrics: WireMetrics,
    /// Cloned once per admitted connection; taken (set to `None`) at
    /// shutdown so the backend's channel fully disconnects once the
    /// last connection reader exits.
    job_tx: Mutex<Option<Sender<Job>>>,
}

/// A running `VRW1` server. Dropping it (or calling
/// [`WireServer::shutdown`]) stops the accept loops, disconnects the
/// job queue, and joins the backend thread.
pub struct WireServer<B: WireBackend> {
    addr: Option<SocketAddr>,
    #[cfg(unix)]
    uds_path: Option<std::path::PathBuf>,
    shared: Arc<Shared>,
    accept_threads: Vec<std::thread::JoinHandle<()>>,
    backend_thread: Option<std::thread::JoinHandle<B>>,
}

impl<B: WireBackend> WireServer<B> {
    /// Binds a TCP listener (use port 0 for an OS-chosen port) and
    /// starts serving `backend`.
    ///
    /// # Errors
    /// Bind, `local_addr`, or thread-spawn failure.
    pub fn serve_tcp<A: ToSocketAddrs>(
        addr: A,
        backend: B,
        cfg: ServerConfig,
        registry: Option<&Arc<MetricsRegistry>>,
    ) -> io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let mut server = Self::start(backend, cfg, registry)?;
        server.addr = Some(local);
        server.spawn_acceptor("vr-wire-tcp", move |shared| tcp_accept_loop(&listener, &shared))?;
        Ok(server)
    }

    /// Binds a Unix-domain listener at `path` (removing a stale socket
    /// file first) and starts serving `backend`.
    ///
    /// # Errors
    /// Bind or thread-spawn failure.
    #[cfg(unix)]
    pub fn serve_uds<P: AsRef<std::path::Path>>(
        path: P,
        backend: B,
        cfg: ServerConfig,
        registry: Option<&Arc<MetricsRegistry>>,
    ) -> io::Result<Self> {
        let path = path.as_ref().to_path_buf();
        let _ = std::fs::remove_file(&path);
        let listener = UnixListener::bind(&path)?;
        let mut server = Self::start(backend, cfg, registry)?;
        server.uds_path = Some(path);
        server.spawn_acceptor("vr-wire-uds", move |shared| uds_accept_loop(&listener, &shared))?;
        Ok(server)
    }

    fn start(
        backend: B,
        cfg: ServerConfig,
        registry: Option<&Arc<MetricsRegistry>>,
    ) -> io::Result<Self> {
        let metrics = WireMetrics::new(registry);
        let (job_tx, job_rx) = bounded::<Job>(cfg.job_queue_depth.max(1));
        let shared = Arc::new(Shared {
            gate: AcceptGate::new(cfg.max_connections),
            stopping: Mutex::new(false),
            cfg,
            metrics: metrics.clone(),
            job_tx: Mutex::new(Some(job_tx)),
        });
        let backend_thread = std::thread::Builder::new()
            .name("vr-wire-backend".into())
            .spawn(move || backend_loop(backend, &job_rx, &metrics))?;
        Ok(Self {
            addr: None,
            #[cfg(unix)]
            uds_path: None,
            shared,
            accept_threads: Vec::new(),
            backend_thread: Some(backend_thread),
        })
    }

    fn spawn_acceptor(
        &mut self,
        name: &str,
        run: impl FnOnce(Arc<Shared>) + Send + 'static,
    ) -> io::Result<()> {
        let shared = Arc::clone(&self.shared);
        let handle = std::thread::Builder::new()
            .name(name.into())
            .spawn(move || run(shared))?;
        self.accept_threads.push(handle);
        Ok(())
    }

    /// The bound TCP address (with the OS-chosen port when bound to
    /// `:0`); `None` for a UDS-only server.
    #[must_use]
    pub fn local_addr(&self) -> Option<SocketAddr> {
        self.addr
    }

    /// Live connection count (accept-gate view).
    #[must_use]
    pub fn active_connections(&self) -> usize {
        self.shared.gate.active()
    }

    /// Stops accepting, disconnects the job queue, joins the backend
    /// thread, and returns the backend (so a test can compare the
    /// served state against an oracle).
    #[must_use = "the returned backend carries final state; drop it explicitly if unwanted"]
    pub fn shutdown(mut self) -> Option<B> {
        self.stop_accepting();
        // Replacing the shared handle is not possible (connections hold
        // clones), but connection readers observe `stopping` within a
        // reader tick and drop their job senders; the backend exits
        // when the channel fully disconnects.
        let backend = self.backend_thread.take().and_then(|h| h.join().ok());
        #[cfg(unix)]
        if let Some(path) = self.uds_path.take() {
            let _ = std::fs::remove_file(path);
        }
        backend
    }

    fn stop_accepting(&mut self) {
        *self.shared.stopping.lock() = true;
        // Poke each blocked accept() awake with a throwaway connection.
        if let Some(addr) = self.addr {
            let _ = TcpStream::connect(addr);
        }
        #[cfg(unix)]
        if let Some(path) = &self.uds_path {
            let _ = UnixStream::connect(path);
        }
        for handle in self.accept_threads.drain(..) {
            let _ = handle.join();
        }
        // Release the server's own job sender: the backend now exits as
        // soon as every connection reader (each observes `stopping`
        // within a reader tick) drops its clone.
        *self.shared.job_tx.lock() = None;
    }
}

impl<B: WireBackend> Drop for WireServer<B> {
    fn drop(&mut self) {
        self.stop_accepting();
        if let Some(handle) = self.backend_thread.take() {
            let _ = handle.join();
        }
        #[cfg(unix)]
        if let Some(path) = self.uds_path.take() {
            let _ = std::fs::remove_file(path);
        }
    }
}

impl<B: WireBackend> std::fmt::Debug for WireServer<B> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WireServer")
            .field("addr", &self.addr)
            .field("active_connections", &self.shared.gate.active())
            .field("max_connections", &self.shared.gate.max_connections())
            .finish()
    }
}

fn tcp_accept_loop(listener: &TcpListener, shared: &Arc<Shared>) {
    loop {
        let Ok((stream, _)) = listener.accept() else {
            if *shared.stopping.lock() {
                return;
            }
            continue;
        };
        if *shared.stopping.lock() {
            return;
        }
        admit(stream, shared);
    }
}

#[cfg(unix)]
fn uds_accept_loop(listener: &UnixListener, shared: &Arc<Shared>) {
    loop {
        let Ok((stream, _)) = listener.accept() else {
            if *shared.stopping.lock() {
                return;
            }
            continue;
        };
        if *shared.stopping.lock() {
            return;
        }
        admit(stream, shared);
    }
}

/// Gate + spawn for one fresh connection; works for any stream kind
/// that is both sheddable (`vr_obs::ShedStream`) and servable
/// ([`WireStream`]).
fn admit<S>(stream: S, shared: &Arc<Shared>)
where
    S: WireStream + vr_obs::ShedStream + 'static,
{
    let Some(permit) = shared.gate.try_admit() else {
        WireMetrics::bump(&shared.metrics.shed_connections, 0, 1);
        let refusal = encode(&Message::Overloaded {
            id: 0,
            reason: OverloadReason::Connections,
            retry_after_ms: shared.cfg.retry_after_ms,
        });
        shed_with(
            stream,
            &refusal,
            Duration::from_millis(shared.cfg.write_timeout_ms),
        );
        return;
    };
    let Some(job_tx) = shared.job_tx.lock().clone() else {
        // Shutdown raced the accept: no backend to serve this socket.
        return;
    };
    WireMetrics::bump(&shared.metrics.connections, 0, 1);
    let conn_shared = Arc::clone(shared);
    let spawned = std::thread::Builder::new()
        .name("vr-wire-conn".into())
        .spawn(move || {
            // Held for the reader's lifetime; the writer's final flush
            // after reader exit is bounded by the write timeout.
            let _permit = permit;
            serve_connection(Arc::new(stream), &conn_shared, &job_tx);
        });
    // Spawn failure (resource exhaustion): the permit already dropped
    // with the closure; the socket closes unreplied, which the client
    // sees as a refused connection.
    drop(spawned);
}

/// The reader side of one connection: decode frames, run admission,
/// forward work to the backend, echo pings locally.
fn serve_connection(stream: Arc<dyn WireStream>, shared: &Arc<Shared>, job_tx: &Sender<Job>) {
    stream.set_timeouts(
        READER_TICK,
        Duration::from_millis(shared.cfg.write_timeout_ms),
    );
    let (reply_tx, reply_rx) = bounded::<Message>(shared.cfg.writer_queue_depth.max(1));
    let writer_stream = Arc::clone(&stream);
    let writer = std::thread::Builder::new()
        .name("vr-wire-writer".into())
        .spawn(move || writer_loop(&writer_stream, &reply_rx));
    if writer.is_err() {
        stream.shutdown_both();
        return;
    }
    let mut decoder = FrameDecoder::new();
    let mut bucket = TokenBucket::new(shared.cfg.rate_limit_pps, shared.cfg.rate_burst);
    let mut read_buf = [0u8; 16 * 1024];
    'conn: loop {
        match stream.read_some(&mut read_buf) {
            Ok(0) => break 'conn,
            Ok(n) => decoder.feed(&read_buf[..n]),
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut | io::ErrorKind::Interrupted
                ) =>
            {
                if *shared.stopping.lock() {
                    break 'conn;
                }
                continue;
            }
            Err(_) => break 'conn,
        }
        loop {
            match decoder.next_message() {
                Ok(Some(msg)) => {
                    if !handle_frame(msg, &stream, shared, job_tx, &mut bucket, &reply_tx) {
                        break 'conn;
                    }
                }
                Ok(None) => break,
                Err(err) => {
                    // Framing is unrecoverable: report once, then tear
                    // the connection down (fail-stop, no resync).
                    WireMetrics::bump(&shared.metrics.decode_errors, 0, 1);
                    let _ = reply_tx.try_send(error_reply(0, &err));
                    break 'conn;
                }
            }
        }
    }
    // Dropping the last reply sender lets the writer drain and exit;
    // the socket closes when the writer's Arc drops.
    drop(reply_tx);
}

/// Routes one decoded frame. Returns `false` when the connection must
/// close (slow reader or server stopping).
fn handle_frame(
    msg: Message,
    stream: &Arc<dyn WireStream>,
    shared: &Arc<Shared>,
    job_tx: &Sender<Job>,
    bucket: &mut TokenBucket,
    reply_tx: &Sender<Message>,
) -> bool {
    let metrics = &shared.metrics;
    // (correlation id, token cost) for the two work-frame kinds; None
    // for everything else.
    let work = match &msg {
        Message::LookupRequest { id, packets } => Some((*id, packets.len() as u64)),
        Message::RouteUpdateBatch { id, updates } => Some((*id, updates.len() as u64)),
        _ => None,
    };
    let reply = if let Some((id, cost)) = work {
        WireMetrics::bump(&metrics.requests, 0, 1);
        if !bucket.try_take(cost.max(1)) {
            WireMetrics::bump(&metrics.shed_rate_limited, 0, 1);
            Some(overloaded(id, OverloadReason::RateLimited, shared))
        } else {
            let job = Job {
                msg,
                reply: reply_tx.clone(),
                stream: Arc::clone(stream),
            };
            match job_tx.try_send(job) {
                Ok(()) => None,
                Err(TrySendError::Full(job)) => {
                    WireMetrics::bump(&metrics.shed_queue_full, 0, 1);
                    drop(job);
                    Some(overloaded(id, OverloadReason::QueueFull, shared))
                }
                Err(TrySendError::Disconnected(_)) => return false,
            }
        }
    } else if let Message::Ping { id } = msg {
        Some(Message::Pong { id })
    } else {
        Some(Message::ErrorReply {
            id: msg.id(),
            code: ErrorCode::BadRequest,
            message: format!("unexpected client frame type 0x{:02x}", msg.frame_type()),
        })
    };
    let Some(reply) = reply else { return true };
    match reply_tx.try_send(reply) {
        Ok(()) => true,
        Err(_) => {
            // Reply queue full while we are still reading: the peer
            // writes but does not read. Disconnect it.
            WireMetrics::bump(&metrics.slow_reader_disconnects, 0, 1);
            stream.shutdown_both();
            false
        }
    }
}

fn overloaded(id: u64, reason: OverloadReason, shared: &Arc<Shared>) -> Message {
    Message::Overloaded {
        id,
        reason,
        retry_after_ms: shared.cfg.retry_after_ms,
    }
}

fn error_reply(id: u64, err: &WireError) -> Message {
    Message::ErrorReply {
        id,
        code: ErrorCode::BadRequest,
        message: err.to_string(),
    }
}

/// Writer side of one connection: encode and flush queued replies.
fn writer_loop(stream: &Arc<dyn WireStream>, reply_rx: &Receiver<Message>) {
    let mut buf = Vec::with_capacity(4 * 1024);
    while let Ok(msg) = reply_rx.recv() {
        buf.clear();
        encode_into(&msg, &mut buf);
        if stream.write_frame(&buf).is_err() {
            stream.shutdown_both();
            return;
        }
    }
}

/// The single backend thread: owns the engine, serializes lookups and
/// updates, scatters replies back to connection writer queues.
fn backend_loop<B: WireBackend>(mut backend: B, job_rx: &Receiver<Job>, metrics: &WireMetrics) -> B {
    while let Ok(job) = job_rx.recv() {
        let reply = match job.msg {
            Message::LookupRequest { id, packets } => {
                WireMetrics::bump(&metrics.lookup_packets, 0, packets.len() as u64);
                let (results, generation) = backend.lookup(&packets);
                Message::LookupResponse {
                    id,
                    generation,
                    results,
                }
            }
            Message::RouteUpdateBatch { id, updates } => {
                WireMetrics::bump(&metrics.updates, 0, updates.len() as u64);
                match backend.apply_updates(&updates) {
                    Ok(generation) => Message::UpdateAck { id, generation },
                    Err(message) => Message::ErrorReply {
                        id,
                        code: ErrorCode::Internal,
                        message,
                    },
                }
            }
            // The reader never forwards anything else.
            other => Message::ErrorReply {
                id: other.id(),
                code: ErrorCode::Internal,
                message: "non-work frame reached the backend".into(),
            },
        };
        match job.reply.try_send(reply) {
            Ok(()) => {}
            Err(TrySendError::Full(_)) => {
                // The client asked for work, then stopped reading the
                // answers. Cut it loose rather than let its queue
                // backpressure the shared backend.
                WireMetrics::bump(&metrics.slow_reader_disconnects, 0, 1);
                job.stream.shutdown_both();
            }
            Err(TrySendError::Disconnected(_)) => {}
        }
    }
    backend
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    /// Deterministic engine stand-in: next hop = low byte of (vn + dst),
    /// zero dst = no route; updates bump the generation. `lookup_delay`
    /// simulates a slow backend for the queue-watermark tests.
    struct FakeBackend {
        generation: u64,
        lookup_delay: Duration,
    }

    impl FakeBackend {
        fn new() -> Self {
            Self {
                generation: 1,
                lookup_delay: Duration::ZERO,
            }
        }

        fn expected(vn: VnId, dst: u32) -> Option<NextHop> {
            if dst == 0 {
                None
            } else {
                Some((u32::from(vn).wrapping_add(dst) & 0xFF) as u8)
            }
        }
    }

    impl WireBackend for FakeBackend {
        fn lookup(&mut self, packets: &[(VnId, u32)]) -> (Vec<Option<NextHop>>, u64) {
            if !self.lookup_delay.is_zero() {
                std::thread::sleep(self.lookup_delay);
            }
            let results = packets
                .iter()
                .map(|&(vn, dst)| Self::expected(vn, dst))
                .collect();
            (results, self.generation)
        }

        fn apply_updates(&mut self, updates: &[RouteUpdate]) -> Result<u64, String> {
            if updates.is_empty() {
                return Err("empty update batch".into());
            }
            self.generation += 1;
            Ok(self.generation)
        }

        fn generation(&self) -> u64 {
            self.generation
        }
    }

    fn start_tcp(cfg: ServerConfig) -> (WireServer<FakeBackend>, SocketAddr) {
        let server =
            WireServer::serve_tcp("127.0.0.1:0", FakeBackend::new(), cfg, None).expect("bind");
        let addr = server.local_addr().expect("tcp addr");
        (server, addr)
    }

    #[test]
    fn ping_lookup_and_update_round_trip_over_tcp() {
        let (server, addr) = start_tcp(ServerConfig::default());
        let mut client = crate::WireClient::connect_tcp(addr).expect("connect");
        client.ping().expect("ping");

        let packets = vec![(0u16, 9u32), (3, 0), (7, 200)];
        let reply = client.lookup(&packets).expect("lookup");
        let Message::LookupResponse {
            generation,
            results,
            ..
        } = reply
        else {
            panic!("expected LookupResponse, got {reply:?}");
        };
        assert_eq!(generation, 1);
        let want: Vec<_> = packets
            .iter()
            .map(|&(vn, dst)| FakeBackend::expected(vn, dst))
            .collect();
        assert_eq!(results, want);

        let update = vr_net::RouteUpdate::Announce {
            vnid: 2,
            prefix: vr_net::Ipv4Prefix::new(0x0A00_0000, 8).expect("prefix"),
            next_hop: 4,
        };
        let ack = client.apply_updates(&[update]).expect("update");
        assert!(matches!(ack, Message::UpdateAck { generation: 2, .. }), "got {ack:?}");

        // Lookups after the ack see the new generation.
        let reply = client.lookup(&packets).expect("lookup 2");
        assert!(matches!(reply, Message::LookupResponse { generation: 2, .. }));

        let backend = server.shutdown().expect("backend returns");
        assert_eq!(backend.generation, 2);
    }

    #[test]
    fn connection_gate_sheds_with_overloaded_frame() {
        let cfg = ServerConfig {
            max_connections: 1,
            ..ServerConfig::default()
        };
        let (server, addr) = start_tcp(cfg);
        let mut first = crate::WireClient::connect_tcp(addr).expect("first");
        first.ping().expect("first connection serves");

        let mut second = crate::WireClient::connect_tcp(addr).expect("second connects");
        second
            .set_read_timeout(Some(Duration::from_secs(5)))
            .expect("timeout");
        let refusal = second.recv().expect("refusal frame");
        assert!(
            matches!(
                refusal,
                Message::Overloaded {
                    id: 0,
                    reason: OverloadReason::Connections,
                    ..
                }
            ),
            "got {refusal:?}"
        );
        // The shed socket then closes; the admitted one keeps working.
        assert!(second.recv().is_err());
        first.ping().expect("first connection still live");
        drop(server);
    }

    #[test]
    fn rate_limit_sheds_but_connection_survives() {
        let cfg = ServerConfig {
            rate_limit_pps: 1,
            rate_burst: 1,
            ..ServerConfig::default()
        };
        let (server, addr) = start_tcp(cfg);
        let mut client = crate::WireClient::connect_tcp(addr).expect("connect");
        let ok = client.lookup(&[(0, 1)]).expect("first admitted");
        assert!(matches!(ok, Message::LookupResponse { .. }), "got {ok:?}");
        let shed = client.lookup(&[(0, 2)]).expect("second replied");
        assert!(
            matches!(
                shed,
                Message::Overloaded {
                    reason: OverloadReason::RateLimited,
                    ..
                }
            ),
            "got {shed:?}"
        );
        // Pings are free and the connection is still open.
        client.ping().expect("connection survived the shed");
        drop(server);
    }

    #[test]
    fn full_job_queue_sheds_with_queue_full() {
        let cfg = ServerConfig {
            job_queue_depth: 1,
            writer_queue_depth: 64,
            ..ServerConfig::default()
        };
        let mut backend = FakeBackend::new();
        backend.lookup_delay = Duration::from_millis(50);
        let server = WireServer::serve_tcp("127.0.0.1:0", backend, cfg, None).expect("bind");
        let addr = server.local_addr().expect("addr");
        let mut client = crate::WireClient::connect_tcp(addr).expect("connect");
        client
            .set_read_timeout(Some(Duration::from_secs(10)))
            .expect("timeout");
        // Flood without reading: the slow backend drains one job at a
        // time, so most of the burst must bounce off the depth-1 queue.
        let burst = 8;
        for i in 0..burst {
            client
                .send(&Message::LookupRequest {
                    id: 100 + i,
                    packets: vec![(0, 1)],
                })
                .expect("send");
        }
        let mut served = 0;
        let mut shed = 0;
        for _ in 0..burst {
            match client.recv().expect("reply") {
                Message::LookupResponse { .. } => served += 1,
                Message::Overloaded {
                    reason: OverloadReason::QueueFull,
                    ..
                } => shed += 1,
                other => panic!("unexpected reply {other:?}"),
            }
        }
        assert!(served >= 1, "at least one admitted");
        assert!(shed >= 1, "at least one shed, served={served}");
        // Live after the storm.
        client.ping().expect("connection survived");
        drop(server);
    }

    #[cfg(unix)]
    #[test]
    fn uds_round_trip() {
        let path = std::env::temp_dir().join(format!("vr-wire-test-{}.sock", std::process::id()));
        let server = WireServer::serve_uds(&path, FakeBackend::new(), ServerConfig::default(), None)
            .expect("bind uds");
        let mut client = crate::WireClient::connect_uds(&path).expect("connect uds");
        let reply = client.lookup(&[(1, 5), (2, 0)]).expect("lookup");
        let Message::LookupResponse { results, .. } = reply else {
            panic!("expected LookupResponse, got {reply:?}");
        };
        assert_eq!(
            results,
            vec![FakeBackend::expected(1, 5), FakeBackend::expected(2, 0)]
        );
        drop(server);
        assert!(!path.exists(), "socket file cleaned up on drop");
    }

    #[test]
    fn shutdown_returns_backend_and_metrics_count() {
        let registry = Arc::new(MetricsRegistry::new(4));
        let server = WireServer::serve_tcp(
            "127.0.0.1:0",
            FakeBackend::new(),
            ServerConfig::default(),
            Some(&registry),
        )
        .expect("bind");
        let addr = server.local_addr().expect("addr");
        let mut client = crate::WireClient::connect_tcp(addr).expect("connect");
        let _ = client.lookup(&[(0, 1)]).expect("lookup");
        drop(client);
        let backend = server.shutdown().expect("backend");
        assert_eq!(backend.generation, 1);
        let snap = registry.snapshot();
        let count = |name: &str| snap.counters.iter().find(|c| c.name == name).map(|c| c.value);
        assert_eq!(count("vr_wire_connections_total"), Some(1));
        assert_eq!(count("vr_wire_requests_total"), Some(1));
        assert_eq!(count("vr_wire_lookup_packets_total"), Some(1));
    }
}

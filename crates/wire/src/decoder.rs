//! Incremental, zero-copy frame decoder.
//!
//! A socket read hands the decoder an arbitrary byte chunk — half a
//! header, three frames and a tail, anything. [`FrameDecoder::feed`]
//! appends it; [`FrameDecoder::next_message`] yields complete messages
//! until the buffer runs dry. Header fields are parsed in place and
//! the payload is handed to [`crate::frame::decode_payload`] as a
//! borrowed slice of the internal buffer — no per-frame intermediate
//! copy; only the decoded message's own vectors allocate.
//!
//! The decoder is *fail-stop*: any framing error (bad magic, bad
//! version, oversized length, CRC mismatch, malformed payload) poisons
//! it, and every subsequent call returns the same error. There is no
//! resynchronization — inside a TCP stream a framing error means the
//! peer is broken or hostile, and scanning for the next plausible magic
//! would happily resume in the middle of attacker-controlled payload
//! bytes. The connection is torn down instead.

use crate::frame::{
    decode_payload, Message, WireError, HEADER_LEN, MAGIC, MAX_PAYLOAD_BYTES, VERSION,
};

/// Buffer compaction threshold: consumed bytes are shifted out once
/// they exceed this, amortizing the memmove over many frames.
const COMPACT_AT: usize = 64 * 1024;

/// Incremental decoder over a byte stream of `VRW1` frames.
#[derive(Debug, Default)]
pub struct FrameDecoder {
    buf: Vec<u8>,
    /// Start of unconsumed bytes in `buf`.
    at: usize,
    /// First framing error seen; sticky.
    poisoned: Option<WireError>,
}

impl FrameDecoder {
    /// A fresh decoder.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends raw stream bytes.
    pub fn feed(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Unconsumed bytes currently buffered.
    #[must_use]
    pub fn buffered(&self) -> usize {
        self.buf.len() - self.at
    }

    /// Bytes the decoder needs before the *next* frame can complete:
    /// the rest of the header, or the rest of the announced payload.
    /// `0` means a frame may already be decodable (or the buffer is
    /// exactly empty and a header is next).
    #[must_use]
    pub fn needed(&self) -> usize {
        let have = self.buffered();
        if have < HEADER_LEN {
            return HEADER_LEN - have;
        }
        let header = &self.buf[self.at..self.at + HEADER_LEN];
        let length = u32::from_le_bytes([header[8], header[9], header[10], header[11]]) as usize;
        (HEADER_LEN + length).saturating_sub(have)
    }

    /// Decodes the next complete message, or `Ok(None)` when more bytes
    /// are needed.
    ///
    /// # Errors
    /// Any framing or payload error; the decoder stays poisoned with it.
    pub fn next_message(&mut self) -> Result<Option<Message>, WireError> {
        if let Some(err) = &self.poisoned {
            return Err(err.clone());
        }
        match self.try_next() {
            Ok(msg) => Ok(msg),
            Err(err) => {
                self.poisoned = Some(err.clone());
                Err(err)
            }
        }
    }

    fn try_next(&mut self) -> Result<Option<Message>, WireError> {
        if self.buffered() < HEADER_LEN {
            return Ok(None);
        }
        let header = &self.buf[self.at..self.at + HEADER_LEN];
        // Validate the fixed header before trusting the length: a frame
        // with the wrong magic must fail *now*, not after the length
        // field makes us wait for a megabyte that never comes.
        if header[..4] != MAGIC {
            return Err(WireError::BadMagic([header[0], header[1], header[2], header[3]]));
        }
        if header[4] != VERSION {
            return Err(WireError::BadVersion(header[4]));
        }
        let frame_type = header[5];
        let flags = u16::from_le_bytes([header[6], header[7]]);
        if flags != 0 {
            return Err(WireError::NonZeroFlags(flags));
        }
        let length = u32::from_le_bytes([header[8], header[9], header[10], header[11]]);
        if length > MAX_PAYLOAD_BYTES {
            return Err(WireError::Oversized {
                length,
                max: MAX_PAYLOAD_BYTES,
            });
        }
        let expected_crc = u32::from_le_bytes([header[12], header[13], header[14], header[15]]);
        let total = HEADER_LEN + length as usize;
        if self.buffered() < total {
            return Ok(None);
        }
        let payload = &self.buf[self.at + HEADER_LEN..self.at + total];
        let actual_crc = crate::frame::crc32(payload);
        if actual_crc != expected_crc {
            return Err(WireError::BadCrc {
                expected: expected_crc,
                actual: actual_crc,
            });
        }
        let msg = decode_payload(frame_type, payload)?;
        self.at += total;
        if self.at >= COMPACT_AT {
            self.buf.drain(..self.at);
            self.at = 0;
        }
        Ok(Some(msg))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::encode;

    fn ping(id: u64) -> Message {
        Message::Ping { id }
    }

    #[test]
    fn decodes_across_arbitrary_chunk_boundaries() {
        let stream: Vec<u8> = (0..10u64).flat_map(|i| encode(&ping(i))).collect();
        // Feed one byte at a time — the worst fragmentation possible.
        let mut dec = FrameDecoder::new();
        let mut got = Vec::new();
        for &b in &stream {
            dec.feed(&[b]);
            while let Some(msg) = dec.next_message().unwrap() {
                got.push(msg.id());
            }
        }
        assert_eq!(got, (0..10).collect::<Vec<_>>());
        assert_eq!(dec.buffered(), 0);
    }

    #[test]
    fn several_frames_in_one_feed() {
        let mut dec = FrameDecoder::new();
        let mut stream = encode(&ping(1));
        stream.extend(encode(&ping(2)));
        stream.extend(encode(&ping(3)));
        dec.feed(&stream);
        assert_eq!(dec.next_message().unwrap(), Some(ping(1)));
        assert_eq!(dec.next_message().unwrap(), Some(ping(2)));
        assert_eq!(dec.next_message().unwrap(), Some(ping(3)));
        assert_eq!(dec.next_message().unwrap(), None);
    }

    #[test]
    fn needed_reports_header_then_payload_deficit() {
        let frame = encode(&Message::LookupRequest {
            id: 1,
            packets: vec![(0, 9)],
        });
        let mut dec = FrameDecoder::new();
        assert_eq!(dec.needed(), HEADER_LEN);
        dec.feed(&frame[..HEADER_LEN]);
        assert_eq!(dec.needed(), frame.len() - HEADER_LEN);
        assert_eq!(dec.next_message().unwrap(), None);
        dec.feed(&frame[HEADER_LEN..]);
        assert_eq!(dec.needed(), 0);
        assert!(dec.next_message().unwrap().is_some());
    }

    #[test]
    fn bad_magic_fails_immediately_and_poisons() {
        let mut frame = encode(&ping(1));
        frame[0] = b'X';
        let mut dec = FrameDecoder::new();
        dec.feed(&frame);
        let err = dec.next_message().unwrap_err();
        assert!(matches!(err, WireError::BadMagic(_)));
        // Sticky: even after feeding a good frame the decoder stays dead.
        dec.feed(&encode(&ping(2)));
        assert_eq!(dec.next_message().unwrap_err(), err);
    }

    #[test]
    fn oversized_length_fails_before_buffering_the_payload() {
        let mut frame = encode(&ping(1));
        frame[8..12].copy_from_slice(&(MAX_PAYLOAD_BYTES + 1).to_le_bytes());
        let mut dec = FrameDecoder::new();
        // Header alone is enough to reject — no payload was ever sent.
        dec.feed(&frame[..HEADER_LEN]);
        assert!(matches!(
            dec.next_message(),
            Err(WireError::Oversized { .. })
        ));
    }

    #[test]
    fn crc_corruption_is_detected() {
        let mut frame = encode(&Message::LookupResponse {
            id: 3,
            generation: 5,
            results: vec![Some(1), None],
        });
        let last = frame.len() - 1;
        frame[last] ^= 0x40;
        let mut dec = FrameDecoder::new();
        dec.feed(&frame);
        assert!(matches!(dec.next_message(), Err(WireError::BadCrc { .. })));
    }

    #[test]
    fn buffer_compacts_after_many_frames() {
        let mut dec = FrameDecoder::new();
        let frame = encode(&Message::LookupRequest {
            id: 0,
            packets: vec![(1, 2); 500],
        });
        for _ in 0..40 {
            dec.feed(&frame);
            while dec.next_message().unwrap().is_some() {}
        }
        assert_eq!(dec.buffered(), 0);
        assert!(dec.at < COMPACT_AT, "consumed prefix must be compacted away");
    }
}

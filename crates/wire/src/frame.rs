//! The `VRW1` wire protocol: length-prefixed, CRC-checked binary
//! frames.
//!
//! Every frame is a fixed 16-byte header followed by a payload:
//!
//! ```text
//! offset  size  field
//!      0     4  magic "VRW1"
//!      4     1  protocol version (1)
//!      5     1  frame type (FrameType)
//!      6     2  flags, little-endian (reserved, must be zero)
//!      8     4  payload length, little-endian (<= MAX_PAYLOAD_BYTES)
//!     12     4  CRC-32 (IEEE) of the payload, little-endian
//!     16     n  payload
//! ```
//!
//! All multi-byte integers are little-endian. The CRC covers the
//! payload only — the header fields are individually validated, and a
//! corrupt length would desynchronize the stream regardless of any
//! checksum, which is why the length is bounded *before* the payload is
//! awaited: an adversarial length prefix can make the decoder wait for
//! at most [`MAX_PAYLOAD_BYTES`] bytes, never allocate unbounded
//! memory.
//!
//! Payload layouts (`id` is a caller-chosen correlation id echoed in
//! the reply; counts are `u32`):
//!
//! | type              | payload |
//! |-------------------|---------|
//! | `LookupRequest`   | `id u64, count u32, count × (vnid u16, dst u32)` |
//! | `LookupResponse`  | `id u64, generation u64, count u32, count × nhi u16` (`0xFFFF` = no route) |
//! | `RouteUpdateBatch`| `id u64, count u32, count × (kind u8, vnid u16, addr u32, len u8, next_hop u8)` |
//! | `UpdateAck`       | `id u64, generation u64` |
//! | `ErrorReply`      | `id u64, code u8, len u16, len × utf-8` |
//! | `Overloaded`      | `id u64, reason u8, retry_after_ms u32` |
//! | `Ping` / `Pong`   | `id u64` |
//!
//! `LookupResponse` results preserve the request's packet order and are
//! tagged with the RCU snapshot generation the *whole batch* resolved
//! against — the same never-torn guarantee the in-process service
//! gives, made visible on the wire.

use vr_net::table::NextHop;
use vr_net::{Ipv4Prefix, RouteUpdate, VnId};

/// Frame magic: the first four bytes of every frame.
pub const MAGIC: [u8; 4] = *b"VRW1";

/// Protocol version this implementation speaks.
pub const VERSION: u8 = 1;

/// Fixed header size in bytes.
pub const HEADER_LEN: usize = 16;

/// Upper bound on a frame payload. Big enough for a 64Ki-packet lookup
/// batch with headroom; small enough that a hostile length prefix can
/// never make the server buffer unbounded memory.
pub const MAX_PAYLOAD_BYTES: u32 = 1 << 20;

/// Sentinel for "no route" in a `LookupResponse` result slot
/// ([`NextHop`] is a `u8`, so the full `u16` range above 255 is free).
pub const NO_ROUTE: u16 = 0xFFFF;

/// Typed decode/protocol failures. Every adversarial input must map to
/// one of these — never a panic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The first four bytes were not [`MAGIC`].
    BadMagic([u8; 4]),
    /// Unsupported protocol version.
    BadVersion(u8),
    /// Unknown frame-type byte.
    UnknownFrameType(u8),
    /// Reserved flags bits were set.
    NonZeroFlags(u16),
    /// Length prefix beyond [`MAX_PAYLOAD_BYTES`].
    Oversized {
        /// The length the header claimed.
        length: u32,
        /// The bound it violated.
        max: u32,
    },
    /// Payload checksum mismatch.
    BadCrc {
        /// CRC the header carried.
        expected: u32,
        /// CRC computed over the received payload.
        actual: u32,
    },
    /// Structurally invalid payload (truncated fields, bad counts,
    /// invalid prefix length, trailing bytes…).
    Malformed(&'static str),
    /// Socket-level failure, with the underlying error's rendering.
    Io(String),
    /// A well-formed frame that is wrong for the conversation state
    /// (e.g. a client receiving a `LookupRequest`).
    Protocol(&'static str),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::BadMagic(m) => write!(f, "bad frame magic {m:02x?}"),
            WireError::BadVersion(v) => write!(f, "unsupported protocol version {v}"),
            WireError::UnknownFrameType(t) => write!(f, "unknown frame type {t:#04x}"),
            WireError::NonZeroFlags(bits) => write!(f, "reserved flags set: {bits:#06x}"),
            WireError::Oversized { length, max } => {
                write!(f, "payload length {length} exceeds the {max}-byte bound")
            }
            WireError::BadCrc { expected, actual } => {
                write!(f, "payload CRC mismatch: header {expected:#010x}, computed {actual:#010x}")
            }
            WireError::Malformed(what) => write!(f, "malformed payload: {what}"),
            WireError::Io(e) => write!(f, "i/o: {e}"),
            WireError::Protocol(what) => write!(f, "protocol violation: {what}"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<std::io::Error> for WireError {
    fn from(e: std::io::Error) -> Self {
        WireError::Io(e.to_string())
    }
}

/// Machine-readable error class carried by an [`Message::ErrorReply`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// The request was structurally valid but semantically unserviceable
    /// (empty batch, batch beyond the server's limit…).
    BadRequest,
    /// An update or lookup addressed a VN the service does not host.
    UnknownVn,
    /// The backend failed (audit rejection, merge failure…). The
    /// message carries the rendered reason.
    Internal,
}

impl ErrorCode {
    fn to_u8(self) -> u8 {
        match self {
            ErrorCode::BadRequest => 1,
            ErrorCode::UnknownVn => 2,
            ErrorCode::Internal => 3,
        }
    }

    fn from_u8(b: u8) -> Result<Self, WireError> {
        match b {
            1 => Ok(ErrorCode::BadRequest),
            2 => Ok(ErrorCode::UnknownVn),
            3 => Ok(ErrorCode::Internal),
            _ => Err(WireError::Malformed("unknown error code")),
        }
    }
}

/// Why an [`Message::Overloaded`] reply was sent instead of a result.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OverloadReason {
    /// The accept gate was full; the connection itself was shed.
    Connections,
    /// The connection's token bucket ran dry (per-connection rate
    /// limit). The request was *not* executed.
    RateLimited,
    /// The backend job queue hit its watermark. The request was *not*
    /// executed.
    QueueFull,
}

impl OverloadReason {
    fn to_u8(self) -> u8 {
        match self {
            OverloadReason::Connections => 1,
            OverloadReason::RateLimited => 2,
            OverloadReason::QueueFull => 3,
        }
    }

    fn from_u8(b: u8) -> Result<Self, WireError> {
        match b {
            1 => Ok(OverloadReason::Connections),
            2 => Ok(OverloadReason::RateLimited),
            3 => Ok(OverloadReason::QueueFull),
            _ => Err(WireError::Malformed("unknown overload reason")),
        }
    }
}

/// One decoded protocol message.
#[derive(Debug, Clone, PartialEq)]
pub enum Message {
    /// A batch of (VN, destination) lookups.
    LookupRequest {
        /// Correlation id echoed by the reply.
        id: u64,
        /// The packets, in the order results must come back.
        packets: Vec<(VnId, u32)>,
    },
    /// Results for one request, in request order, all resolved against
    /// one snapshot generation.
    LookupResponse {
        /// Correlation id of the request.
        id: u64,
        /// RCU generation the whole batch resolved against.
        generation: u64,
        /// Per-packet next hops (`None` = no route).
        results: Vec<Option<NextHop>>,
    },
    /// A batch of route updates for the control plane, applied
    /// atomically (one publish).
    RouteUpdateBatch {
        /// Correlation id echoed by the ack.
        id: u64,
        /// The updates, in application order (last-writer-wins).
        updates: Vec<RouteUpdate>,
    },
    /// Acknowledges an update batch with the generation it published.
    UpdateAck {
        /// Correlation id of the batch.
        id: u64,
        /// Generation now live.
        generation: u64,
    },
    /// Typed failure reply; the request was not (or only not) executed.
    ErrorReply {
        /// Correlation id of the failed request.
        id: u64,
        /// Machine-readable class.
        code: ErrorCode,
        /// Human-readable detail.
        message: String,
    },
    /// Explicit load-shed reply: the request was refused, the
    /// connection stays open, and the client should back off.
    Overloaded {
        /// Correlation id of the refused request (0 on connection shed).
        id: u64,
        /// Which admission stage refused it.
        reason: OverloadReason,
        /// Server's back-off hint in milliseconds.
        retry_after_ms: u32,
    },
    /// Liveness probe.
    Ping {
        /// Correlation id echoed by the pong.
        id: u64,
    },
    /// Liveness reply.
    Pong {
        /// Correlation id of the ping.
        id: u64,
    },
}

impl Message {
    /// The frame-type byte of this message.
    #[must_use]
    pub fn frame_type(&self) -> u8 {
        match self {
            Message::LookupRequest { .. } => 0x01,
            Message::LookupResponse { .. } => 0x02,
            Message::RouteUpdateBatch { .. } => 0x03,
            Message::UpdateAck { .. } => 0x04,
            Message::ErrorReply { .. } => 0x05,
            Message::Overloaded { .. } => 0x06,
            Message::Ping { .. } => 0x07,
            Message::Pong { .. } => 0x08,
        }
    }

    /// The correlation id the message carries.
    #[must_use]
    pub fn id(&self) -> u64 {
        match self {
            Message::LookupRequest { id, .. }
            | Message::LookupResponse { id, .. }
            | Message::RouteUpdateBatch { id, .. }
            | Message::UpdateAck { id, .. }
            | Message::ErrorReply { id, .. }
            | Message::Overloaded { id, .. }
            | Message::Ping { id }
            | Message::Pong { id } => *id,
        }
    }
}

/// CRC-32 (IEEE 802.3, reflected) lookup table, generated at compile
/// time — the protocol stays dependency-free.
const CRC_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 == 1 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
};

/// CRC-32 (IEEE) of `bytes`.
#[must_use]
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        crc = (crc >> 8) ^ CRC_TABLE[((crc ^ u32::from(b)) & 0xFF) as usize];
    }
    !crc
}

fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Encodes `msg` as one complete frame (header + payload).
#[must_use]
pub fn encode(msg: &Message) -> Vec<u8> {
    let mut frame = Vec::with_capacity(HEADER_LEN + 64);
    encode_into(msg, &mut frame);
    frame
}

/// Appends `msg`'s frame to `out` (the buffer-reusing form connection
/// writers use).
pub fn encode_into(msg: &Message, out: &mut Vec<u8>) {
    let header_at = out.len();
    out.extend_from_slice(&MAGIC);
    out.push(VERSION);
    out.push(msg.frame_type());
    put_u16(out, 0); // flags, reserved
    put_u32(out, 0); // payload length backpatched below
    put_u32(out, 0); // CRC backpatched below
    let payload_at = out.len();
    match msg {
        Message::LookupRequest { id, packets } => {
            put_u64(out, *id);
            put_u32(out, packets.len() as u32);
            for &(vnid, dst) in packets {
                put_u16(out, vnid);
                put_u32(out, dst);
            }
        }
        Message::LookupResponse {
            id,
            generation,
            results,
        } => {
            put_u64(out, *id);
            put_u64(out, *generation);
            put_u32(out, results.len() as u32);
            for nh in results {
                put_u16(out, nh.map_or(NO_ROUTE, u16::from));
            }
        }
        Message::RouteUpdateBatch { id, updates } => {
            put_u64(out, *id);
            put_u32(out, updates.len() as u32);
            for update in updates {
                match *update {
                    RouteUpdate::Announce {
                        vnid,
                        prefix,
                        next_hop,
                    } => {
                        out.push(0);
                        put_u16(out, vnid);
                        put_u32(out, prefix.addr());
                        out.push(prefix.len());
                        out.push(next_hop);
                    }
                    RouteUpdate::Withdraw { vnid, prefix } => {
                        out.push(1);
                        put_u16(out, vnid);
                        put_u32(out, prefix.addr());
                        out.push(prefix.len());
                        out.push(0);
                    }
                }
            }
        }
        Message::UpdateAck { id, generation } => {
            put_u64(out, *id);
            put_u64(out, *generation);
        }
        Message::ErrorReply { id, code, message } => {
            put_u64(out, *id);
            out.push(code.to_u8());
            let bytes = message.as_bytes();
            let len = bytes.len().min(usize::from(u16::MAX));
            put_u16(out, len as u16);
            out.extend_from_slice(&bytes[..len]);
        }
        Message::Overloaded {
            id,
            reason,
            retry_after_ms,
        } => {
            put_u64(out, *id);
            out.push(reason.to_u8());
            put_u32(out, *retry_after_ms);
        }
        Message::Ping { id } | Message::Pong { id } => {
            put_u64(out, *id);
        }
    }
    let payload_len = (out.len() - payload_at) as u32;
    debug_assert!(payload_len <= MAX_PAYLOAD_BYTES, "encoder produced an oversized frame");
    let crc = crc32(&out[payload_at..]);
    out[header_at + 8..header_at + 12].copy_from_slice(&payload_len.to_le_bytes());
    out[header_at + 12..header_at + 16].copy_from_slice(&crc.to_le_bytes());
}

/// A borrowing cursor over a payload slice: every read is
/// bounds-checked and maps a truncation to a typed error, never a
/// panic.
struct Cursor<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl<'a> Cursor<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Self { bytes, at: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        let end = self
            .at
            .checked_add(n)
            .filter(|&end| end <= self.bytes.len())
            .ok_or(WireError::Malformed("truncated payload"))?;
        let slice = &self.bytes[self.at..end];
        self.at = end;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, WireError> {
        let b = self.take(2)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    fn u32(&mut self) -> Result<u32, WireError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self) -> Result<u64, WireError> {
        let b = self.take(8)?;
        let mut raw = [0u8; 8];
        raw.copy_from_slice(b);
        Ok(u64::from_le_bytes(raw))
    }

    /// A count field, sanity-bounded by what the remaining payload can
    /// actually hold at `min_item_bytes` per item — so a hostile count
    /// can never drive a huge allocation.
    fn count(&mut self, min_item_bytes: usize) -> Result<usize, WireError> {
        let n = self.u32()? as usize;
        let remaining = self.bytes.len() - self.at;
        if n.checked_mul(min_item_bytes).is_none_or(|need| need > remaining) {
            return Err(WireError::Malformed("count exceeds payload"));
        }
        Ok(n)
    }

    fn finish(&self) -> Result<(), WireError> {
        if self.at == self.bytes.len() {
            Ok(())
        } else {
            Err(WireError::Malformed("trailing payload bytes"))
        }
    }
}

/// Decodes a payload of the given frame type. The slice borrows from
/// the decoder's buffer; only the message's own vectors allocate.
///
/// # Errors
/// [`WireError::UnknownFrameType`] / [`WireError::Malformed`] on
/// anything but a structurally exact payload.
pub fn decode_payload(frame_type: u8, payload: &[u8]) -> Result<Message, WireError> {
    let mut cur = Cursor::new(payload);
    let msg = match frame_type {
        0x01 => {
            let id = cur.u64()?;
            let n = cur.count(6)?;
            let mut packets = Vec::with_capacity(n);
            for _ in 0..n {
                let vnid = cur.u16()?;
                let dst = cur.u32()?;
                packets.push((vnid, dst));
            }
            Message::LookupRequest { id, packets }
        }
        0x02 => {
            let id = cur.u64()?;
            let generation = cur.u64()?;
            let n = cur.count(2)?;
            let mut results = Vec::with_capacity(n);
            for _ in 0..n {
                let raw = cur.u16()?;
                results.push(match raw {
                    NO_ROUTE => None,
                    nh if nh <= u16::from(u8::MAX) => Some(nh as NextHop),
                    _ => return Err(WireError::Malformed("next hop out of range")),
                });
            }
            Message::LookupResponse {
                id,
                generation,
                results,
            }
        }
        0x03 => {
            let id = cur.u64()?;
            let n = cur.count(9)?;
            let mut updates = Vec::with_capacity(n);
            for _ in 0..n {
                let kind = cur.u8()?;
                let vnid = cur.u16()?;
                let addr = cur.u32()?;
                let len = cur.u8()?;
                let next_hop = cur.u8()?;
                let prefix = Ipv4Prefix::new(addr, len)
                    .map_err(|_| WireError::Malformed("prefix length beyond 32"))?;
                updates.push(match kind {
                    0 => RouteUpdate::Announce {
                        vnid,
                        prefix,
                        next_hop,
                    },
                    1 => RouteUpdate::Withdraw { vnid, prefix },
                    _ => return Err(WireError::Malformed("unknown update kind")),
                });
            }
            Message::RouteUpdateBatch { id, updates }
        }
        0x04 => Message::UpdateAck {
            id: cur.u64()?,
            generation: cur.u64()?,
        },
        0x05 => {
            let id = cur.u64()?;
            let code = ErrorCode::from_u8(cur.u8()?)?;
            let len = usize::from(cur.u16()?);
            let bytes = cur.take(len)?;
            let message = String::from_utf8(bytes.to_vec())
                .map_err(|_| WireError::Malformed("error message not utf-8"))?;
            Message::ErrorReply { id, code, message }
        }
        0x06 => Message::Overloaded {
            id: cur.u64()?,
            reason: OverloadReason::from_u8(cur.u8()?)?,
            retry_after_ms: cur.u32()?,
        },
        0x07 => Message::Ping { id: cur.u64()? },
        0x08 => Message::Pong { id: cur.u64()? },
        other => return Err(WireError::UnknownFrameType(other)),
    };
    cur.finish()?;
    Ok(msg)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_known_vectors() {
        // The classic IEEE test vector.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn frame_layout_is_exactly_as_documented() {
        let frame = encode(&Message::Ping { id: 0x0102_0304 });
        assert_eq!(&frame[..4], b"VRW1");
        assert_eq!(frame[4], VERSION);
        assert_eq!(frame[5], 0x07);
        assert_eq!(&frame[6..8], &[0, 0]);
        assert_eq!(u32::from_le_bytes(frame[8..12].try_into().unwrap()), 8);
        let crc = u32::from_le_bytes(frame[12..16].try_into().unwrap());
        assert_eq!(crc, crc32(&frame[16..]));
        assert_eq!(frame.len(), HEADER_LEN + 8);
    }

    #[test]
    fn every_message_kind_round_trips() {
        let msgs = vec![
            Message::LookupRequest {
                id: 7,
                packets: vec![(0, 0x0A00_0001), (3, 0xFFFF_FFFF), (65535, 0)],
            },
            Message::LookupResponse {
                id: 7,
                generation: 42,
                results: vec![Some(0), Some(255), None],
            },
            Message::RouteUpdateBatch {
                id: 9,
                updates: vec![
                    RouteUpdate::Announce {
                        vnid: 2,
                        prefix: Ipv4Prefix::must(0x0A01_0000, 16),
                        next_hop: 9,
                    },
                    RouteUpdate::Withdraw {
                        vnid: 0,
                        prefix: Ipv4Prefix::must(0, 0),
                    },
                ],
            },
            Message::UpdateAck {
                id: 9,
                generation: 43,
            },
            Message::ErrorReply {
                id: 1,
                code: ErrorCode::UnknownVn,
                message: "vn 9 not hosted".to_string(),
            },
            Message::Overloaded {
                id: 2,
                reason: OverloadReason::QueueFull,
                retry_after_ms: 25,
            },
            Message::Ping { id: u64::MAX },
            Message::Pong { id: 0 },
        ];
        for msg in msgs {
            let frame = encode(&msg);
            let decoded = decode_payload(frame[5], &frame[HEADER_LEN..]).expect("decodes");
            assert_eq!(decoded, msg);
        }
    }

    #[test]
    fn empty_batches_round_trip() {
        for msg in [
            Message::LookupRequest {
                id: 0,
                packets: vec![],
            },
            Message::RouteUpdateBatch {
                id: 0,
                updates: vec![],
            },
            Message::LookupResponse {
                id: 0,
                generation: 0,
                results: vec![],
            },
        ] {
            let frame = encode(&msg);
            assert_eq!(decode_payload(frame[5], &frame[HEADER_LEN..]).unwrap(), msg);
        }
    }

    #[test]
    fn hostile_count_is_rejected_not_allocated() {
        // A LookupRequest claiming u32::MAX packets in a 16-byte payload.
        let mut payload = Vec::new();
        payload.extend_from_slice(&7u64.to_le_bytes());
        payload.extend_from_slice(&u32::MAX.to_le_bytes());
        payload.extend_from_slice(&[0u8; 4]);
        assert_eq!(
            decode_payload(0x01, &payload),
            Err(WireError::Malformed("count exceeds payload"))
        );
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut frame = encode(&Message::Ping { id: 1 });
        frame.extend_from_slice(&[0u8; 3]);
        assert_eq!(
            decode_payload(0x07, &frame[HEADER_LEN..]),
            Err(WireError::Malformed("trailing payload bytes"))
        );
    }

    #[test]
    fn bad_update_kind_and_prefix_len_error() {
        let mut payload = Vec::new();
        payload.extend_from_slice(&1u64.to_le_bytes());
        payload.extend_from_slice(&1u32.to_le_bytes());
        payload.extend_from_slice(&[9, 0, 0, 0, 0, 0, 0, 24, 1]); // kind 9
        assert!(matches!(
            decode_payload(0x03, &payload),
            Err(WireError::Malformed("unknown update kind"))
        ));
        let mut payload = Vec::new();
        payload.extend_from_slice(&1u64.to_le_bytes());
        payload.extend_from_slice(&1u32.to_le_bytes());
        payload.extend_from_slice(&[0, 0, 0, 0, 0, 0, 0, 33, 1]); // /33
        assert!(matches!(
            decode_payload(0x03, &payload),
            Err(WireError::Malformed("prefix length beyond 32"))
        ));
    }
}

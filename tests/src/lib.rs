//! Shared helpers for the cross-crate integration tests.

#![forbid(unsafe_code)]

use vr_net::synth::{FamilySpec, PrefixLenDistribution};
use vr_net::RoutingTable;
use vr_power::{Device, Scenario, ScenarioSpec, SchemeKind, SpeedGrade};

/// A reproducible K-table family at integration-test scale.
#[must_use]
pub fn family(k: usize, shared_fraction: f64, seed: u64) -> Vec<RoutingTable> {
    FamilySpec {
        k,
        prefixes_per_table: 300,
        shared_fraction,
        seed,
        distribution: PrefixLenDistribution::edge_default(),
        next_hops: 16,
    }
    .generate()
    .expect("family generation")
}

/// Builds a paper-default scenario on the paper's device.
#[must_use]
pub fn scenario(tables: &[RoutingTable], scheme: SchemeKind, grade: SpeedGrade) -> Scenario {
    Scenario::build(
        tables,
        ScenarioSpec::paper_default(scheme, grade),
        Device::xc6vlx760(),
    )
    .expect("scenario build")
}

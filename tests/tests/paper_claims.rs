//! The paper's headline claims, asserted end to end across all crates.
//!
//! Each test names the claim and the paper section it comes from. These
//! run on reduced workloads (300-prefix tables); the bench binaries
//! regenerate the same quantities at full paper scale.

use vr_fpga::par::ParSimulator;
use vr_integration_tests::{family, scenario};
use vr_power::efficiency::efficiency_point;
use vr_power::models::analytical_power;
use vr_power::validate::validate_scenario;
use vr_power::{SchemeKind, SpeedGrade};

/// Abstract: "power savings proportional to the number of virtual
/// networks can be achieved compared with non-virtualized routers."
#[test]
fn savings_proportional_to_k() {
    for k in [3usize, 6, 12] {
        let tables = family(k, 0.6, 1);
        let nv = analytical_power(&scenario(&tables, SchemeKind::NonVirtualized, SpeedGrade::Minus2));
        let vs = analytical_power(&scenario(&tables, SchemeKind::Separate, SpeedGrade::Minus2));
        let ratio = nv.total_w() / vs.total_w();
        assert!(
            ratio > 0.6 * k as f64 && ratio < 1.4 * k as f64,
            "K={k}: NV/VS power ratio {ratio} not ∝ K"
        );
    }
}

/// Abstract / Fig. 7: "the models stand accurate with only a ±3% maximum
/// error" against post place-and-route results.
#[test]
fn model_error_within_three_percent() {
    let par = ParSimulator::default();
    for scheme in SchemeKind::ALL {
        for grade in SpeedGrade::ALL {
            for k in [1usize, 4, 9, 15] {
                let tables = family(k, 0.6, 2);
                let point = validate_scenario(&scenario(&tables, scheme, grade), &par);
                assert!(
                    point.error_pct.abs() <= 3.0,
                    "{scheme} {grade} K={k}: error {:.2}%",
                    point.error_pct
                );
            }
        }
    }
}

/// §VI-A: NV power grows with K while virtualized schemes stay near one
/// device's static power (Figs. 5 and 6).
#[test]
fn fig5_total_power_shapes() {
    let k = 10;
    let tables = family(k, 0.6, 3);
    let nv = analytical_power(&scenario(&tables, SchemeKind::NonVirtualized, SpeedGrade::Minus2));
    let vs = analytical_power(&scenario(&tables, SchemeKind::Separate, SpeedGrade::Minus2));
    let vm = analytical_power(&scenario(&tables, SchemeKind::Merged, SpeedGrade::Minus2));
    // NV ≈ K × one device's static power.
    assert!(nv.total_w() > 0.8 * k as f64 * SpeedGrade::Minus2.static_base_w());
    // Virtualized: within 2× of one device's static power.
    for p in [&vs, &vm] {
        assert!(p.total_w() < 2.0 * SpeedGrade::Minus2.static_base_w());
        assert!(p.total_w() > 0.8 * SpeedGrade::Minus2.static_base_w());
    }
}

/// §VI-B / Fig. 8: "the virtualized separate approach yields the best
/// power efficiency. The conventional router is the second best while
/// merged approach shows the worst performance."
#[test]
fn fig8_efficiency_ordering() {
    let k = 10;
    let tables = family(k, 0.6, 4);
    for grade in SpeedGrade::ALL {
        let vs = efficiency_point(&scenario(&tables, SchemeKind::Separate, grade));
        let nv = efficiency_point(&scenario(&tables, SchemeKind::NonVirtualized, grade));
        let vm = efficiency_point(&scenario(&tables, SchemeKind::Merged, grade));
        assert!(vs.mw_per_gbps < nv.mw_per_gbps, "{grade}: VS must beat NV");
        assert!(nv.mw_per_gbps < vm.mw_per_gbps, "{grade}: NV must beat VM");
    }
}

/// §VI-B: merged is worse at lower merging efficiency — "when the merging
/// efficiency is much less, the amount of resources consumed by the
/// router increases, while the throughput decreases."
#[test]
fn merged_low_alpha_is_worse() {
    let k = 8;
    let low = family(k, 0.05, 5);
    let high = family(k, 0.9, 5);
    let e_low = efficiency_point(&scenario(&low, SchemeKind::Merged, SpeedGrade::Minus2));
    let e_high = efficiency_point(&scenario(&high, SchemeKind::Merged, SpeedGrade::Minus2));
    assert!(e_low.alpha.unwrap() < e_high.alpha.unwrap());
    assert!(e_low.power_w >= e_high.power_w, "low α must not be cheaper");
}

/// §VI-B: "We observed a 30% less power consumption when speed grade -1L
/// was chosen compared to speed grade -2 ... The two speed grades perform
/// almost the same way [in mW/Gbps]."
#[test]
fn low_power_grade_tradeoff() {
    let tables = family(6, 0.6, 6);
    for scheme in SchemeKind::ALL {
        let hi = efficiency_point(&scenario(&tables, scheme, SpeedGrade::Minus2));
        let lo = efficiency_point(&scenario(&tables, scheme, SpeedGrade::Minus1L));
        let saving = 1.0 - lo.power_w / hi.power_w;
        assert!((0.2..=0.4).contains(&saving), "{scheme}: power saving {saving}");
        let eff_gap = (lo.mw_per_gbps - hi.mw_per_gbps).abs() / hi.mw_per_gbps;
        assert!(eff_gap < 0.2, "{scheme}: efficiency gap {eff_gap}");
        // The saving comes at the expense of throughput.
        assert!(lo.capacity_gbps < hi.capacity_gbps);
    }
}

/// §VI-A: "We limited the maximum number of virtual networks to 15 since
/// in the case of virtualized-separate, the I/O pin requirement exceeded."
#[test]
fn separate_pin_limit_at_15() {
    use vr_power::{Device, Scenario, ScenarioSpec};
    let ok = family(15, 0.6, 7);
    assert!(Scenario::build(
        &ok,
        ScenarioSpec::paper_default(SchemeKind::Separate, SpeedGrade::Minus2),
        Device::xc6vlx760()
    )
    .is_ok());
    let too_many = family(16, 0.6, 7);
    assert!(Scenario::build(
        &too_many,
        ScenarioSpec::paper_default(SchemeKind::Separate, SpeedGrade::Minus2),
        Device::xc6vlx760()
    )
    .is_err());
    // NV and merged are not pin-bound at K = 16.
    for scheme in [SchemeKind::NonVirtualized, SchemeKind::Merged] {
        assert!(Scenario::build(
            &too_many,
            ScenarioSpec::paper_default(scheme, SpeedGrade::Minus2),
            Device::xc6vlx760()
        )
        .is_ok());
    }
}

/// §IV-C: the merged scheme's clock (hence throughput) collapses with K
/// while the separate scheme's only mildly degrades.
#[test]
fn merged_clock_collapse() {
    let k = 12;
    let tables = family(k, 0.6, 8);
    let vm = scenario(&tables, SchemeKind::Merged, SpeedGrade::Minus2);
    let vs = scenario(&tables, SchemeKind::Separate, SpeedGrade::Minus2);
    let base = SpeedGrade::Minus2.base_clock_mhz();
    assert!(vm.freq_mhz() < 0.6 * base);
    assert!(vs.freq_mhz() > 0.9 * base);
}

//! End-to-end integration: the full stack (tables → tries → pipelines →
//! power models → validation → experiments) exercised together.

use vr_integration_tests::{family, scenario};
use vr_power::experiments::{fig4_series, power_sweep, ExperimentConfig};
use vr_power::models::analytical_power;
use vr_power::validate::behavioral_check;
use vr_power::{SchemeKind, SpeedGrade};

/// The cycle-level simulator's measured dynamic power must track the
/// analytical model's dynamic component: equal coefficients, same
/// utilization, with the simulator strictly below (it only charges memory
/// reads that actually happen; the model charges every stage).
#[test]
fn simulator_and_model_agree_on_dynamic_power() {
    for scheme in SchemeKind::ALL {
        let tables = family(4, 0.6, 11);
        let s = scenario(&tables, scheme, SpeedGrade::Minus2);
        let check = behavioral_check(&tables, &s, 3000, 5).expect("behavioral check");
        assert!(check.fully_correct, "{scheme}: forwarding must be exact");
        assert!(
            check.ratio > 0.3 && check.ratio <= 1.1,
            "{scheme}: simulated/model dynamic ratio {} out of band",
            check.ratio
        );
    }
}

/// The µ-weighting of Eqs. 2/4 is real behaviour, not bookkeeping: halving
/// the offered load halves the simulated dynamic power of a gated engine.
#[test]
fn dynamic_power_scales_with_offered_load() {
    use vr_engine::{ArrivalModel, EngineConfig, SimConfig, VirtualRouterSim};
    use vr_net::{TrafficGenerator, TrafficSpec};

    let tables = family(2, 0.6, 13);
    let run = |load: f64| {
        let cfg = SimConfig {
            organization: SchemeKind::Merged,
            stages: 28,
            engine: EngineConfig::paper_default(),
            arrivals: ArrivalModel::SharedLine { offered_load: load },
            arrival_seed: 7,
        };
        let mut sim = VirtualRouterSim::new(tables.clone(), cfg).unwrap();
        let mut traffic = TrafficGenerator::new(TrafficSpec::uniform(2, 9), &tables).unwrap();
        sim.run(&mut traffic, 4000).unwrap().dynamic_power_w()
    };
    let full = run(1.0);
    let half = run(0.5);
    let ratio = half / full;
    assert!(
        (0.4..=0.6).contains(&ratio),
        "half-load dynamic power ratio {ratio} should be ≈0.5"
    );
}

/// Fig. 4 through the public experiments API, with the α ordering and
/// growth directions the paper plots.
#[test]
fn fig4_series_shapes() {
    let cfg = ExperimentConfig::quick();
    let points = fig4_series(&cfg).expect("fig4");
    // Three series, every K present.
    for series in ["separate", "merged (α≈0.8)", "merged (α≈0.2)"] {
        let count = points.iter().filter(|p| p.series == series).count();
        assert_eq!(count, cfg.k_max_fig4, "{series}");
    }
    // At the largest K the merged α≈0.8 series stores the least pointer
    // memory (that is the point of merging).
    let k = cfg.k_max_fig4;
    let ptr = |series: &str| {
        points
            .iter()
            .find(|p| p.series == series && p.k == k)
            .unwrap()
            .pointer_mbits
    };
    assert!(ptr("merged (α≈0.8)") < ptr("merged (α≈0.2)"));
    assert!(ptr("merged (α≈0.8)") < ptr("separate"));
}

/// The sweep behind Figs. 5–8, checked for internal consistency: the
/// experimental value stays in the model's ±3 % band, and the efficiency
/// column is exactly power/capacity.
#[test]
fn power_sweep_is_internally_consistent() {
    let cfg = ExperimentConfig::quick();
    let points = power_sweep(&cfg).expect("sweep");
    assert!(!points.is_empty());
    for p in &points {
        assert!(p.error_pct.abs() <= 3.0, "{} K={}", p.series, p.k);
        let recomputed = p.experimental_w * 1e3 / p.capacity_gbps;
        assert!(
            (recomputed - p.mw_per_gbps).abs() < 1e-9,
            "efficiency column must be power/capacity"
        );
        assert!(p.freq_mhz > 0.0 && p.capacity_gbps > 0.0);
        if p.scheme == SchemeKind::Merged {
            assert!(p.alpha.is_some());
        } else {
            assert!(p.alpha.is_none());
        }
    }
}

/// Utilization weights flow through the whole stack: a skewed µ vector
/// changes the NV static/dynamic split exactly as Eq. 2 predicts.
#[test]
fn skewed_utilization_changes_only_dynamic_power() {
    use vr_power::{Device, Scenario, ScenarioSpec};
    let tables = family(3, 0.6, 17);
    let uniform = scenario(&tables, SchemeKind::Separate, SpeedGrade::Minus2);
    let skewed = Scenario::build(
        &tables,
        ScenarioSpec {
            utilization: Some(vec![1.0, 0.0, 0.0]),
            ..ScenarioSpec::paper_default(SchemeKind::Separate, SpeedGrade::Minus2)
        },
        Device::xc6vlx760(),
    )
    .unwrap();
    let pu = analytical_power(&uniform);
    let ps = analytical_power(&skewed);
    // Same silicon: identical static power.
    assert!((pu.static_w - ps.static_w).abs() < 1e-12);
    // Equal-size tables: total dynamic is ≈ equal too (Σµ = 1 both ways)
    // — the point is that µ redistributes, it does not add power.
    let rel = (pu.dynamic_w() - ps.dynamic_w()).abs() / pu.dynamic_w();
    assert!(rel < 0.1, "dynamic drift {rel}");
}

/// The oracle-mismatch counter is not vacuous: a stale data plane (the
/// window between a control-plane update and the hardware write-back,
/// paper ref. [6]'s problem) produces counted mismatches, and rebuilding
/// the engines clears them.
#[test]
fn stale_data_plane_is_detected_and_rebuild_clears_it() {
    use vr_engine::{ArrivalModel, EngineConfig, SimConfig, VirtualRouterSim};
    use vr_net::{RouteUpdate, TrafficGenerator, TrafficSpec};

    let tables = family(2, 0.6, 23);
    let cfg = SimConfig {
        organization: SchemeKind::Separate,
        stages: 28,
        engine: EngineConfig::paper_default(),
        arrivals: ArrivalModel::SharedLine { offered_load: 1.0 },
        arrival_seed: 3,
    };
    let mut sim = VirtualRouterSim::new(tables.clone(), cfg).unwrap();
    let mut traffic = TrafficGenerator::new(TrafficSpec::uniform(2, 9), &tables).unwrap();

    // Fresh engines: fully correct.
    let report = sim.run(&mut traffic, 500).unwrap();
    assert!(report.is_fully_correct());

    // Control plane rewrites every route's next hop; hardware is stale.
    for (vnid, table) in tables.iter().enumerate() {
        for entry in table.iter() {
            sim.apply_update(&RouteUpdate::Announce {
                vnid: vnid as u16,
                prefix: entry.prefix,
                next_hop: entry.next_hop.wrapping_add(100),
            });
        }
    }
    let stale = sim.run(&mut traffic, 500).unwrap();
    assert!(
        stale.mismatches > 400,
        "stale data plane must misforward: {} mismatches",
        stale.mismatches
    );

    // Write-back: rebuild and verify correctness returns.
    sim.rebuild_engines().unwrap();
    let fresh = sim.run(&mut traffic, 500).unwrap();
    assert!(fresh.is_fully_correct());
}

/// Merged arity beyond the presence-mask limit fails loudly, not subtly.
#[test]
fn merged_arity_limit_is_enforced_end_to_end() {
    let tables = family(3, 0.5, 19);
    let mut many = Vec::new();
    for _ in 0..22 {
        many.extend(tables.iter().cloned());
    }
    assert_eq!(many.len(), 66);
    let result = vr_trie::MergedTrie::from_tables(&many);
    assert!(matches!(
        result,
        Err(vr_trie::TrieError::BadMergeArity(66))
    ));
}

//! Mutation coverage for the `vr-audit` structural verifier.
//!
//! Two directions, both load-bearing:
//!
//! * **No false negatives** — a corrupted encoding (flipped leaf tag,
//!   out-of-slab child base, truncated NHI vector, dropped VNID table)
//!   must fail the audit. Each mutation class gets a property test over
//!   arbitrary tables and mutation sites, because a verifier that only
//!   catches the corruption you thought of is a placebo.
//! * **No false positives** — every structure the workspace can build,
//!   through every `from_*` constructor, audits clean at paper scale.
//!   A verifier that cries wolf gets feature-gated off and dies.

use proptest::prelude::*;
use vr_audit::{
    audit_braided, audit_flat, audit_flat_stride_with_table, audit_flat_with_table, audit_jump,
    audit_jump_against_stride, audit_jump_with_table, audit_leaf_pushed, audit_merged,
    audit_merged_leaf_pushed, audit_unibit, CheckKind,
};
use vr_net::synth::{FamilySpec, TableSpec};
use vr_net::table::{NextHop, RouteEntry};
use vr_net::{Ipv4Prefix, RoutingTable};
use vr_trie::{
    flat, jump, BraidedTrie, FlatStrideTrie, FlatTrie, JumpTrie, LeafPushedTrie, MergedTrie,
    StrideTrie, UnibitTrie,
};

/// Strategy: an arbitrary routing table of 1 to `max` routes.
fn arb_table(max: usize) -> impl Strategy<Value = RoutingTable> {
    prop::collection::vec((any::<u32>(), 0u8..=32, any::<NextHop>()), 1..max).prop_map(|routes| {
        RoutingTable::from_entries(
            routes
                .into_iter()
                .map(|(addr, len, nh)| RouteEntry::new(Ipv4Prefix::must(addr, len), nh)),
        )
    })
}

fn rebuild_jump(trie: &JumpTrie, mutate: impl FnOnce(&mut Vec<u32>, &mut Vec<u16>)) -> JumpTrie {
    let p = trie.raw_parts();
    let mut words = p.words.to_vec();
    let mut nhis = p.nhis.to_vec();
    mutate(&mut words, &mut nhis);
    JumpTrie::from_raw_parts(p.root.to_vec(), words, p.level_offsets.to_vec(), nhis, p.k)
}

fn rebuild_flat(trie: &FlatTrie, mutate: impl FnOnce(&mut Vec<u32>, &mut Vec<u16>)) -> FlatTrie {
    let p = trie.raw_parts();
    let mut words = p.words.to_vec();
    let mut nhis = p.nhis.to_vec();
    mutate(&mut words, &mut nhis);
    FlatTrie::from_raw_parts(words, p.level_offsets.to_vec(), nhis, p.k)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Flipping any word's leaf/internal tag bit must be detected: it
    /// either breaks fanout accounting, points a "child" at an NHI slot,
    /// or plants an internal word in the deepest level.
    #[test]
    fn flat_detects_flipped_tag(table in arb_table(48), site in any::<usize>()) {
        let trie = FlatTrie::from_table_unibit_path(&table);
        let p = trie.raw_parts();
        if p.words.is_empty() {
            continue;
        }
        let at = site % p.words.len();
        let mutated = rebuild_flat(&trie, |words, _| words[at] ^= flat::LEAF_BIT);
        prop_assert!(!audit_flat(&mutated).is_clean(), "tag flip at word {at} not caught");
    }

    /// An internal word whose child base lands outside every slab must
    /// trip `ChildBounds`.
    #[test]
    fn jump_detects_oob_child_base(table in arb_table(48), site in any::<usize>()) {
        let trie = JumpTrie::from_table(&table);
        let p = trie.raw_parts();
        let internals: Vec<usize> = p
            .words
            .iter()
            .enumerate()
            .filter(|(_, w)| *w & jump::LEAF_BIT == 0)
            .map(|(i, _)| i)
            .collect();
        if internals.is_empty() {
            continue;
        }
        let at = internals[site % internals.len()];
        let mutated = rebuild_jump(&trie, |words, _| words[at] = jump::PAYLOAD_MASK);
        let report = audit_jump(&mutated);
        prop_assert!(!report.is_clean());
        prop_assert!(
            report.checks.iter().any(|c| c.check == CheckKind::ChildBounds && !c.passed),
            "expected a child_bounds failure, got: {}",
            report.summary()
        );
    }

    /// Truncating the NHI slab strands leaf slots past the end (and, for
    /// K > 1, breaks the vector-width divisibility): `NhiVector` fails.
    #[test]
    fn jump_detects_truncated_nhi_slab(table in arb_table(48), cut in 1usize..8) {
        let trie = JumpTrie::from_table(&table);
        if trie.raw_parts().nhis.is_empty() {
            continue;
        }
        let mutated = rebuild_jump(&trie, |_, nhis| {
            let keep = nhis.len().saturating_sub(cut);
            nhis.truncate(keep);
        });
        let report = audit_jump(&mutated);
        prop_assert!(!report.is_clean());
        prop_assert!(
            report.checks.iter().any(|c| c.check == CheckKind::NhiVector && !c.passed),
            "expected an nhi_vector failure, got: {}",
            report.summary()
        );
    }

    /// A merged structure presented with a VNID gap (one source table
    /// missing) must fail the per-VN coverage check rather than silently
    /// auditing the surviving networks.
    #[test]
    fn merged_detects_vnid_gap(tables in prop::collection::vec(arb_table(24), 2..5)) {
        let merged = MergedTrie::from_tables(&tables).unwrap();
        let pushed = merged.leaf_pushed();
        prop_assert!(audit_merged_leaf_pushed(&pushed, &tables).is_clean());
        let gapped = &tables[..tables.len() - 1];
        let report = audit_merged_leaf_pushed(&pushed, gapped);
        prop_assert!(!report.is_clean());
        prop_assert!(
            report.checks.iter().any(|c| c.check == CheckKind::NhiVector && !c.passed),
            "expected an nhi_vector failure, got: {}",
            report.summary()
        );
    }

    /// Arbitrary small tables audit clean through the main constructor
    /// paths — the verifier's false-positive guard at the fuzz scale.
    #[test]
    fn arbitrary_tables_audit_clean(table in arb_table(48)) {
        let unibit = UnibitTrie::from_table(&table);
        prop_assert!(audit_unibit(&unibit).is_clean());
        let pushed = LeafPushedTrie::from_unibit(&unibit);
        prop_assert!(audit_leaf_pushed(&pushed).is_clean());
        prop_assert!(audit_flat_with_table(&FlatTrie::from_leaf_pushed(&pushed), &table).is_clean());
        prop_assert!(audit_jump_with_table(&JumpTrie::from_table(&table), &table).is_clean());
    }
}

/// Helper: `FlatTrie` has no `from_table`; the unibit path is its
/// canonical single-table constructor chain.
trait FromTableViaUnibit {
    fn from_table_unibit_path(table: &RoutingTable) -> FlatTrie;
}

impl FromTableViaUnibit for FlatTrie {
    fn from_table_unibit_path(table: &RoutingTable) -> FlatTrie {
        FlatTrie::from_unibit(&UnibitTrie::from_table(table))
    }
}

/// Every encoding, every constructor path, at the paper's worst-case
/// table scale — all clean, no exceptions.
#[test]
fn every_constructor_audits_clean_at_paper_scale() {
    let table = TableSpec::paper_worst_case(23).generate().unwrap();
    let unibit = UnibitTrie::from_table(&table);
    assert!(audit_unibit(&unibit).is_clean());
    let pushed = LeafPushedTrie::from_unibit(&unibit);
    assert!(audit_leaf_pushed(&pushed).is_clean());

    for report in [
        audit_flat_with_table(&FlatTrie::from_unibit(&unibit), &table),
        audit_flat_with_table(&FlatTrie::from_leaf_pushed(&pushed), &table),
        audit_jump_with_table(&JumpTrie::from_table(&table), &table),
        audit_jump_with_table(&JumpTrie::from_unibit(&unibit), &table),
        audit_jump_with_table(&JumpTrie::from_leaf_pushed(&pushed), &table),
    ] {
        assert!(report.is_clean(), "{}", report.summary());
    }

    for strides in [&[8u8, 8, 8, 8][..], &[4, 4, 4, 4, 4, 4, 4, 4][..]] {
        let stride = StrideTrie::from_table(&table, strides).unwrap();
        let fs = audit_flat_stride_with_table(&FlatStrideTrie::from_stride(&stride), &table);
        assert!(fs.is_clean(), "{}", fs.summary());
        let js = audit_jump_against_stride(&JumpTrie::from_stride(&stride), &stride, &table);
        assert!(js.is_clean(), "{}", js.summary());
    }

    let tables = FamilySpec::paper_worst_case(4, 0.5, 23).generate().unwrap();
    let merged = MergedTrie::from_tables(&tables).unwrap();
    assert!(audit_merged(&merged).is_clean());
    let mlp = merged.leaf_pushed();
    for report in [
        audit_merged_leaf_pushed(&mlp, &tables),
        audit_flat(&FlatTrie::from_merged(&mlp)),
        audit_jump(&JumpTrie::from_merged(&mlp)),
        audit_braided(&BraidedTrie::from_tables(&tables).unwrap(), &tables),
    ] {
        assert!(report.is_clean(), "{}", report.summary());
    }
}

/// Reports serialize with coordinates a debugger can act on.
#[test]
fn violation_coordinates_locate_the_damage() {
    let table: RoutingTable = "10.0.0.0/8 1\n10.1.0.0/16 2\n10.1.1.0/24 3\n"
        .parse()
        .unwrap();
    let trie = JumpTrie::from_table(&table);
    let p = trie.raw_parts();
    let bad_word = p
        .words
        .iter()
        .position(|w| w & jump::LEAF_BIT == 0)
        .expect("table deep enough for an internal word");
    let mutated = rebuild_jump(&trie, |words, _| words[bad_word] = jump::PAYLOAD_MASK);
    let report = audit_jump(&mutated);
    assert!(!report.is_clean());
    let v = report
        .violations
        .iter()
        .find(|v| v.check == CheckKind::ChildBounds)
        .expect("a recorded child_bounds violation");
    assert_eq!(v.coordinates.offset, Some(bad_word as u64));
    assert_eq!(v.coordinates.word, Some(u64::from(jump::PAYLOAD_MASK)));
    let json = serde_json::to_string(&report).unwrap();
    assert!(json.contains("ChildBounds"));
}

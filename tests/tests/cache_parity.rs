//! Property-based parity for the hot-path LPM result cache: a cached
//! service must be **bit-identical** to an uncached one under arbitrary
//! traffic (uniform and Zipf-skewed) interleaved with arbitrary route
//! churn. The cache is deliberately tiny (64–256 slots, far below any
//! working set these streams draw) so every property also exercises
//! eviction by collision, and every `apply_updates`/`publish_tables`
//! bumps the RCU generation the slots are tagged with — a stale hit
//! surviving a publish is exactly the bug class these properties hunt.
//!
//! The direct `LpmCache` probe/fill layer has its own unit proofs in
//! `vr-engine` (including generation-bump-invalidates-without-touching-
//! slots); here the properties go through the full services, channels
//! and snapshots included.

use proptest::prelude::*;
use vr_engine::service::lookup_batch_mixed;
use vr_engine::{
    LookupService, LpmCache, ServiceConfig, ShardedConfig, ShardedService, TableSnapshot,
};
use vr_net::synth::FamilySpec;
use vr_net::{SkewedSpec, SkewedTraffic, UpdateMix, UpdateStream};
use vr_trie::{JumpTrie, MergedTrie};

const K: usize = 3;

fn family(seed: u64) -> Vec<vr_net::RoutingTable> {
    FamilySpec {
        k: K,
        prefixes_per_table: 96,
        shared_fraction: 0.5,
        seed,
        distribution: vr_net::synth::PrefixLenDistribution::edge_default(),
        next_hops: 8,
    }
    .generate()
    .expect("family generation")
}

/// One step of a generated schedule: resolve a batch of packets, or
/// publish a burst of route updates (which bumps the generation and
/// must invalidate every cached slot at once).
#[derive(Debug, Clone)]
enum Step {
    Batch { len: usize, skew_bucket: u8 },
    Churn { updates: usize },
}

fn arb_steps() -> impl Strategy<Value = Vec<Step>> {
    // (kind, len, skew_bucket): kind 0 is churn (1 in 4 — route bursts
    // are rarer than batches, as in the replay traces), anything else a
    // traffic batch of the given length and skew.
    prop::collection::vec((0u8..4, 1usize..400, 0u8..3), 1..12).prop_map(|raw| {
        raw.into_iter()
            .map(|(kind, len, skew_bucket)| {
                if kind == 0 {
                    Step::Churn {
                        updates: len % 47 + 1,
                    }
                } else {
                    Step::Batch { len, skew_bucket }
                }
            })
            .collect()
    })
}

/// Buckets keep the strategy shrinkable while still covering the
/// uniform / moderate / heavy-tail regimes.
fn skew_of(bucket: u8) -> f64 {
    match bucket {
        0 => 0.0,
        1 => 0.8,
        _ => 1.4,
    }
}

/// Drives one schedule through a cached and an uncached
/// [`LookupService`] and asserts element-wise identical results at
/// every step. Each `skew_bucket` gets its own traffic stream so a
/// single schedule mixes distributions.
fn check_service_parity(seed: u64, cache_slots: usize, steps: &[Step]) {
    let tables = family(seed);
    let cached_cfg = ServiceConfig {
        workers: 2,
        lookup_cache: Some(cache_slots),
        ..ServiceConfig::default()
    };
    let uncached_cfg = ServiceConfig {
        workers: 2,
        ..ServiceConfig::default()
    };
    let mut cached = LookupService::new(tables.clone(), cached_cfg).expect("cached service");
    let mut uncached = LookupService::new(tables.clone(), uncached_cfg).expect("uncached service");
    let mut updates =
        UpdateStream::new(tables.clone(), UpdateMix::default(), 8, seed).expect("update stream");
    let mut streams: Vec<SkewedTraffic> = (0..3u8)
        .map(|b| {
            let spec = SkewedSpec::zipf(K, skew_of(b), seed ^ u64::from(b));
            SkewedTraffic::new(spec, &tables).expect("traffic stream")
        })
        .collect();

    for (i, step) in steps.iter().enumerate() {
        match *step {
            Step::Batch { len, skew_bucket } => {
                let packets = streams[usize::from(skew_bucket)].pairs(len);
                let want = uncached.process(&packets);
                let got = cached.process(&packets);
                assert_eq!(got, want, "step {i}: cached diverged on a batch");
            }
            Step::Churn { updates: n } => {
                let burst = updates.batch(n);
                let g1 = cached.apply_updates(&burst).expect("cached churn");
                let g2 = uncached.apply_updates(&burst).expect("uncached churn");
                assert_eq!(g1, g2, "step {i}: generations diverged");
            }
        }
    }
    // One final batch after the last churn so every schedule ends by
    // proving the post-publish state, not just the interleaving.
    let packets = streams[0].pairs(256);
    assert_eq!(
        cached.process(&packets),
        uncached.process(&packets),
        "post-schedule batch diverged"
    );
    let _ = cached.shutdown();
    let _ = uncached.shutdown();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Cached vs uncached `LookupService` under arbitrary interleavings
    /// of mixed-skew traffic and route-update churn.
    #[test]
    fn cached_service_is_bit_identical_under_churn(
        seed in 0u64..1_000,
        slots_pow in 6u32..9, // 64..256 slots: tiny, eviction-heavy
        steps in arb_steps(),
    ) {
        check_service_parity(seed, 1usize << slots_pow, &steps);
    }

    /// Same property through the sharded organization: shard threads own
    /// their snapshots and caches, and adopt publishes via the job FIFO,
    /// so the generation tag must invalidate per-shard caches too.
    #[test]
    fn cached_sharded_service_is_bit_identical_across_publishes(
        seed in 0u64..1_000,
        steps in arb_steps(),
    ) {
        let tables = family(seed);
        let cached_cfg = ShardedConfig {
            shards: 2,
            lookup_cache: Some(128),
            ..ShardedConfig::default()
        };
        let uncached_cfg = ShardedConfig {
            shards: 2,
            ..ShardedConfig::default()
        };
        let mut cached =
            ShardedService::new(tables.clone(), cached_cfg).expect("cached sharded");
        let mut uncached =
            ShardedService::new(tables.clone(), uncached_cfg).expect("uncached sharded");
        let mut updates = UpdateStream::new(tables.clone(), UpdateMix::default(), 8, seed)
            .expect("update stream");
        let mut tables_now = tables;
        let mut stream = SkewedTraffic::new(SkewedSpec::zipf(K, 1.0, seed), &tables_now)
            .expect("traffic stream");
        for (i, step) in steps.iter().enumerate() {
            match *step {
                Step::Batch { len, .. } => {
                    let packets = stream.pairs(len);
                    let mut want = vec![None; packets.len()];
                    let mut got = vec![None; packets.len()];
                    uncached.process_into(&packets, &mut want);
                    cached.process_into(&packets, &mut got);
                    assert_eq!(got, want, "step {i}: cached shard diverged");
                }
                Step::Churn { updates: n } => {
                    // The sharded service republishes whole tables; the
                    // update stream's burst is applied to our copy so
                    // both sides see the identical new family.
                    for u in updates.batch(n) {
                        let t = &mut tables_now[usize::from(u.vnid())];
                        match u {
                            vr_net::RouteUpdate::Announce { prefix, next_hop, .. } => {
                                t.insert(prefix, next_hop);
                            }
                            vr_net::RouteUpdate::Withdraw { prefix, .. } => {
                                t.remove(&prefix);
                            }
                        }
                    }
                    let g1 = cached.publish_tables(tables_now.clone()).expect("publish");
                    let g2 = uncached.publish_tables(tables_now.clone()).expect("publish");
                    assert_eq!(g1, g2, "step {i}: generations diverged");
                }
            }
        }
        let packets = stream.pairs(256);
        let mut want = vec![None; packets.len()];
        let mut got = vec![None; packets.len()];
        uncached.process_into(&packets, &mut want);
        cached.process_into(&packets, &mut got);
        assert_eq!(got, want, "post-schedule sharded batch diverged");
        let _ = cached.shutdown();
        let _ = uncached.shutdown();
    }

    /// The probe/fill layer itself, single-threaded: an `LpmCache` in
    /// front of `lookup_batch_mixed` must match the uncached walk for
    /// arbitrary batches across generation bumps, with a cache small
    /// enough that collisions evict constantly.
    #[test]
    fn lpm_cache_layer_matches_uncached_walk(
        seed in 0u64..1_000,
        batches in prop::collection::vec((1usize..300, 0u8..3), 1..10),
    ) {
        let tables = family(seed);
        let trie = JumpTrie::from_merged(
            &MergedTrie::from_tables(&tables).expect("merge").leaf_pushed(),
        );
        let mut cache = LpmCache::new(64).expect("cache");
        let mut stream = SkewedTraffic::new(SkewedSpec::zipf(K, 1.0, seed), &tables)
            .expect("traffic stream");
        for (generation, &(len, _)) in batches.iter().enumerate() {
            // A fresh generation every batch: every probe of this batch
            // sees only tags from older generations, so correctness can
            // never lean on a stale fill.
            let packets = stream.pairs(len);
            let mut want = vec![None; packets.len()];
            let mut got = vec![None; packets.len()];
            lookup_batch_mixed(&trie, &packets, &mut want);
            cache.lookup_batch(&trie, generation as u64, &packets, &mut got);
            assert_eq!(got, want, "generation {generation} diverged");
        }
    }
}

/// Deterministic regression: the published snapshot generation a worker
/// pins is the same value the cache tags slots with — publish, and the
/// very next batch must re-walk (miss) rather than serve the old hops.
#[test]
fn publish_invalidates_cached_results_exactly() {
    let tables = family(7);
    let mut svc = LookupService::new(
        tables.clone(),
        ServiceConfig {
            workers: 1,
            lookup_cache: Some(256),
            ..ServiceConfig::default()
        },
    )
    .expect("service");
    let mut stream =
        SkewedTraffic::new(SkewedSpec::zipf(K, 1.2, 7), &tables).expect("traffic stream");
    let packets = stream.pairs(512);
    let before = svc.process(&packets);
    // Republish the same tables: contents identical, generation bumped.
    let generation = svc.publish_tables(tables.clone()).expect("republish");
    assert!(generation > 0);
    let after = svc.process(&packets);
    assert_eq!(before, after, "same tables must resolve identically");
    // And against a genuinely different snapshot the old cached hops
    // must not leak: drop every table to empty.
    let empty: Vec<vr_net::RoutingTable> = tables
        .iter()
        .map(|_| vr_net::RoutingTable::from_entries(std::iter::empty()))
        .collect();
    svc.publish_tables(empty).expect("publish empty");
    let cleared = svc.process(&packets);
    assert!(
        cleared.iter().all(Option::is_none),
        "stale cache slots served hops from a dead generation"
    );
    let snapshot: vr_sync::SyncArc<TableSnapshot> = svc.snapshot();
    assert!(snapshot.generation >= 2);
    let _ = svc.shutdown();
}

//! Property-based equivalence: every fast lookup path (uni-bit trie,
//! leaf-pushed trie, merged trie, cycle-level pipeline) must agree with
//! the linear-scan oracle on arbitrary tables and probe addresses.

use proptest::prelude::*;
use vr_net::table::{NextHop, RouteEntry};
use vr_net::{Ipv4Prefix, RoutingTable};
use vr_trie::merge::merge_tables;
use vr_trie::{LeafPushedTrie, MergedTrie, UnibitTrie};

/// Strategy: an arbitrary routing table of up to `max` routes.
fn arb_table(max: usize) -> impl Strategy<Value = RoutingTable> {
    prop::collection::vec((any::<u32>(), 0u8..=32, any::<NextHop>()), 0..max).prop_map(|routes| {
        RoutingTable::from_entries(
            routes
                .into_iter()
                .map(|(addr, len, nh)| RouteEntry::new(Ipv4Prefix::must(addr, len), nh)),
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn trie_matches_oracle(table in arb_table(64), probes in prop::collection::vec(any::<u32>(), 32)) {
        let trie = UnibitTrie::from_table(&table);
        prop_assert!(trie.check_invariants());
        for ip in probes {
            prop_assert_eq!(trie.lookup(ip), table.lookup(ip), "ip {:#010x}", ip);
        }
    }

    #[test]
    fn leaf_pushed_matches_oracle(table in arb_table(64), probes in prop::collection::vec(any::<u32>(), 32)) {
        let trie = UnibitTrie::from_table(&table);
        let pushed = LeafPushedTrie::from_unibit(&trie);
        prop_assert!(pushed.is_full());
        for ip in probes {
            prop_assert_eq!(pushed.lookup(ip), table.lookup(ip), "ip {:#010x}", ip);
        }
    }

    #[test]
    fn merged_matches_every_oracle(
        tables in prop::collection::vec(arb_table(32), 1..5),
        probes in prop::collection::vec(any::<u32>(), 16),
    ) {
        let merged = MergedTrie::from_tables(&tables).unwrap();
        let pushed = merged.leaf_pushed();
        prop_assert!(pushed.is_full());
        let alpha = merged.merging_efficiency();
        prop_assert!((0.0..=1.0).contains(&alpha));
        for (vnid, table) in tables.iter().enumerate() {
            for &ip in &probes {
                prop_assert_eq!(merged.lookup(vnid, ip), table.lookup(ip));
                prop_assert_eq!(pushed.lookup(vnid, ip), table.lookup(ip));
            }
        }
    }

    #[test]
    fn insert_remove_round_trip(table in arb_table(48), extra in (any::<u32>(), 1u8..=32, any::<NextHop>())) {
        let mut trie = UnibitTrie::from_table(&table);
        let nodes_before = trie.node_count();
        let prefix = Ipv4Prefix::must(extra.0, extra.1);
        let existing = table.get(&prefix);
        trie.insert(prefix, extra.2);
        prop_assert_eq!(trie.get(&prefix), Some(extra.2));
        match existing {
            Some(nh) => {
                // Restore and expect identical structure.
                trie.insert(prefix, nh);
                prop_assert_eq!(trie.node_count(), nodes_before);
            }
            None => {
                trie.remove(&prefix);
                prop_assert_eq!(trie.node_count(), nodes_before);
                prop_assert_eq!(trie.get(&prefix), None);
            }
        }
        prop_assert!(trie.check_invariants());
        prop_assert_eq!(trie.to_table().len(), trie.prefix_count());
    }

    #[test]
    fn merged_node_count_is_bounded(tables in prop::collection::vec(arb_table(32), 1..5)) {
        let tries: Vec<UnibitTrie> = tables.iter().map(UnibitTrie::from_table).collect();
        let merged = MergedTrie::from_tries(&tries).unwrap();
        let max = tries.iter().map(UnibitTrie::node_count).max().unwrap();
        let sum: usize = tries.iter().map(UnibitTrie::node_count).sum();
        prop_assert!(merged.node_count() >= max);
        prop_assert!(merged.node_count() <= sum);
        // Leaf pushing preserves fullness and never shrinks the trie.
        let pushed = merged.leaf_pushed();
        prop_assert!(pushed.node_count() >= merged.node_count());
    }

    #[test]
    fn stride_trie_matches_oracle(
        table in arb_table(48),
        probes in prop::collection::vec(any::<u32>(), 24),
        stride_pick in 0usize..3,
    ) {
        use vr_trie::StrideTrie;
        let strides: &[u8] = [&[8u8, 8, 8, 8][..], &[4; 8][..], &[2; 16][..]][stride_pick];
        let trie = StrideTrie::from_table(&table, strides).unwrap();
        prop_assert_eq!(trie.prefix_count(), table.len());
        for ip in probes {
            prop_assert_eq!(trie.lookup(ip), table.lookup(ip), "ip {:#010x}", ip);
        }
    }

    #[test]
    fn merged_churn_preserves_invariants_and_oracle(
        start in prop::collection::vec(arb_table(24), 1..4),
        ops in prop::collection::vec(
            (0usize..4, any::<u32>(), 1u8..=32, any::<NextHop>(), any::<bool>()),
            0..60,
        ),
    ) {
        let mut merged = MergedTrie::from_tables(&start).unwrap();
        let mut shadow = start;
        let k = shadow.len();
        for (vn, addr, len, nh, announce) in ops {
            let vn = vn % k;
            let prefix = Ipv4Prefix::must(addr, len);
            if announce {
                prop_assert_eq!(
                    merged.insert(vn, prefix, nh),
                    shadow[vn].insert(prefix, nh)
                );
            } else {
                prop_assert_eq!(merged.remove(vn, &prefix), shadow[vn].remove(&prefix));
            }
        }
        prop_assert!(merged.check_invariants());
        for (vn, table) in shadow.iter().enumerate() {
            for prefix in table.prefixes().take(16) {
                let probe = prefix.addr() | 1;
                prop_assert_eq!(merged.lookup(vn, probe), table.lookup(probe));
            }
        }
    }

    #[test]
    fn braided_trie_matches_every_oracle(
        tables in prop::collection::vec(arb_table(24), 1..4),
        probes in prop::collection::vec(any::<u32>(), 16),
    ) {
        use vr_trie::BraidedTrie;
        let braided = BraidedTrie::from_tables(&tables).unwrap();
        // Braiding never stores more than the separate tries combined.
        let per_vn: usize = (0..tables.len()).map(|v| braided.vn_node_count(v)).sum();
        prop_assert!(braided.node_count() <= per_vn.max(1));
        for (vnid, table) in tables.iter().enumerate() {
            for &ip in &probes {
                prop_assert_eq!(
                    braided.lookup(vnid, ip),
                    table.lookup(ip),
                    "vn {} ip {:#010x}", vnid, ip
                );
            }
        }
    }

    #[test]
    fn frame_parser_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..80)) {
        // Arbitrary bytes either parse (and then satisfy the header
        // checksum invariant) or produce a typed error — never a panic.
        use vr_engine::datapath::{internet_checksum, parse_frame};
        if let Ok(packet) = parse_frame(&bytes) {
            prop_assert!(packet.header_len >= 20);
            prop_assert_eq!(
                internet_checksum(&bytes[14..14 + packet.header_len]),
                0
            );
        }
    }

    #[test]
    fn pipeline_engine_matches_oracle(seed in any::<u64>()) {
        use vr_engine::{EngineConfig, PipelineEngine};
        use vr_trie::pipeline_map::{MemoryLayout, PipelineProfile};

        let table = vr_net::synth::TableSpec {
            prefixes: 120,
            seed,
            distribution: vr_net::synth::PrefixLenDistribution::edge_default(),
            clustering: None,
            include_default_route: seed % 2 == 0,
            next_hops: 8,
        }
        .generate()
        .unwrap();
        let pushed = LeafPushedTrie::from_unibit(&UnibitTrie::from_table(&table));
        let profile = PipelineProfile::for_single(&pushed, 28, MemoryLayout::default()).unwrap();
        let mut engine =
            PipelineEngine::new_single(pushed, &profile, EngineConfig::paper_default()).unwrap();

        let probes: Vec<u32> = table.prefixes().map(|p| p.addr() ^ (seed as u32)).collect();
        let mut outputs = Vec::new();
        for &ip in &probes {
            if let Some(done) = engine.tick(Some((0, ip))) {
                outputs.push(done);
            }
        }
        outputs.extend(engine.drain());
        prop_assert_eq!(outputs.len(), probes.len());
        for done in outputs {
            prop_assert_eq!(done.next_hop, table.lookup(done.dst));
        }
    }
}

/// Non-proptest sanity anchor: deterministic mixed workload through all
/// three data structures simultaneously.
#[test]
fn three_structures_agree_on_paper_scale_table() {
    let table = vr_net::synth::TableSpec::paper_worst_case(42)
        .generate()
        .unwrap();
    let trie = UnibitTrie::from_table(&table);
    let pushed = LeafPushedTrie::from_unibit(&trie);
    let (merged, merged_pushed) = merge_tables(std::slice::from_ref(&table)).unwrap();
    let mut checked = 0usize;
    for p in table.prefixes() {
        for probe in [p.addr(), p.addr() | 0xFF, p.addr().wrapping_sub(1)] {
            let expect = table.lookup(probe);
            assert_eq!(trie.lookup(probe), expect);
            assert_eq!(pushed.lookup(probe), expect);
            assert_eq!(merged.lookup(0, probe), expect);
            assert_eq!(merged_pushed.lookup(0, probe), expect);
            checked += 1;
        }
    }
    assert!(checked > 10_000, "must cover a paper-scale probe set");
}

//! Trace-causality property: under arbitrary interleavings of traffic
//! and route churn, every sampled batch trace the service records must
//! be a well-formed causal chain — opened at enqueue, closed at
//! complete, contiguous and monotonic in between, attributed to exactly
//! one worker — the 1-in-N sampling decision must be exact in the batch
//! sequence number, and every successful update batch must land as its
//! own single-span control trace carrying the generation it produced.

use proptest::prelude::*;
use vr_engine::{LookupService, ServiceConfig, Stage};
use vr_net::table::RouteEntry;
use vr_net::{Ipv4Prefix, RouteUpdate, RoutingTable, VnId};

const K: usize = 2;

/// Full-coverage /8 tables so every probe resolves regardless of churn.
fn tables() -> Vec<RoutingTable> {
    let t = RoutingTable::from_entries(
        (0u32..256).map(|i| RouteEntry::new(Ipv4Prefix::must(i << 24, 8), 1)),
    );
    vec![t; K]
}

fn batch(seed: u32, len: usize) -> Vec<(VnId, u32)> {
    (0..len as u32)
        .map(|i| {
            let ip = seed.wrapping_add(i).wrapping_mul(0x9E37_79B9);
            ((i as usize % K) as VnId, ip)
        })
        .collect()
}

/// One step of the interleaving: a traffic batch or a route update.
#[derive(Debug, Clone)]
enum Op {
    Batch { seed: u32, len: usize },
    Churn { vnid: VnId, octet: u8, announce: bool },
}

/// The vendored proptest has no `prop_oneof`, so the op kind rides in a
/// discriminant field: 3-in-4 traffic, 1-in-4 churn.
fn op_strategy() -> impl Strategy<Value = Op> {
    (0u8..4, any::<u32>(), 1usize..64).prop_map(|(kind, seed, len)| {
        if kind < 3 {
            Op::Batch { seed, len }
        } else {
            Op::Churn {
                vnid: (seed % K as u32) as VnId,
                octet: (seed >> 8) as u8,
                announce: seed & 1 == 0,
            }
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]
    #[test]
    fn sampled_traces_stay_causal_under_churn(
        ops in prop::collection::vec(op_strategy(), 1..40),
        workers in 1usize..=3,
        sample in 1u32..=4,
        cache_toggle in 0u8..2,
    ) {
        let mut svc = LookupService::new(
            tables(),
            ServiceConfig {
                workers,
                trace_sample: Some(sample),
                lookup_cache: (cache_toggle == 1).then_some(64),
                ..ServiceConfig::default()
            },
        )
        .expect("service construction");

        let mut submitted = Vec::new();
        let mut publishes = 0u64;
        for op in &ops {
            match *op {
                Op::Batch { seed, len } => submitted.push(svc.submit(batch(seed, len))),
                Op::Churn { vnid, octet, announce } => {
                    // A /16 inside an existing /8 so withdrawals of a
                    // never-announced prefix stay harmless no-ops.
                    let prefix = Ipv4Prefix::must(u32::from(octet) << 24 | 0x0001_0000, 16);
                    let update = if announce {
                        RouteUpdate::Announce { vnid, prefix, next_hop: 7 }
                    } else {
                        RouteUpdate::Withdraw { vnid, prefix }
                    };
                    if svc.apply_updates(&[update]).is_ok() {
                        publishes += 1;
                    }
                }
            }
        }
        let _ = svc.collect_all();
        let final_generation = svc.generation();
        let snap = svc.tracer().expect("tracing configured").snapshot();

        // Every recorded trace — batch or control — is a valid chain.
        for trace in &snap.traces {
            prop_assert!(
                trace.validate().is_ok(),
                "invalid trace {}: {:?}",
                trace.trace_id,
                trace.validate()
            );
            prop_assert!(trace.generation <= final_generation);
        }

        // Sampling is exact in the sequence number: the batch traces
        // are precisely the submitted seqs divisible by the rate, and
        // each is attributed to a worker with its full stage chain.
        let expected: Vec<u64> = submitted
            .iter()
            .copied()
            .filter(|seq| seq % u64::from(sample) == 0)
            .collect();
        let mut traced = Vec::new();
        for trace in &snap.traces {
            if trace.stages.first().is_some_and(|s| s.stage == Stage::Enqueue) {
                prop_assert!(trace.worker.is_some(), "batch trace without a worker");
                prop_assert!(
                    trace.stages.last().is_some_and(|s| s.stage == Stage::Complete),
                    "batch trace not closed"
                );
                traced.push(trace.seq);
            }
        }
        traced.sort_unstable();
        prop_assert_eq!(traced, expected);

        // Every successful update batch produced exactly one
        // ApplyUpdates control span, unattributed to any worker.
        let control: Vec<_> = snap
            .traces
            .iter()
            .filter(|t| t.stages.first().is_some_and(|s| s.stage == Stage::ApplyUpdates))
            .collect();
        prop_assert_eq!(control.len() as u64, publishes);
        for span in control {
            prop_assert!(span.worker.is_none() && span.shard.is_none());
        }

        let _ = svc.shutdown();
    }
}

//! Property-based parity: `lookup_batch` must be element-wise identical
//! to the scalar `lookup` oracle on every trie variant, for arbitrary
//! tables (with and without a default route) and arbitrary batches —
//! including empty ones. The scalar paths are themselves proven against
//! the linear-scan oracle in `oracle_equivalence.rs`, so batch == scalar
//! closes the loop.

use proptest::prelude::*;
use vr_net::table::{NextHop, RouteEntry};
use vr_net::{Ipv4Prefix, RoutingTable};
use vr_trie::{
    FlatStrideTrie, FlatTrie, JumpTrie, LeafPushedTrie, MergedTrie, StrideTrie, UnibitTrie,
};

/// Strategy: an arbitrary routing table of up to `max` routes. `min_len`
/// = 1 excludes the /0 default route, so both "has default" and "no
/// default route" table shapes are exercised.
fn arb_table(max: usize, min_len: u8) -> impl Strategy<Value = RoutingTable> {
    prop::collection::vec((any::<u32>(), min_len..=32, any::<NextHop>()), 0..max).prop_map(
        |routes| {
            RoutingTable::from_entries(
                routes
                    .into_iter()
                    .map(|(addr, len, nh)| RouteEntry::new(Ipv4Prefix::must(addr, len), nh)),
            )
        },
    )
}

/// Strategy: a batch of 0..40 destinations (0 exercises the empty batch).
fn arb_batch() -> impl Strategy<Value = Vec<u32>> {
    prop::collection::vec(any::<u32>(), 0..40)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn unibit_batch_matches_scalar(
        table in arb_table(64, 0),
        batch in arb_batch(),
    ) {
        let trie = UnibitTrie::from_table(&table);
        let mut out = vec![None; batch.len()];
        trie.lookup_batch(&batch, &mut out);
        for (i, &ip) in batch.iter().enumerate() {
            prop_assert_eq!(out[i], trie.lookup(ip), "ip {:#010x}", ip);
        }
    }

    #[test]
    fn leaf_pushed_and_flat_batch_match_scalar(
        table in arb_table(64, 1), // no default route
        batch in arb_batch(),
    ) {
        let pushed = LeafPushedTrie::from_unibit(&UnibitTrie::from_table(&table));
        let flat = FlatTrie::from_leaf_pushed(&pushed);
        let mut out = vec![None; batch.len()];
        pushed.lookup_batch(&batch, &mut out);
        let mut flat_out = vec![None; batch.len()];
        flat.lookup_batch(&batch, &mut flat_out);
        for (i, &ip) in batch.iter().enumerate() {
            let expect = pushed.lookup(ip);
            prop_assert_eq!(out[i], expect, "pushed ip {:#010x}", ip);
            prop_assert_eq!(flat_out[i], expect, "flat ip {:#010x}", ip);
            prop_assert_eq!(flat.lookup(ip), expect, "flat scalar ip {:#010x}", ip);
        }
    }

    #[test]
    fn merged_batch_matches_scalar_per_vn(
        tables in prop::collection::vec(arb_table(32, 0), 1..5),
        batch in arb_batch(),
    ) {
        let merged = MergedTrie::from_tables(&tables).unwrap();
        let pushed = merged.leaf_pushed();
        let flat = FlatTrie::from_merged(&pushed);
        for vnid in 0..tables.len() {
            let mut out = vec![None; batch.len()];
            merged.lookup_batch(vnid, &batch, &mut out);
            let mut pushed_out = vec![None; batch.len()];
            pushed.lookup_batch(vnid, &batch, &mut pushed_out);
            let mut flat_out = vec![None; batch.len()];
            flat.lookup_batch_vn(vnid, &batch, &mut flat_out);
            for (i, &ip) in batch.iter().enumerate() {
                let expect = merged.lookup(vnid, ip);
                prop_assert_eq!(out[i], expect, "merged vn {} ip {:#010x}", vnid, ip);
                prop_assert_eq!(pushed_out[i], expect, "pushed vn {} ip {:#010x}", vnid, ip);
                prop_assert_eq!(flat_out[i], expect, "flat vn {} ip {:#010x}", vnid, ip);
            }
        }
    }

    #[test]
    fn stride_and_flat_stride_batch_match_scalar(
        table in arb_table(48, 0),
        batch in arb_batch(),
        stride_pick in 0usize..3,
    ) {
        let strides: &[u8] = [&[8u8, 8, 8, 8][..], &[4; 8][..], &[2; 16][..]][stride_pick];
        let trie = StrideTrie::from_table(&table, strides).unwrap();
        let flat = FlatStrideTrie::from_stride(&trie);
        let mut out = vec![None; batch.len()];
        trie.lookup_batch(&batch, &mut out);
        let mut flat_out = vec![None; batch.len()];
        flat.lookup_batch(&batch, &mut flat_out);
        for (i, &ip) in batch.iter().enumerate() {
            let expect = trie.lookup(ip);
            prop_assert_eq!(out[i], expect, "stride ip {:#010x}", ip);
            prop_assert_eq!(flat_out[i], expect, "flat stride ip {:#010x}", ip);
            prop_assert_eq!(flat.lookup(ip), expect, "flat scalar ip {:#010x}", ip);
        }
    }

    #[test]
    fn jump_batch_matches_scalar_and_table_oracle(
        table in arb_table(64, 0), // default routes allowed (/0 reachable)
        batch in arb_batch(),
    ) {
        let jump = JumpTrie::from_table(&table);
        let mut out = vec![None; batch.len()];
        jump.lookup_batch(&batch, &mut out);
        for (i, &ip) in batch.iter().enumerate() {
            let expect = table.lookup(ip);
            prop_assert_eq!(jump.lookup(ip), expect, "jump scalar ip {:#010x}", ip);
            prop_assert_eq!(out[i], expect, "jump batch ip {:#010x}", ip);
        }
    }

    #[test]
    fn jump_matches_flat_oracle_without_default_route(
        table in arb_table(64, 1), // no default route — misses must stay misses
        batch in arb_batch(),
    ) {
        let pushed = LeafPushedTrie::from_unibit(&UnibitTrie::from_table(&table));
        let flat = FlatTrie::from_leaf_pushed(&pushed);
        let jump = JumpTrie::from_leaf_pushed(&pushed);
        let mut out = vec![None; batch.len()];
        jump.lookup_batch(&batch, &mut out);
        for (i, &ip) in batch.iter().enumerate() {
            let expect = flat.lookup(ip);
            prop_assert_eq!(jump.lookup(ip), expect, "jump scalar ip {:#010x}", ip);
            prop_assert_eq!(out[i], expect, "jump batch ip {:#010x}", ip);
        }
    }

    #[test]
    fn merged_jump_batch_matches_scalar_per_vn(
        tables in prop::collection::vec(arb_table(32, 0), 1..5),
        batch in arb_batch(),
    ) {
        let merged = MergedTrie::from_tables(&tables).unwrap();
        let jump = JumpTrie::from_merged(&merged.leaf_pushed());
        for vnid in 0..tables.len() {
            let mut out = vec![None; batch.len()];
            jump.lookup_batch_vn(vnid, &batch, &mut out);
            for (i, &ip) in batch.iter().enumerate() {
                let expect = merged.lookup(vnid, ip);
                prop_assert_eq!(jump.lookup_vn(vnid, ip), expect, "jump vn {} ip {:#010x}", vnid, ip);
                prop_assert_eq!(out[i], expect, "jump batch vn {} ip {:#010x}", vnid, ip);
            }
        }
    }

    #[test]
    fn flat_from_unibit_batch_matches_table_oracle(
        table in arb_table(64, 1), // no default route
        batch in arb_batch(),
    ) {
        let flat = FlatTrie::from_unibit(&UnibitTrie::from_table(&table));
        let mut out = vec![None; batch.len()];
        flat.lookup_batch(&batch, &mut out);
        for (i, &ip) in batch.iter().enumerate() {
            prop_assert_eq!(out[i], table.lookup(ip), "ip {:#010x}", ip);
        }
    }
}

/// Deterministic anchor: every variant agrees on the same empty batch
/// (no panics, no writes) and on a shared paper-scale batch.
#[test]
fn all_variants_handle_empty_and_paper_scale_batches() {
    let table = vr_net::synth::TableSpec::paper_worst_case(7)
        .generate()
        .unwrap();
    let unibit = UnibitTrie::from_table(&table);
    let pushed = LeafPushedTrie::from_unibit(&unibit);
    let flat = FlatTrie::from_leaf_pushed(&pushed);
    let stride = StrideTrie::from_table(&table, &[8, 8, 8, 8]).unwrap();
    let flat_stride = FlatStrideTrie::from_stride(&stride);
    let jump = JumpTrie::from_leaf_pushed(&pushed);
    let merged = MergedTrie::from_tables(std::slice::from_ref(&table)).unwrap();
    let merged_pushed = merged.leaf_pushed();

    // Empty batches are no-ops everywhere.
    unibit.lookup_batch(&[], &mut []);
    pushed.lookup_batch(&[], &mut []);
    flat.lookup_batch(&[], &mut []);
    stride.lookup_batch(&[], &mut []);
    flat_stride.lookup_batch(&[], &mut []);
    jump.lookup_batch(&[], &mut []);
    merged.lookup_batch(0, &[], &mut []);
    merged_pushed.lookup_batch(0, &[], &mut []);

    let batch: Vec<u32> = table
        .prefixes()
        .flat_map(|p| [p.addr(), p.addr() | 0x3F, p.addr().wrapping_sub(1)])
        .collect();
    let mut out = vec![None; batch.len()];
    let mut checked = 0usize;
    for (label, result) in [
        ("unibit", {
            unibit.lookup_batch(&batch, &mut out);
            out.clone()
        }),
        ("leaf-pushed", {
            pushed.lookup_batch(&batch, &mut out);
            out.clone()
        }),
        ("flat", {
            flat.lookup_batch(&batch, &mut out);
            out.clone()
        }),
        ("stride", {
            stride.lookup_batch(&batch, &mut out);
            out.clone()
        }),
        ("flat-stride", {
            flat_stride.lookup_batch(&batch, &mut out);
            out.clone()
        }),
        ("jump", {
            jump.lookup_batch(&batch, &mut out);
            out.clone()
        }),
        ("merged", {
            merged.lookup_batch(0, &batch, &mut out);
            out.clone()
        }),
        ("merged-pushed", {
            merged_pushed.lookup_batch(0, &batch, &mut out);
            out.clone()
        }),
    ] {
        for (i, &ip) in batch.iter().enumerate() {
            assert_eq!(result[i], table.lookup(ip), "{label} ip {ip:#010x}");
            checked += 1;
        }
    }
    assert!(checked > 10_000, "must cover a paper-scale probe set");
}

/// Edge lengths the direct-index front end must get right: a /0 default
/// route (fills every root bucket), /16 prefixes (exactly the jump
/// width), and /32 host routes (deepest possible sub-trie walk).
#[test]
fn jump_handles_length_extremes() {
    let table = RoutingTable::from_entries([
        RouteEntry::new(Ipv4Prefix::must(0, 0), 1),
        RouteEntry::new(Ipv4Prefix::must(0x0A00_0000, 8), 2),
        RouteEntry::new(Ipv4Prefix::must(0x0A14_0000, 16), 3),
        RouteEntry::new(Ipv4Prefix::must(0x0A14_001E, 32), 4),
        RouteEntry::new(Ipv4Prefix::must(0xC0A8_0100, 24), 5),
    ]);
    let jump = JumpTrie::from_table(&table);
    let probes: &[(u32, Option<NextHop>)] = &[
        (0x0101_0101, Some(1)), // default route only
        (0x0A01_0000, Some(2)), // /8
        (0x0A14_FFFF, Some(3)), // /16 exactly at the jump width
        (0x0A14_001E, Some(4)), // /32 host route
        (0x0A14_001F, Some(3)), // one off the host route falls back to /16
        (0xC0A8_01FF, Some(5)), // /24 below the jump width
        (0xC0A8_0200, Some(1)), // adjacent /24 misses back to default
    ];
    let batch: Vec<u32> = probes.iter().map(|&(ip, _)| ip).collect();
    let mut out = vec![None; batch.len()];
    jump.lookup_batch(&batch, &mut out);
    for (i, &(ip, expect)) in probes.iter().enumerate() {
        assert_eq!(table.lookup(ip), expect, "oracle ip {ip:#010x}");
        assert_eq!(jump.lookup(ip), expect, "scalar ip {ip:#010x}");
        assert_eq!(out[i], expect, "batch ip {ip:#010x}");
    }
}

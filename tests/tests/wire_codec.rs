//! Fuzz-style properties for the `VRW1` wire codec: every message
//! round-trips bit-identically through encode → arbitrary-chunk
//! incremental decode, and hostile bytes — truncations, corrupted
//! headers, flipped payload bits, random soup — produce typed
//! [`WireError`]s, never panics and never a silently-wrong message.

use proptest::prelude::*;
use vr_net::{Ipv4Prefix, RouteUpdate};
use vr_wire::frame::{crc32, decode_payload, encode, MAGIC, VERSION};
use vr_wire::{ErrorCode, FrameDecoder, Message, OverloadReason, WireError, HEADER_LEN, MAX_PAYLOAD_BYTES};

/// Strategy over every message kind with arbitrary contents. Raw
/// tuples are mapped into enum payloads so the vendored proptest's
/// small combinator set suffices.
fn arb_message() -> impl Strategy<Value = Message> {
    (
        (0u8..8, any::<u64>(), any::<u32>()),
        prop::collection::vec((any::<u16>(), any::<u32>()), 0..48),
        prop::collection::vec((any::<u16>(), any::<u8>()), 0..48),
        prop::collection::vec((0u8..2, any::<u16>(), any::<u32>(), 0u8..33, any::<u8>()), 0..24),
        prop::collection::vec(32u8..127, 0..48),
    )
        .prop_map(|((kind, id, word), packets, raw_results, raw_updates, text)| {
            let results: Vec<Option<u8>> = raw_results
                .iter()
                .map(|&(sel, nh)| if sel & 1 == 0 { None } else { Some(nh) })
                .collect();
            let updates: Vec<RouteUpdate> = raw_updates
                .into_iter()
                .map(|(k, vnid, addr, plen, next_hop)| {
                    let prefix = Ipv4Prefix::new(addr, plen).expect("plen <= 32");
                    if k == 0 {
                        RouteUpdate::Announce {
                            vnid,
                            prefix,
                            next_hop,
                        }
                    } else {
                        RouteUpdate::Withdraw { vnid, prefix }
                    }
                })
                .collect();
            match kind {
                0 => Message::LookupRequest { id, packets },
                1 => Message::LookupResponse {
                    id,
                    generation: u64::from(word),
                    results,
                },
                2 => Message::RouteUpdateBatch { id, updates },
                3 => Message::UpdateAck {
                    id,
                    generation: u64::from(word),
                },
                4 => Message::ErrorReply {
                    id,
                    code: match word % 3 {
                        0 => ErrorCode::BadRequest,
                        1 => ErrorCode::UnknownVn,
                        _ => ErrorCode::Internal,
                    },
                    message: String::from_utf8(text).expect("printable ascii"),
                },
                5 => Message::Overloaded {
                    id,
                    reason: match word % 3 {
                        0 => OverloadReason::Connections,
                        1 => OverloadReason::RateLimited,
                        _ => OverloadReason::QueueFull,
                    },
                    retry_after_ms: word,
                },
                6 => Message::Ping { id },
                _ => Message::Pong { id },
            }
        })
}

/// Decodes `stream` by feeding `chunk`-sized slices, collecting every
/// complete message.
fn decode_chunked(stream: &[u8], chunk: usize) -> Result<Vec<Message>, WireError> {
    let mut dec = FrameDecoder::new();
    let mut out = Vec::new();
    for piece in stream.chunks(chunk.max(1)) {
        dec.feed(piece);
        while let Some(msg) = dec.next_message()? {
            out.push(msg);
        }
    }
    assert_eq!(dec.buffered(), 0, "no residual bytes after whole frames");
    Ok(out)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn round_trips_through_arbitrary_chunking(
        msg in arb_message(),
        chunk in 1usize..64,
    ) {
        let stream = encode(&msg);
        let got = decode_chunked(&stream, chunk).expect("valid frame decodes");
        prop_assert_eq!(got, vec![msg]);
    }

    #[test]
    fn message_sequences_round_trip(
        msgs in prop::collection::vec(arb_message(), 1..8),
        chunk in 1usize..96,
    ) {
        let stream: Vec<u8> = msgs.iter().flat_map(encode).collect();
        let got = decode_chunked(&stream, chunk).expect("valid frames decode");
        prop_assert_eq!(got, msgs);
    }

    #[test]
    fn every_strict_prefix_waits_without_error(msg in arb_message()) {
        // A truncated stream is indistinguishable from a slow peer: the
        // decoder must park on Ok(None) for every cut point — no error,
        // no panic, no partial message.
        let stream = encode(&msg);
        for cut in 0..stream.len() {
            let mut dec = FrameDecoder::new();
            dec.feed(&stream[..cut]);
            prop_assert_eq!(dec.next_message().expect("prefix is not an error"), None);
        }
    }

    #[test]
    fn single_byte_corruption_never_yields_the_original(
        msg in arb_message(),
        at_raw in any::<u32>(),
        flip in 1u8..=255,
    ) {
        let stream = encode(&msg);
        let at = at_raw as usize % stream.len();
        let mut bad = stream.clone();
        bad[at] ^= flip;
        let mut dec = FrameDecoder::new();
        dec.feed(&bad);
        match dec.next_message() {
            // Header damage that inflates the length field legitimately
            // parks the decoder waiting for bytes that never come.
            Ok(None) => {}
            Ok(Some(got)) => prop_assert_ne!(
                got, msg,
                "corrupt byte {} slipped through undetected", at
            ),
            Err(_) => {}
        }
    }

    #[test]
    fn random_soup_never_panics(
        soup in prop::collection::vec(any::<u8>(), 0..512),
        chunk in 1usize..32,
    ) {
        let mut dec = FrameDecoder::new();
        'soup: for piece in soup.chunks(chunk) {
            dec.feed(piece);
            loop {
                match dec.next_message() {
                    Ok(Some(_)) => {}
                    Ok(None) => break,
                    // A typed error ends the stream (fail-stop); the
                    // property only demands "no panic".
                    Err(_) => break 'soup,
                }
            }
        }
    }
}

/// Builds a valid frame for `msg`, then applies `tweak` to the bytes.
fn tampered(msg: &Message, tweak: impl FnOnce(&mut Vec<u8>)) -> Vec<u8> {
    let mut frame = encode(msg);
    tweak(&mut frame);
    frame
}

fn first_error(stream: &[u8]) -> WireError {
    let mut dec = FrameDecoder::new();
    dec.feed(stream);
    loop {
        match dec.next_message() {
            Ok(Some(_)) => {}
            Ok(None) => panic!("expected an error, decoder is waiting"),
            Err(e) => return e,
        }
    }
}

#[test]
fn bad_magic_is_typed() {
    let frame = tampered(&Message::Ping { id: 7 }, |f| f[0] = b'Q');
    assert!(matches!(first_error(&frame), WireError::BadMagic(m) if m[0] == b'Q'));
}

#[test]
fn bad_version_is_typed() {
    let frame = tampered(&Message::Ping { id: 7 }, |f| f[4] = VERSION + 1);
    assert!(matches!(first_error(&frame), WireError::BadVersion(v) if v == VERSION + 1));
}

#[test]
fn unknown_frame_type_is_typed() {
    let frame = tampered(&Message::Ping { id: 7 }, |f| {
        f[5] = 0x6B;
        // Re-CRC is not needed: the type byte sits in the header, and
        // type dispatch happens after the CRC check passes.
    });
    assert!(matches!(first_error(&frame), WireError::UnknownFrameType(0x6B)));
}

#[test]
fn reserved_flags_are_rejected() {
    let frame = tampered(&Message::Ping { id: 7 }, |f| f[6] = 0x01);
    assert!(matches!(first_error(&frame), WireError::NonZeroFlags(1)));
}

#[test]
fn oversized_length_prefix_is_rejected_from_header_alone() {
    let huge = (MAX_PAYLOAD_BYTES + 1).to_le_bytes();
    let frame = tampered(&Message::Ping { id: 7 }, |f| {
        f[8..12].copy_from_slice(&huge);
        f.truncate(HEADER_LEN); // the payload never arrives
    });
    assert!(matches!(
        first_error(&frame),
        WireError::Oversized { length, .. } if length == MAX_PAYLOAD_BYTES + 1
    ));
}

#[test]
fn crc_corruption_is_rejected() {
    let msg = Message::LookupResponse {
        id: 1,
        generation: 3,
        results: vec![Some(9), None, Some(0)],
    };
    let frame = tampered(&msg, |f| {
        let last = f.len() - 1;
        f[last] ^= 0x80;
    });
    assert!(matches!(first_error(&frame), WireError::BadCrc { .. }));
}

#[test]
fn hostile_count_with_tiny_payload_is_rejected() {
    // A LookupRequest payload claiming u32::MAX packets but carrying
    // none: the count guard must refuse before any allocation.
    let mut payload = Vec::new();
    payload.extend_from_slice(&7u64.to_le_bytes());
    payload.extend_from_slice(&u32::MAX.to_le_bytes());
    let mut frame = Vec::new();
    frame.extend_from_slice(&MAGIC);
    frame.push(VERSION);
    frame.push(0x01);
    frame.extend_from_slice(&0u16.to_le_bytes());
    frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    frame.extend_from_slice(&crc32(&payload).to_le_bytes());
    frame.extend_from_slice(&payload);
    assert!(matches!(first_error(&frame), WireError::Malformed(_)));
}

#[test]
fn bad_prefix_length_in_update_is_rejected() {
    // decode_payload is reachable directly, so a hand-rolled update
    // with plen 33 exercises the fallible prefix constructor path.
    let mut payload = Vec::new();
    payload.extend_from_slice(&1u64.to_le_bytes()); // id
    payload.extend_from_slice(&1u32.to_le_bytes()); // count
    payload.push(0); // kind: announce
    payload.extend_from_slice(&2u16.to_le_bytes()); // vnid
    payload.extend_from_slice(&0x0A00_0000u32.to_le_bytes()); // addr
    payload.push(33); // plen: invalid
    payload.push(4); // next hop
    assert!(matches!(
        decode_payload(0x03, &payload),
        Err(WireError::Malformed(_))
    ));
}

#[test]
fn trailing_garbage_after_payload_is_rejected() {
    let mut payload = 9u64.to_le_bytes().to_vec();
    payload.push(0xEE); // one byte past a Ping's fixed-size payload
    assert!(matches!(
        decode_payload(0x07, &payload),
        Err(WireError::Malformed(_))
    ));
}

#[test]
fn poisoned_decoder_stays_poisoned() {
    let mut dec = FrameDecoder::new();
    let bad = tampered(&Message::Ping { id: 1 }, |f| f[0] = 0);
    dec.feed(&bad);
    let first = dec.next_message().expect_err("bad magic");
    dec.feed(&encode(&Message::Ping { id: 2 }));
    let second = dec.next_message().expect_err("still poisoned");
    assert_eq!(first, second);
}

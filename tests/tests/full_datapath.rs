//! End-to-end data path: raw Ethernet/IPv4 frames → parse → pipelined
//! lookup → TTL/checksum edit → round-robin egress scheduling — the
//! "complete router implementation" of §VI-A, driven frame by frame.

use vr_engine::datapath::{
    build_frame, forward_edit, internet_checksum, parse_frame, EditOutcome, OutputScheduler,
    ParseError,
};
use vr_engine::{EngineConfig, PipelineEngine};
use vr_integration_tests::family;
use vr_net::VnId;
use vr_trie::pipeline_map::{MemoryLayout, PipelineProfile, PAPER_PIPELINE_STAGES};
use vr_trie::{LeafPushedTrie, UnibitTrie};

#[test]
fn frames_flow_parse_lookup_edit_schedule() {
    let k = 3usize;
    let tables = family(k, 0.5, 31);

    // One engine per VN (the separate organization) + the egress stage.
    let mut engines: Vec<PipelineEngine> = tables
        .iter()
        .map(|t| {
            let lp = LeafPushedTrie::from_unibit(&UnibitTrie::from_table(t));
            let profile =
                PipelineProfile::for_single(&lp, PAPER_PIPELINE_STAGES, MemoryLayout::default())
                    .unwrap();
            PipelineEngine::new_single(lp, &profile, EngineConfig::paper_default()).unwrap()
        })
        .collect();
    let mut scheduler = OutputScheduler::new(k).unwrap();

    // Build a frame workload: valid frames for each VN, plus malformed
    // and TTL-expired ones that must be dropped at the right stage.
    let mut frames: Vec<(VnId, Vec<u8>)> = Vec::new();
    for (vn, table) in tables.iter().enumerate() {
        for prefix in table.prefixes().take(120) {
            frames.push((vn as VnId, build_frame(prefix.addr() | 1, 0x0A00_0001, 64)));
        }
    }
    let valid = frames.len();
    frames.push((0, vec![0u8; 10])); // too short
    let mut corrupted = build_frame(0x0102_0304, 1, 64);
    corrupted[20] ^= 0x40; // damage the header; checksum must catch it
    frames.push((1, corrupted));
    frames.push((2, build_frame(0x0102_0304, 1, 1))); // TTL expires here

    let (mut parse_drops, mut ttl_drops, mut forwarded) = (0usize, 0usize, 0usize);
    for (vn, frame) in &frames {
        // Stage 1: parse.
        let packet = match parse_frame(frame) {
            Ok(p) => p,
            Err(ParseError::TooShort | ParseError::BadChecksum) => {
                parse_drops += 1;
                continue;
            }
            Err(e) => panic!("unexpected parse error {e}"),
        };
        // Stage 2: edit (TTL) — hardware does this in parallel with the
        // lookup; order is irrelevant to the result.
        let edit = forward_edit(&packet);
        let EditOutcome::Forwarded { checksum, ttl } = edit else {
            ttl_drops += 1;
            continue;
        };
        assert_eq!(ttl, packet.ttl - 1);
        // The edited header must still verify.
        let mut edited = frame.clone();
        edited[22] = ttl;
        edited[24..26].copy_from_slice(&checksum.to_be_bytes());
        assert_eq!(internet_checksum(&edited[14..34]), 0);
        // Stage 3: lookup on the VN's engine.
        let engine = &mut engines[usize::from(*vn)];
        if let Some(done) = engine.tick(Some((*vn, packet.dst_ip))) {
            let expected = tables[usize::from(done.vnid)].lookup(done.dst);
            assert_eq!(done.next_hop, expected);
            scheduler.push(usize::from(done.vnid), done.vnid, done.dst);
        }
        forwarded += 1;
    }
    // Drain the pipelines into the scheduler, then the scheduler itself.
    for (vn, engine) in engines.iter_mut().enumerate() {
        for done in engine.drain() {
            let expected = tables[vn].lookup(done.dst);
            assert_eq!(done.next_hop, expected);
            scheduler.push(vn, done.vnid, done.dst);
        }
    }
    let mut emitted = 0usize;
    while scheduler.tick().is_some() {
        emitted += 1;
    }

    assert_eq!(parse_drops, 2, "short + corrupted frames drop at parse");
    assert_eq!(ttl_drops, 1, "the TTL=1 frame drops at edit");
    assert_eq!(forwarded, valid);
    assert_eq!(emitted, valid, "every forwarded frame leaves the egress");
    // Round robin kept per-VN egress balanced (equal input per VN).
    let per_vn = scheduler.emitted();
    assert!(per_vn.iter().all(|&n| n == per_vn[0]));
}

//! Property tests for `vr-telemetry`'s log₂ histogram bucket math.
//!
//! The histogram is the service's latency source of truth — the bench
//! percentile columns, the Prometheus `_bucket` series, and the merged
//! per-worker views all ride on three properties proved here against
//! brute-force oracles: values land in the bucket that contains them,
//! merging is lossless, and every quantile estimate equals the bucket
//! upper bound of the true (sorted-vector) order statistic.

use proptest::prelude::*;
use vr_telemetry::{bucket_bounds, bucket_index, Histogram, HistogramSnapshot, BUCKETS};

/// Strategy: latency-shaped samples. Mixes small values (timer
/// granularity), mid-range ns costs, and full-domain outliers so every
/// bucket octave is reachable.
fn arb_samples() -> impl Strategy<Value = Vec<u64>> {
    prop::collection::vec((0u64..3, any::<u64>()), 1..200).prop_map(|pairs| {
        pairs
            .into_iter()
            .map(|(kind, raw)| match kind {
                0 => raw % 64,
                1 => 1 + raw % 100_000,
                _ => raw,
            })
            .collect()
    })
}

/// Nearest-rank order statistic, the definition `quantile` approximates:
/// the `clamp(ceil(q·n), 1, n)`-th smallest sample.
fn oracle_rank(sorted: &[u64], q: f64) -> u64 {
    #[allow(clippy::cast_precision_loss, clippy::cast_sign_loss)]
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// `record(x)` increments exactly the bucket whose `[lo, hi]` range
    /// contains `x`, and no other.
    #[test]
    fn record_lands_in_the_containing_bucket(x in any::<u64>()) {
        let h = Histogram::detached();
        h.record(x);
        let snap = h.snapshot("t");
        let i = bucket_index(x);
        let (lo, hi) = bucket_bounds(i);
        prop_assert!(lo <= x && x <= hi, "bounds {lo}..={hi} must contain {x}");
        for (j, &c) in snap.buckets.iter().enumerate() {
            prop_assert_eq!(c, u64::from(j == i), "bucket {}", j);
        }
        prop_assert_eq!(snap.count, 1);
        prop_assert_eq!(snap.sum, x);
    }

    /// Merging two snapshots is indistinguishable from recording both
    /// sample streams into a single histogram — buckets, count, sum,
    /// and every derived quantile.
    #[test]
    fn merge_equals_single_stream_recording(a in arb_samples(), b in arb_samples()) {
        let ha = Histogram::detached();
        let hb = Histogram::detached();
        let oracle = Histogram::detached();
        for &v in &a {
            ha.record(v);
            oracle.record(v);
        }
        for &v in &b {
            hb.record(v);
            oracle.record(v);
        }
        let mut merged = ha.snapshot("t");
        merged.merge(&hb.snapshot("t"));
        let want = oracle.snapshot("t");
        prop_assert_eq!(&merged.buckets, &want.buckets);
        prop_assert_eq!(merged.count, want.count);
        prop_assert_eq!(merged.sum, want.sum);
        prop_assert_eq!(merged.p50, want.p50);
        prop_assert_eq!(merged.p90, want.p90);
        prop_assert_eq!(merged.p99, want.p99);
        prop_assert_eq!(merged.p999, want.p999);
    }

    /// Every quantile estimate equals the upper bound of the bucket
    /// holding the true nearest-rank order statistic of the sorted
    /// samples — i.e. the estimate is within one log₂ bucket width of
    /// the exact answer, never more.
    #[test]
    fn quantiles_match_the_sorted_vector_oracle(mut samples in arb_samples()) {
        let h = Histogram::detached();
        for &v in &samples {
            h.record(v);
        }
        let snap = h.snapshot("t");
        samples.sort_unstable();
        for q in [0.50, 0.90, 0.99, 0.999] {
            let exact = oracle_rank(&samples, q);
            let want = bucket_bounds(bucket_index(exact)).1;
            prop_assert_eq!(
                snap.quantile(q),
                want,
                "q={} exact={} samples={}",
                q,
                exact,
                samples.len()
            );
        }
    }

    /// Snapshots survive a serde JSON round trip bit-for-bit, so the
    /// exported artifacts reload into the exact recorded distribution.
    #[test]
    fn snapshot_roundtrips_through_json(samples in arb_samples()) {
        let h = Histogram::detached();
        for &v in &samples {
            h.record(v);
        }
        let snap = h.snapshot("vr_roundtrip_ns");
        let json = serde_json::to_string(&snap).expect("serialize");
        let back: HistogramSnapshot = serde_json::from_str(&json).expect("deserialize");
        prop_assert_eq!(back, snap);
    }
}

#[test]
fn bucket_layout_covers_u64_without_gaps() {
    assert_eq!(bucket_bounds(0).0, 0);
    assert_eq!(bucket_bounds(BUCKETS - 1).1, u64::MAX);
    for i in 1..BUCKETS {
        assert_eq!(
            bucket_bounds(i - 1).1 + 1,
            bucket_bounds(i).0,
            "gap between buckets {} and {}",
            i - 1,
            i
        );
    }
}

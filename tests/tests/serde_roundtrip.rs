//! Serde round-trips of every public configuration and result type the
//! harness persists — the JSON written under `results/` must deserialize
//! back into the same values (EXPERIMENTS.md reproducibility contract).

use vr_integration_tests::{family, scenario};
use vr_power::experiments::{
    fig2_series, statics_rows, table3_rows, ExperimentConfig, Fig2Point,
};
use vr_power::models::analytical_power;
use vr_power::{SchemeKind, SpeedGrade};

fn round_trip<T>(value: &T) -> T
where
    T: serde::Serialize + serde::de::DeserializeOwned,
{
    let json = serde_json::to_string(value).expect("serialize");
    serde_json::from_str(&json).expect("deserialize")
}

#[test]
fn experiment_config_round_trips() {
    let cfg = ExperimentConfig::paper();
    assert_eq!(round_trip(&cfg), cfg);
    let quick = ExperimentConfig::quick();
    assert_eq!(round_trip(&quick), quick);
}

#[test]
fn calibration_rows_round_trip() {
    // Float-bearing rows: JSON float printing may drop the last ulp, so
    // compare structurally with a tolerance far below anything reported.
    let fig2 = fig2_series();
    let back: Vec<Fig2Point> = round_trip(&fig2);
    assert_eq!(back.len(), fig2.len());
    for (a, b) in back.iter().zip(&fig2) {
        assert_eq!(a.mode, b.mode);
        assert_eq!(a.grade, b.grade);
        assert!((a.freq_mhz - b.freq_mhz).abs() < 1e-9);
        assert!((a.power_mw - b.power_mw).abs() < 1e-9);
    }
    assert_eq!(round_trip(&table3_rows()), table3_rows());
    for (a, b) in round_trip(&statics_rows()).iter().zip(statics_rows()) {
        assert_eq!(a.grade, b.grade);
        assert!((a.base_w - b.base_w).abs() < 1e-12);
        assert!((a.min_w - b.min_w).abs() < 1e-9);
        assert!((a.max_w - b.max_w).abs() < 1e-9);
    }
}

#[test]
fn power_estimate_round_trips() {
    let tables = family(3, 0.6, 1);
    let estimate = analytical_power(&scenario(
        &tables,
        SchemeKind::Separate,
        SpeedGrade::Minus2,
    ));
    let back = round_trip(&estimate);
    assert_eq!(back.scheme, estimate.scheme);
    assert_eq!(back.grade, estimate.grade);
    assert_eq!(back.k, estimate.k);
    assert!((back.total_w() - estimate.total_w()).abs() < 1e-9);
    assert!((back.static_w - estimate.static_w).abs() < 1e-9);
}

#[test]
fn routing_table_round_trips_through_json_and_dump() {
    let tables = family(2, 0.5, 2);
    for t in &tables {
        assert_eq!(round_trip(t), *t);
        let dump_back: vr_net::RoutingTable = t.to_dump().parse().unwrap();
        assert_eq!(dump_back, *t);
    }
}

#[test]
fn net_config_types_round_trip() {
    let spec = vr_net::synth::TableSpec::paper_worst_case(9);
    assert_eq!(round_trip(&spec), spec);
    let traffic = vr_net::TrafficSpec::uniform(4, 3);
    assert_eq!(round_trip(&traffic), traffic);
    let mix = vr_net::UpdateMix::default();
    assert_eq!(round_trip(&mix), mix);
}

#[test]
fn fpga_types_round_trip() {
    let device = vr_power::Device::xc6vlx760();
    assert_eq!(round_trip(&device), device);
    for grade in SpeedGrade::ALL {
        assert_eq!(round_trip(&grade), grade);
    }
    for scheme in SchemeKind::ALL {
        assert_eq!(round_trip(&scheme), scheme);
    }
    let tcam = vr_fpga::tcam::TcamSpec::partitioned(10_000, 4);
    assert_eq!(round_trip(&tcam), tcam);
}

#[test]
fn scenario_spec_round_trips() {
    use vr_power::{MergedMemoryModel, ScenarioSpec};
    let mut spec = ScenarioSpec::paper_default(SchemeKind::Merged, SpeedGrade::Minus1L);
    spec.utilization = Some(vec![0.5, 0.25, 0.25]);
    spec.merged_memory = MergedMemoryModel::PaperLiteral { alpha: 0.8 };
    assert_eq!(round_trip(&spec), spec);
}

#[test]
fn sim_report_round_trips() {
    use vr_engine::{ArrivalModel, EngineConfig, SimConfig, VirtualRouterSim};
    use vr_net::{TrafficGenerator, TrafficSpec};
    let tables = family(2, 0.5, 3);
    let cfg = SimConfig {
        organization: SchemeKind::Merged,
        stages: 16,
        engine: EngineConfig::paper_default(),
        arrivals: ArrivalModel::SharedLine { offered_load: 1.0 },
        arrival_seed: 1,
    };
    let mut sim = VirtualRouterSim::new(tables.clone(), cfg).unwrap();
    let mut traffic = TrafficGenerator::new(TrafficSpec::uniform(2, 5), &tables).unwrap();
    let report = sim.run(&mut traffic, 200).unwrap();
    let back = round_trip(&report);
    assert_eq!(back.cycles, report.cycles);
    assert_eq!(back.completed, report.completed);
    assert_eq!(back.correct, report.correct);
    assert_eq!(back.per_engine.len(), report.per_engine.len());
    assert!((back.dynamic_power_w() - report.dynamic_power_w()).abs() < 1e-9);
}

//! RCU-swap acceptance: batches in flight while a new table generation
//! is published must resolve against a single consistent snapshot — all
//! old or all new, never a torn mix — and post-swap lookups must reflect
//! the announced/withdrawn routes exactly.

use vr_engine::{LookupService, ServiceConfig, ShardedConfig, ShardedService};
use vr_net::table::{NextHop, RouteEntry};
use vr_net::{Ipv4Prefix, RouteUpdate, RoutingTable, VnId};

const K: usize = 2;
const OLD_NH: NextHop = 1;
const NEW_NH: NextHop = 2;

/// A table covering all of IPv4 with 256 /8 routes, every one pointing
/// at `nh` — so any probe resolves, and the resolved hop identifies the
/// table generation it came from.
fn uniform_table(nh: NextHop) -> RoutingTable {
    RoutingTable::from_entries(
        (0u32..256).map(|i| RouteEntry::new(Ipv4Prefix::must(i << 24, 8), nh)),
    )
}

fn service(workers: usize) -> LookupService {
    let tables = vec![uniform_table(OLD_NH); K];
    let cfg = ServiceConfig {
        workers,
        ..ServiceConfig::default()
    };
    LookupService::new(tables, cfg).expect("service")
}

fn batch(seed: u32, len: usize) -> Vec<(VnId, u32)> {
    (0..len as u32)
        .map(|i| {
            let ip = (seed.wrapping_add(i)).wrapping_mul(0x9E37_79B9);
            ((i as usize % K) as VnId, ip)
        })
        .collect()
}

/// Batches submitted before, during, and after a swap each carry a
/// generation tag; every result in a batch must match that generation's
/// next hop. A torn read (old root table, new sub-slab, or vice versa)
/// would surface as a mixed or empty result inside one batch.
#[test]
fn inflight_batches_resolve_old_or_new_never_torn() {
    let mut svc = service(4);
    let base_gen = {
        // Prime each worker once so snapshots are demonstrably shared.
        svc.submit(batch(0, 64));
        let first = svc.collect_all();
        first[0].generation
    };

    // Keep the workers busy: enqueue a wave of batches, publish the new
    // generation while they drain, enqueue another wave behind the swap.
    for wave in 0..8u32 {
        svc.submit(batch(wave * 1000, 256));
    }
    let new_gen = svc
        .publish_tables(vec![uniform_table(NEW_NH); K])
        .expect("publish");
    assert_eq!(new_gen, base_gen + 1);
    for wave in 8..16u32 {
        svc.submit(batch(wave * 1000, 256));
    }

    let done = svc.collect_all();
    assert_eq!(done.len(), 16);
    let mut seen_old = false;
    let mut seen_new = false;
    for b in &done {
        let expect = if b.generation == base_gen {
            seen_old = true;
            OLD_NH
        } else {
            assert_eq!(b.generation, new_gen, "unknown generation {}", b.generation);
            seen_new = true;
            NEW_NH
        };
        for (i, nh) in b.results.iter().enumerate() {
            assert_eq!(
                *nh,
                Some(expect),
                "batch seq {} lane {i} torn against generation {}",
                b.seq,
                b.generation
            );
        }
    }
    // The waves behind the swap can only have seen the new snapshot.
    assert!(seen_new, "post-swap batches must observe the new generation");
    // (seen_old is timing-dependent: pre-swap batches *may* all drain
    // before publish returns, but usually at least one resolves early.)
    let _ = seen_old;

    let report = svc.shutdown();
    assert!(report.swaps >= 1);
    assert!(report.generations_seen.contains(&new_gen));
}

/// The same acceptance for the sharded service: publishes travel the
/// shard queues as FIFO broadcast messages, so every sub-batch resolves
/// against exactly the snapshot queued ahead of it — all old or all
/// new, never torn — and the post-broadcast waves can only see the new
/// generation.
#[test]
fn sharded_inflight_batches_resolve_old_or_new_never_torn() {
    let tables = vec![uniform_table(OLD_NH); K];
    let cfg = ShardedConfig {
        shards: 4,
        ..ShardedConfig::default()
    };
    let mut svc = ShardedService::new(tables, cfg).expect("sharded service");

    for wave in 0..8u32 {
        svc.submit(&batch(wave * 1000, 256));
    }
    let new_gen = svc
        .publish_tables(vec![uniform_table(NEW_NH); K])
        .expect("publish");
    assert_eq!(new_gen, 1);
    for wave in 8..16u32 {
        svc.submit(&batch(wave * 1000, 256));
    }

    let done = svc.collect_all();
    let mut lanes = 0usize;
    let mut seen_new = false;
    for b in &done {
        let expect = if b.generation == 0 {
            OLD_NH
        } else {
            assert_eq!(b.generation, new_gen, "unknown generation {}", b.generation);
            seen_new = true;
            NEW_NH
        };
        assert_eq!(b.results.len(), b.origins.len());
        lanes += b.results.len();
        for (i, nh) in b.results.iter().enumerate() {
            assert_eq!(
                *nh,
                Some(expect),
                "batch seq {} lane {i} torn against generation {}",
                b.seq,
                b.generation
            );
        }
    }
    // Scatter loses no packets: every submitted lane comes back once.
    assert_eq!(lanes, 16 * 256);
    // FIFO queues make this deterministic for the sharded service: the
    // waves submitted after the broadcast *must* see the new snapshot.
    assert!(seen_new, "post-swap batches must observe the new generation");

    let report = svc.shutdown();
    assert!(report.swaps >= 1);
    assert!(report.generations_seen.contains(&new_gen));
}

/// After `apply_updates`, service lookups reflect each announce and
/// withdraw; untouched routes keep resolving.
#[test]
fn post_swap_lookups_reflect_route_updates() {
    let mut svc = service(2);
    let host = Ipv4Prefix::must(0x0A14_1E28, 32);
    let updates = [
        RouteUpdate::Announce {
            vnid: 0,
            prefix: host,
            next_hop: 77,
        },
        RouteUpdate::Withdraw {
            vnid: 1,
            prefix: Ipv4Prefix::must(0xC000_0000, 8),
        },
    ];
    svc.apply_updates(&updates).expect("apply");

    let probes: Vec<(VnId, u32)> = vec![
        (0, 0x0A14_1E28), // announced /32 on VN 0
        (1, 0x0A14_1E28), // VN 1 unchanged at that address
        (1, 0xC0FF_EE00), // withdrawn /8 on VN 1 → miss
        (0, 0xC0FF_EE00), // VN 0 keeps the /8
    ];
    let got = svc.process(&probes);
    assert_eq!(got, vec![Some(77), Some(OLD_NH), None, Some(OLD_NH)]);
    let _ = svc.shutdown();
}

/// Sharded post-swap semantics: after a broadcast republish of edited
/// tables, hash-scattered lookups reflect the announce and the
/// withdraw in input order, on every shard.
#[test]
fn sharded_post_swap_lookups_reflect_table_edits() {
    let cfg = ShardedConfig {
        shards: 3,
        ..ShardedConfig::default()
    };
    let mut svc =
        ShardedService::new(vec![uniform_table(OLD_NH); K], cfg).expect("sharded service");

    let mut edited = vec![uniform_table(OLD_NH); K];
    edited[0].insert(Ipv4Prefix::must(0x0A14_1E28, 32), 77);
    edited[1].remove(&Ipv4Prefix::must(0xC000_0000, 8));
    svc.publish_tables(edited).expect("publish");

    let probes: Vec<(VnId, u32)> = vec![
        (0, 0x0A14_1E28), // announced /32 on VN 0
        (1, 0x0A14_1E28), // VN 1 unchanged at that address
        (1, 0xC0FF_EE00), // withdrawn /8 on VN 1 → miss
        (0, 0xC0FF_EE00), // VN 0 keeps the /8
    ];
    let got = svc.process(&probes);
    assert_eq!(got, vec![Some(77), Some(OLD_NH), None, Some(OLD_NH)]);
    let _ = svc.shutdown();
}

//! Control-plane churn equivalence: replaying any generated update
//! trace through `vr-control`'s incremental path must yield tables,
//! generations and lookup results identical to the naive full-rebuild
//! oracle after every batch — including lookups interleaved mid-churn —
//! and a forced α-drop must trigger exactly one audited re-merge.

use proptest::prelude::*;
use vr_control::{ControlConfig, ControlPlane};
use vr_engine::{LookupService, ServiceConfig};
use vr_net::table::{NextHop, RouteEntry};
use vr_net::{Ipv4Prefix, RouteUpdate, RoutingTable, VnId};
use vr_telemetry::EventKind;

const K: usize = 3;

/// A prefix drawn from a deliberately small pool so announces,
/// re-announces and withdrawals collide across a trace — the
/// coalescer's last-writer-wins path and withdraw-of-absent both get
/// exercised. Lengths stay ≥ 8 so the /0 baseline route each table
/// starts with can never be withdrawn (keeping α well-defined).
fn arb_prefix() -> impl Strategy<Value = Ipv4Prefix> {
    const LENS: [u8; 6] = [8, 12, 16, 20, 24, 28];
    (0u32..48, 0usize..LENS.len())
        .prop_map(|(seed, len)| Ipv4Prefix::must(seed.wrapping_mul(0x0204_8101), LENS[len]))
}

fn arb_update() -> impl Strategy<Value = RouteUpdate> {
    (0..K as VnId, arb_prefix(), any::<NextHop>(), any::<bool>()).prop_map(
        |(vnid, prefix, next_hop, withdraw)| {
            if withdraw {
                RouteUpdate::Withdraw { vnid, prefix }
            } else {
                RouteUpdate::Announce {
                    vnid,
                    prefix,
                    next_hop,
                }
            }
        },
    )
}

/// A trace: 1–5 batches of 1–12 updates each.
fn arb_trace() -> impl Strategy<Value = Vec<Vec<RouteUpdate>>> {
    prop::collection::vec(prop::collection::vec(arb_update(), 1..12), 1..6)
}

/// Initial tables: a guaranteed /0 baseline plus up to 16 pool routes.
fn arb_tables() -> impl Strategy<Value = Vec<RoutingTable>> {
    prop::collection::vec(
        prop::collection::vec((arb_prefix(), any::<NextHop>()), 0..16),
        K..=K,
    )
    .prop_map(|per_vn| {
        per_vn
            .into_iter()
            .map(|routes| {
                let base = RouteEntry::new(Ipv4Prefix::must(0, 0), 1);
                RoutingTable::from_entries(
                    std::iter::once(base)
                        .chain(routes.into_iter().map(|(p, nh)| RouteEntry::new(p, nh))),
                )
            })
            .collect()
    })
}

/// A control plane whose re-merge trigger can never fire (α ≥ 0 always),
/// so incremental and naive replicas publish identical generations.
fn quiet_plane(tables: Vec<RoutingTable>, full_rebuild: bool) -> ControlPlane {
    let service = LookupService::new(
        tables,
        ServiceConfig {
            workers: 1,
            full_rebuild,
            ..ServiceConfig::default()
        },
    )
    .expect("service");
    let cfg = ControlConfig {
        alpha_floor: 0.0,
        alpha_rearm: 0.0,
        ..ControlConfig::default()
    };
    ControlPlane::new(service, cfg).expect("plane")
}

/// Apply one raw (uncoalesced) batch to the shadow oracle tables.
fn apply_to_shadow(shadow: &mut [RoutingTable], batch: &[RouteUpdate]) {
    for update in batch {
        match *update {
            RouteUpdate::Announce {
                vnid,
                prefix,
                next_hop,
            } => {
                shadow[vnid as usize].insert(prefix, next_hop);
            }
            RouteUpdate::Withdraw { vnid, prefix } => {
                shadow[vnid as usize].remove(&prefix);
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The headline property: after every batch of any generated trace,
    /// the incremental plane, the naive full-rebuild plane and the
    /// linear-scan shadow tables agree on generation, table contents and
    /// every mid-churn lookup result.
    #[test]
    fn incremental_replay_matches_naive_oracle_at_every_generation(
        tables in arb_tables(),
        trace in arb_trace(),
        extra_probes in prop::collection::vec(any::<u32>(), 8),
    ) {
        let mut shadow = tables.clone();
        let mut inc = quiet_plane(tables.clone(), false);
        let mut naive = quiet_plane(tables, true);

        for batch in &trace {
            let inc_out = inc.apply_batch(batch).expect("incremental batch");
            let naive_out = naive.apply_batch(batch).expect("naive batch");
            apply_to_shadow(&mut shadow, batch);

            prop_assert_eq!(inc_out.generation, naive_out.generation);
            prop_assert!(!inc_out.remerged && !naive_out.remerged);
            prop_assert!((0.0..=1.0).contains(&inc_out.alpha), "alpha {}", inc_out.alpha);
            prop_assert_eq!(inc.service().tables(), shadow.as_slice());
            prop_assert_eq!(naive.service().tables(), shadow.as_slice());

            // Interleaved mid-churn lookups: probe every prefix the batch
            // touched plus arbitrary addresses, on every VN.
            let mut probes: Vec<(VnId, u32)> = Vec::new();
            for update in batch {
                let (vnid, addr) = match *update {
                    RouteUpdate::Announce { vnid, prefix, .. }
                    | RouteUpdate::Withdraw { vnid, prefix } => (vnid, prefix.addr()),
                };
                probes.push((vnid, addr | 1));
            }
            for &addr in &extra_probes {
                for vn in 0..K as VnId {
                    probes.push((vn, addr));
                }
            }
            let inc_got = inc.service_mut().process(&probes);
            let naive_got = naive.service_mut().process(&probes);
            for (i, &(vn, addr)) in probes.iter().enumerate() {
                let want = shadow[vn as usize].lookup(addr);
                prop_assert_eq!(inc_got[i], want, "vn {} addr {:#010x}", vn, addr);
                prop_assert_eq!(naive_got[i], want, "vn {} addr {:#010x}", vn, addr);
            }
        }

        let inc_report = inc.shutdown();
        let naive_report = naive.shutdown();
        prop_assert_eq!(inc_report.full_rebuilds, 0);
        prop_assert_eq!(naive_report.incremental_publishes, 0);
    }
}

/// Deterministic acceptance: a trace that collapses α below the floor
/// triggers exactly one audited re-merge republish — one
/// `RemergeTriggered` event, one generation bump beyond the batch's
/// own, and no re-fire while disarmed. `cargo test` runs debug builds,
/// so the engine's audit gate vets every publish on this path.
#[test]
fn forced_alpha_drop_triggers_exactly_one_audited_remerge() {
    // Two identical tables merge perfectly (α ≈ 1); withdrawing every
    // route from VN 1 leaves nothing shared and α collapses.
    let shared: Vec<RouteEntry> = (0u32..48)
        .map(|i| RouteEntry::new(Ipv4Prefix::must(i << 16, 16), (i % 7 + 1) as NextHop))
        .collect();
    let tables = vec![
        RoutingTable::from_entries(shared.iter().cloned()),
        RoutingTable::from_entries(shared.iter().cloned()),
    ];
    let service = LookupService::new(
        tables.clone(),
        ServiceConfig {
            workers: 1,
            ..ServiceConfig::default()
        },
    )
    .expect("service");
    let cfg = ControlConfig {
        alpha_floor: 0.5,
        alpha_rearm: 0.9,
        cooldown_batches: 1,
        ..ControlConfig::default()
    };
    let mut plane = ControlPlane::new(service, cfg).expect("plane");
    let alpha_before = plane.service_mut().alpha().expect("alpha");
    assert!(alpha_before > 0.9, "identical pair must merge well, got {alpha_before}");
    let generation_before = plane.service().generation();

    let withdrawals: Vec<RouteUpdate> = tables[1]
        .prefixes()
        .map(|prefix| RouteUpdate::Withdraw { vnid: 1, prefix })
        .collect();
    let drop_outcome = plane.apply_batch(&withdrawals).expect("drop batch");
    assert!(drop_outcome.remerged, "α collapse must trigger the re-merge");
    assert!(drop_outcome.alpha < 0.5);
    // One bump for the batch publish, one for the re-merge republish.
    assert_eq!(plane.service().generation(), generation_before + 2);
    assert_eq!(plane.remerges(), 1);

    // α stays on the floor, trigger is disarmed: further churn must not
    // re-fire, and lookups keep matching the surviving table.
    for i in 0..3u32 {
        let outcome = plane
            .apply_batch(&[RouteUpdate::Announce {
                vnid: 0,
                prefix: Ipv4Prefix::must(0xC633_6400 | (i << 8), 24),
                next_hop: 9,
            }])
            .expect("quiet batch");
        assert!(!outcome.remerged, "disarmed trigger fired again");
    }
    assert_eq!(plane.remerges(), 1);
    let probe = vec![(0 as VnId, 0x0003_0001_u32), (1 as VnId, 0x0003_0001_u32)];
    let got = plane.service_mut().process(&probe);
    assert_eq!(got[0], Some(4), "VN 0 keeps its /16 routes");
    assert_eq!(got[1], None, "VN 1 was fully withdrawn");

    let snapshot = plane
        .service()
        .telemetry_snapshot()
        .expect("telemetry on by default");
    let remerge_events = snapshot
        .events
        .events
        .iter()
        .filter(|e| matches!(e.kind, EventKind::RemergeTriggered { .. }))
        .count();
    assert_eq!(remerge_events, 1, "exactly one RemergeTriggered event");
}

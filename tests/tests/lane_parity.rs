//! Property-based parity for the lane-interleaved stepper: for every
//! lane width, `lookup_lanes_vn` must be element-wise identical to the
//! scalar `JumpTrie::lookup_vn` oracle on arbitrary tables and key
//! sets — including the refill edge cases (batches that are not a
//! multiple of the lane width, all-miss batches, single-key batches)
//! where retirement/compaction bugs would hide. The scalar walk is
//! itself proven against the linear-scan oracle in
//! `oracle_equivalence.rs`, so lane == scalar closes the loop.

use proptest::prelude::*;
use vr_net::table::{NextHop, RouteEntry};
use vr_net::{Ipv4Prefix, RoutingTable};
use vr_trie::{lane, JumpTrie, MergedTrie};

/// Strategy: an arbitrary routing table of up to `max` routes. `min_len`
/// = 1 excludes the /0 default route, so both "has default" and "no
/// default route" table shapes are exercised.
fn arb_table(max: usize, min_len: u8) -> impl Strategy<Value = RoutingTable> {
    prop::collection::vec((any::<u32>(), min_len..=32, any::<NextHop>()), 0..max).prop_map(
        |routes| {
            RoutingTable::from_entries(
                routes
                    .into_iter()
                    .map(|(addr, len, nh)| RouteEntry::new(Ipv4Prefix::must(addr, len), nh)),
            )
        },
    )
}

/// Strategy: a batch of 0..70 destinations — deliberately spanning both
/// sides of every lane width (shorter than 8, between 8 and 16, several
/// full groups plus a ragged tail) so refill and compaction both fire.
fn arb_batch() -> impl Strategy<Value = Vec<u32>> {
    prop::collection::vec(any::<u32>(), 0..70)
}

/// Asserts lane == scalar for widths 1 (degenerate), 8, and 16 on one
/// (trie, vnid, batch) instance. `out` is pre-poisoned so a lane that
/// forgets to write a miss is caught. Plain panics — proptest reports
/// them as failures and shrinks the same way.
fn assert_lane_parity(trie: &JumpTrie, vnid: usize, batch: &[u32]) {
    fn check<const W: usize>(trie: &JumpTrie, vnid: usize, batch: &[u32]) {
        let mut out = vec![Some(0xEE); batch.len()];
        lane::lookup_lanes_vn::<W>(trie, vnid, batch, &mut out);
        for (i, &ip) in batch.iter().enumerate() {
            assert_eq!(
                out[i],
                trie.lookup_vn(vnid, ip),
                "W={W} vn {vnid} ip {ip:#010x}"
            );
        }
    }
    check::<1>(trie, vnid, batch);
    check::<8>(trie, vnid, batch);
    check::<16>(trie, vnid, batch);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn lane_matches_scalar_jump_oracle(
        table in arb_table(64, 0), // default routes allowed
        batch in arb_batch(),
    ) {
        let jump = JumpTrie::from_table(&table);
        assert_lane_parity(&jump, 0, &batch);
        // And against the table oracle, transitively.
        let mut out = vec![None; batch.len()];
        jump.lookup_batch(&batch, &mut out);
        for (i, &ip) in batch.iter().enumerate() {
            prop_assert_eq!(out[i], table.lookup(ip), "default-width ip {:#010x}", ip);
        }
    }

    #[test]
    fn lane_matches_scalar_without_default_route(
        table in arb_table(64, 1), // no default route — misses stay misses
        batch in arb_batch(),
    ) {
        let jump = JumpTrie::from_table(&table);
        assert_lane_parity(&jump, 0, &batch);
    }

    #[test]
    fn lane_matches_scalar_per_merged_vn(
        tables in prop::collection::vec(arb_table(32, 0), 1..5),
        batch in arb_batch(),
    ) {
        let merged = MergedTrie::from_tables(&tables).unwrap();
        let jump = JumpTrie::from_merged(&merged.leaf_pushed());
        for vnid in 0..tables.len() {
            assert_lane_parity(&jump, vnid, &batch);
        }
    }

    #[test]
    fn refill_edges_single_key_and_ragged_tails(
        table in arb_table(48, 0),
        key in any::<u32>(),
    ) {
        let jump = JumpTrie::from_table(&table);
        // Single-key batch: the group never fills even one lane row.
        assert_lane_parity(&jump, 0, &[key]);
        // Ragged tails around each width boundary, all probing the same
        // key region so divergence comes from depth, not coverage.
        for len in [7usize, 9, 15, 17, 31, 33] {
            let batch: Vec<u32> = (0..len as u32).map(|i| key.wrapping_add(i * 0x0101)).collect();
            assert_lane_parity(&jump, 0, &batch);
        }
    }
}

/// All-miss batches: a sparse table with no default route and probes
/// aimed outside every prefix. Every lane must overwrite its poisoned
/// output slot with `None`, across ragged lengths.
#[test]
fn all_miss_batches_resolve_to_none() {
    let table = RoutingTable::from_entries([
        RouteEntry::new(Ipv4Prefix::must(0x0A00_0000, 8), 1),
        RouteEntry::new(Ipv4Prefix::must(0x0A01_0100, 24), 2),
    ]);
    let jump = JumpTrie::from_table(&table);
    for len in [1usize, 5, 8, 13, 16, 40] {
        let batch: Vec<u32> = (0..len as u32).map(|i| 0xC000_0000 | (i * 0x11)).collect();
        let mut out = vec![Some(7); len];
        lane::lookup_lanes_vn::<8>(&jump, 0, &batch, &mut out);
        assert!(out.iter().all(Option::is_none), "W=8 len {len}");
        out.fill(Some(7));
        lane::lookup_lanes_vn::<16>(&jump, 0, &batch, &mut out);
        assert!(out.iter().all(Option::is_none), "W=16 len {len}");
    }
}

/// Deterministic paper-scale anchor: the default batch path (which now
/// routes through the lane stepper) and the explicit widths agree with
/// the scalar walk on a dense probe sweep.
#[test]
fn paper_scale_lane_parity() {
    let table = vr_net::synth::TableSpec::paper_worst_case(7)
        .generate()
        .unwrap();
    let jump = JumpTrie::from_table(&table);
    let batch: Vec<u32> = table
        .prefixes()
        .flat_map(|p| [p.addr(), p.addr() | 0x3F, p.addr().wrapping_sub(1)])
        .collect();
    let mut dflt = vec![None; batch.len()];
    jump.lookup_batch(&batch, &mut dflt);
    let mut w8 = vec![None; batch.len()];
    lane::lookup_lanes::<8>(&jump, &batch, &mut w8);
    let mut w16 = vec![None; batch.len()];
    lane::lookup_lanes::<16>(&jump, &batch, &mut w16);
    for (i, &ip) in batch.iter().enumerate() {
        let expect = jump.lookup(ip);
        assert_eq!(expect, table.lookup(ip), "scalar oracle ip {ip:#010x}");
        assert_eq!(dflt[i], expect, "default batch ip {ip:#010x}");
        assert_eq!(w8[i], expect, "W=8 ip {ip:#010x}");
        assert_eq!(w16[i], expect, "W=16 ip {ip:#010x}");
    }
}

//! QoS isolation on the merged engine: without per-VN policing an
//! aggressive network crowds the time-shared pipeline; a token bucket at
//! the distributor restores each network's contracted share (§I's
//! transparency requirement).
//!
//! ```text
//! cargo run --release -p vr-bench --example qos_isolation
//! ```

use std::collections::VecDeque;
use vr_engine::police::QosPolicer;
use vr_engine::{EngineConfig, PipelineEngine};
use vr_net::synth::FamilySpec;
use vr_net::VnId;
use vr_trie::merge::merge_tables;
use vr_trie::pipeline_map::{MemoryLayout, PipelineProfile, PAPER_PIPELINE_STAGES};

const CYCLES: u64 = 20_000;

fn run(policed: bool) -> [f64; 2] {
    let tables = FamilySpec {
        k: 2,
        prefixes_per_table: 600,
        shared_fraction: 0.5,
        seed: 5,
        distribution: vr_net::synth::PrefixLenDistribution::edge_default(),
        next_hops: 8,
    }
    .generate()
    .expect("family");
    let (_, pushed) = merge_tables(&tables).expect("merge");
    let profile =
        PipelineProfile::for_merged(&pushed, PAPER_PIPELINE_STAGES, MemoryLayout::default())
            .expect("profile");
    let mut engine =
        PipelineEngine::new_merged(pushed, &profile, EngineConfig::paper_default()).expect("engine");
    let mut policer = QosPolicer::uniform(2, 8.0).expect("policer");

    let probes: [u32; 2] = [
        tables[0].prefixes().next().unwrap().addr() | 1,
        tables[1].prefixes().next().unwrap().addr() | 1,
    ];
    let mut queue: VecDeque<(VnId, u32)> = VecDeque::new();
    let mut completed = [0u64; 2];
    for cycle in 0..CYCLES {
        // Aggressor (VN 0): 90 % of the line. Victim (VN 1): its
        // contracted 45 %.
        let mut offer = |vnid: VnId, queue: &mut VecDeque<(VnId, u32)>| {
            let admit = if policed {
                policer.offer(vnid, cycle)
            } else {
                // Unpoliced shared ingress: bounded queue, tail drop.
                queue.len() < 16
            };
            if admit {
                queue.push_back((vnid, probes[usize::from(vnid)]));
            }
        };
        if cycle % 10 != 0 {
            offer(0, &mut queue);
        }
        if cycle % 20 < 9 {
            offer(1, &mut queue);
        }
        if let Some(done) = engine.tick(queue.pop_front()) {
            completed[usize::from(done.vnid)] += 1;
        }
    }
    for done in engine.drain() {
        completed[usize::from(done.vnid)] += 1;
    }
    [
        completed[0] as f64 / CYCLES as f64,
        completed[1] as f64 / CYCLES as f64,
    ]
}

fn main() {
    println!("Merged engine, 2 networks contracted 50/50 of the line rate.");
    println!("Aggressor offers 0.90; victim offers its contracted 0.45.\n");
    let unpoliced = run(false);
    let policed = run(true);
    println!("{:<12} {:>16} {:>16}", "", "aggressor share", "victim share");
    println!(
        "{:<12} {:>16.3} {:>16.3}",
        "unpoliced", unpoliced[0], unpoliced[1]
    );
    println!(
        "{:<12} {:>16.3} {:>16.3}",
        "policed", policed[0], policed[1]
    );
    println!(
        "\nWithout policing the aggressor steals the victim's cycles; the\n\
         token bucket clips it to its contract and the victim's {:.0}% offer\n\
         goes through untouched.",
        0.45 * 100.0
    );
    assert!(policed[1] > unpoliced[1], "policing must help the victim");
}

//! Quickstart: estimate the power of the three router organizations for a
//! small virtual-network workload.
//!
//! ```text
//! cargo run --release -p vr-bench --example quickstart
//! ```

use vr_net::synth::FamilySpec;
use vr_power::experiments::quick_estimate;
use vr_power::{SchemeKind, SpeedGrade};

fn main() {
    // Four virtual networks, 1000-prefix edge tables, 60 % shared routes.
    let tables = FamilySpec {
        k: 4,
        prefixes_per_table: 1000,
        shared_fraction: 0.6,
        seed: 42,
        distribution: vr_net::synth::PrefixLenDistribution::edge_default(),
        next_hops: 16,
    }
    .generate()
    .expect("family generation");

    println!("Workload: K = 4 virtual networks, 1000 prefixes each\n");
    println!(
        "{:<26} {:>10} {:>10} {:>10} {:>10}",
        "Scheme", "static W", "logic W", "memory W", "total W"
    );
    for scheme in SchemeKind::ALL {
        for grade in SpeedGrade::ALL {
            let e = quick_estimate(&tables, scheme, grade).expect("estimate");
            println!(
                "{:<26} {:>10.3} {:>10.4} {:>10.4} {:>10.3}",
                format!("{scheme} ({grade})"),
                e.static_w,
                e.logic_w,
                e.memory_w,
                e.total_w()
            );
        }
    }
    println!(
        "\nVirtualizing 4 networks onto one device shares the static power\n\
         that dominates the budget — the paper's core observation."
    );
}

//! Capacity planning: how many virtual networks fit on one device?
//!
//! The separate scheme exhausts I/O pins (the paper stops at K = 15); the
//! merged scheme trades clock speed and BRAM instead. This example walks
//! the device limits for both and prints where each scheme stops being
//! viable.
//!
//! ```text
//! cargo run --release -p vr-bench --example capacity_planning
//! ```

use vr_net::synth::FamilySpec;
use vr_power::efficiency::efficiency_point;
use vr_power::{Device, Scenario, ScenarioSpec, SchemeKind, SpeedGrade};

fn tables_for(k: usize) -> Vec<vr_net::RoutingTable> {
    FamilySpec {
        k,
        prefixes_per_table: 800,
        shared_fraction: 0.6,
        seed: 3,
        distribution: vr_net::synth::PrefixLenDistribution::edge_default(),
        next_hops: 16,
    }
    .generate()
    .expect("family")
}

fn main() {
    let device = Device::xc6vlx760();
    println!(
        "Device: {} ({} I/O pins, {} × 36 Kb BRAM blocks)\n",
        device.name, device.io_pins, device.bram_36k_blocks
    );

    // Separate: find the largest feasible K.
    let mut max_separate = 0;
    for k in 1..=20 {
        let result = Scenario::build(
            &tables_for(k),
            ScenarioSpec::paper_default(SchemeKind::Separate, SpeedGrade::Minus2),
            device.clone(),
        );
        match result {
            Ok(_) => max_separate = k,
            Err(e) => {
                println!("separate: K = {k} does not fit — {e}");
                break;
            }
        }
    }
    println!("separate: largest feasible K = {max_separate} (paper: 15, pin-bound)\n");

    // Merged: feasible much further, but watch the clock collapse.
    println!(
        "{:>3} {:>12} {:>16} {:>10}",
        "K", "clock (MHz)", "capacity (Gbps)", "mW/Gbps"
    );
    for k in [2usize, 4, 8, 16, 24] {
        let scenario = Scenario::build(
            &tables_for(k),
            ScenarioSpec::paper_default(SchemeKind::Merged, SpeedGrade::Minus2),
            device.clone(),
        )
        .expect("merged scenario");
        let point = efficiency_point(&scenario);
        println!(
            "{k:>3} {:>12.1} {:>16.1} {:>10.2}",
            scenario.freq_mhz(),
            point.capacity_gbps,
            point.mw_per_gbps
        );
    }
    println!(
        "\nmerged scales past the pin limit but pays in throughput: the engine\n\
         is time-shared and its clock degrades with K (§IV-C, §VI-B)."
    );
}

//! Route-update replay and the stale-data-plane window (paper ref. [6]):
//! stream BGP-like updates against a running virtualized router, watch
//! the snapshot hardware misforward until the write-back, then rebuild.
//!
//! ```text
//! cargo run --release -p vr-bench --example update_replay
//! ```

use vr_engine::{ArrivalModel, EngineConfig, SimConfig, VirtualRouterSim};
use vr_net::synth::FamilySpec;
use vr_net::update::{parse_update_trace, to_update_trace};
use vr_net::{TrafficGenerator, TrafficSpec, UpdateMix, UpdateStream};
use vr_power::SchemeKind;

fn main() {
    let k = 3usize;
    let tables = FamilySpec {
        k,
        prefixes_per_table: 800,
        shared_fraction: 0.5,
        seed: 21,
        distribution: vr_net::synth::PrefixLenDistribution::edge_default(),
        next_hops: 16,
    }
    .generate()
    .expect("family");

    // Produce an update trace the way an operator would export one, then
    // parse it back — the replay path real deployments would use.
    let mut stream =
        UpdateStream::new(tables.clone(), UpdateMix::default(), 16, 7).expect("stream");
    let trace_text = to_update_trace(&stream.batch(1500));
    let updates = parse_update_trace(&trace_text).expect("parse trace");
    println!(
        "replaying {} updates ({} bytes of trace) against a {k}-network separate router\n",
        updates.len(),
        trace_text.len()
    );

    let cfg = SimConfig {
        organization: SchemeKind::Separate,
        stages: 28,
        engine: EngineConfig::paper_default(),
        arrivals: ArrivalModel::SharedLine { offered_load: 1.0 },
        arrival_seed: 3,
    };
    let mut sim = VirtualRouterSim::new(tables.clone(), cfg).expect("sim");
    let mut traffic = TrafficGenerator::new(TrafficSpec::uniform(k, 9), &tables).expect("traffic");

    let before = sim.run(&mut traffic, 2000).expect("run");
    println!(
        "before updates : {} lookups, {} mismatches",
        before.completed, before.mismatches
    );

    for update in &updates {
        sim.apply_update(update);
    }
    let stale = sim.run(&mut traffic, 2000).expect("run");
    println!(
        "stale hardware : {} lookups, {} mismatches ({:.1}% of traffic hits moved routes)",
        stale.completed,
        stale.mismatches,
        stale.mismatches as f64 / stale.completed as f64 * 100.0
    );

    sim.rebuild_engines().expect("rebuild");
    let after = sim.run(&mut traffic, 2000).expect("run");
    println!(
        "after rebuild  : {} lookups, {} mismatches",
        after.completed, after.mismatches
    );
    assert_eq!(after.mismatches, 0);
    println!(
        "\nThe staleness window is why ref. [6] adds on-the-fly incremental\n\
         updates; `vr_trie::MergedTrie::insert/remove` provides exactly that\n\
         for the merged organization."
    );
}

//! Low-power FPGA exploration (§VI): compare the -2 and -1L speed grades
//! across the virtualized schemes — total watts, throughput, and the
//! mW/Gbps efficiency that turns out nearly grade-independent.
//!
//! ```text
//! cargo run --release -p vr-bench --example low_power_exploration
//! ```

use vr_net::synth::FamilySpec;
use vr_power::efficiency::efficiency_point;
use vr_power::{Device, Scenario, ScenarioSpec, SchemeKind, SpeedGrade};

fn main() {
    let tables = FamilySpec {
        k: 6,
        prefixes_per_table: 1200,
        shared_fraction: 0.7,
        seed: 11,
        distribution: vr_net::synth::PrefixLenDistribution::edge_default(),
        next_hops: 16,
    }
    .generate()
    .expect("family");

    println!("K = 6 virtual networks; comparing speed grades\n");
    println!(
        "{:<24} {:>7} {:>12} {:>16} {:>10}",
        "Scheme", "grade", "power (W)", "capacity (Gbps)", "mW/Gbps"
    );
    for scheme in [SchemeKind::Separate, SchemeKind::Merged] {
        let mut per_grade = Vec::new();
        for grade in SpeedGrade::ALL {
            let scenario = Scenario::build(
                &tables,
                ScenarioSpec::paper_default(scheme, grade),
                Device::xc6vlx760(),
            )
            .expect("scenario");
            let point = efficiency_point(&scenario);
            println!(
                "{:<24} {:>7} {:>12.3} {:>16.1} {:>10.2}",
                scheme.to_string(),
                grade.to_string(),
                point.power_w,
                point.capacity_gbps,
                point.mw_per_gbps
            );
            per_grade.push(point);
        }
        let power_saving = 1.0 - per_grade[1].power_w / per_grade[0].power_w;
        let eff_gap =
            (per_grade[1].mw_per_gbps - per_grade[0].mw_per_gbps) / per_grade[0].mw_per_gbps;
        println!(
            "  → -1L saves {:.0}% power; efficiency differs by only {:.1}%\n",
            power_saving * 100.0,
            eff_gap.abs() * 100.0
        );
    }
    println!(
        "Low-power grades suit deployments where absolute throughput is not\n\
         the bottleneck: same energy per bit, ~30% lower power draw (§VI-B)."
    );
}

//! Edge-network consolidation: an ISP replaces 8 dedicated edge routers
//! (each serving one customer network at low duty cycle) with a single
//! virtualized FPGA router, and wants the power story — the paper's §I
//! motivating scenario, end to end.
//!
//! ```text
//! cargo run --release -p vr-bench --example edge_consolidation
//! ```

use vr_fpga::par::ParSimulator;
use vr_net::synth::FamilySpec;
use vr_power::models::{analytical_power, experimental_power_w};
use vr_power::validate::behavioral_check;
use vr_power::{Device, Scenario, ScenarioSpec, SchemeKind, SpeedGrade};

fn main() {
    const K: usize = 8;
    let tables = FamilySpec {
        k: K,
        prefixes_per_table: 1500,
        shared_fraction: 0.5,
        seed: 7,
        distribution: vr_net::synth::PrefixLenDistribution::edge_default(),
        next_hops: 16,
    }
    .generate()
    .expect("family");

    let par = ParSimulator::default();
    println!("Consolidating {K} edge routers onto one XC6VLX760 (-2 grade)\n");

    let mut before_after = Vec::new();
    for scheme in [SchemeKind::NonVirtualized, SchemeKind::Separate] {
        let scenario = Scenario::build(
            &tables,
            ScenarioSpec::paper_default(scheme, SpeedGrade::Minus2),
            Device::xc6vlx760(),
        )
        .expect("scenario");
        let model = analytical_power(&scenario);
        let measured = experimental_power_w(&scenario, &par);
        println!(
            "{scheme}: model {:.2} W, post-PAR {:.2} W, capacity {:.0} Gbps",
            model.total_w(),
            measured,
            scenario.capacity_gbps()
        );
        before_after.push(model.total_w());

        // Prove the consolidated router still forwards correctly.
        let check = behavioral_check(&tables, &scenario, 2000, 99).expect("behavioral check");
        assert!(check.fully_correct, "forwarding must be exact");
        println!(
            "  cycle-level check: {} lookups, all correct, simulated dynamic {:.1} mW",
            check.completed,
            check.simulated_dynamic_w * 1e3
        );
    }

    let saving = before_after[0] - before_after[1];
    println!(
        "\nConsolidation saves {saving:.1} W ({:.0} %) — proportional to K, as the paper's\n\
         abstract promises: the K−1 redundant devices' static power disappears.",
        saving / before_after[0] * 100.0
    );
}

//! Offline stand-in for the `criterion` crate.
//!
//! Implements the `criterion_group!` / `criterion_main!` macro surface and
//! the `Criterion` / `BenchmarkGroup` / `Bencher` API with a simple
//! wall-clock measurement loop: a short calibration pass sizes the
//! iteration count to a fixed measurement budget, then the mean time per
//! iteration is reported (with throughput when configured). There is no
//! statistical analysis or HTML report — results go to stdout, one line
//! per benchmark.
//!
//! The measurement budget can be tightened for smoke runs with
//! `CRITERION_QUICK=1` or `VR_QUICK=1` in the environment.

#![forbid(unsafe_code)]

pub use std::hint::black_box;
use std::time::{Duration, Instant};

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// How much setup output to batch per timing run; the stand-in re-runs
/// setup per iteration in all cases, so the variants only document intent.
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// A benchmark identifier: function name plus an optional parameter label.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        Self {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    #[must_use]
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

/// Anything usable as a benchmark identifier (`&str`, `String`,
/// [`BenchmarkId`]).
pub trait IntoBenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId {
        self
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId {
            id: self.to_string(),
        }
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId { id: self }
    }
}

impl IntoBenchmarkId for &String {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId { id: self.clone() }
    }
}

fn measurement_budget() -> Duration {
    let quick = ["CRITERION_QUICK", "VR_QUICK"]
        .iter()
        .any(|var| std::env::var(var).is_ok_and(|v| v == "1"));
    if quick {
        Duration::from_millis(20)
    } else {
        Duration::from_millis(300)
    }
}

/// Runs timing loops for a single benchmark.
pub struct Bencher {
    /// Mean wall-clock time per iteration of the last `iter*` call.
    mean: Duration,
    budget: Duration,
}

impl Bencher {
    /// Times `routine` repeatedly and records the mean per-iteration cost.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Calibration: find how many iterations fit the budget.
        let start = Instant::now();
        black_box(routine());
        let once = start.elapsed().max(Duration::from_nanos(1));
        let iterations = (self.budget.as_nanos() / once.as_nanos()).clamp(1, 10_000_000) as u64;

        let start = Instant::now();
        for _ in 0..iterations {
            black_box(routine());
        }
        self.mean = start.elapsed() / u32::try_from(iterations).unwrap_or(u32::MAX);
    }

    /// Times `routine` on fresh input from `setup`, excluding setup cost.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let input = setup();
        let start = Instant::now();
        black_box(routine(input));
        let once = start.elapsed().max(Duration::from_nanos(1));
        let iterations = (self.budget.as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as u64;

        let mut total = Duration::ZERO;
        for _ in 0..iterations {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
        }
        self.mean = total / u32::try_from(iterations).unwrap_or(u32::MAX);
    }
}

fn report(group: Option<&str>, id: &BenchmarkId, mean: Duration, throughput: Option<Throughput>) {
    let full = match group {
        Some(g) => format!("{g}/{}", id.id),
        None => id.id.clone(),
    };
    let per_iter = mean.as_secs_f64();
    let rate = throughput.map(|t| match t {
        Throughput::Elements(n) => format!(", {:.3e} elem/s", n as f64 / per_iter),
        Throughput::Bytes(n) => format!(", {:.3e} B/s", n as f64 / per_iter),
    });
    println!(
        "bench: {full:<48} {:>12.1} ns/iter{}",
        per_iter * 1e9,
        rate.unwrap_or_default()
    );
}

fn run_bench(
    group: Option<&str>,
    id: &BenchmarkId,
    throughput: Option<Throughput>,
    f: impl FnOnce(&mut Bencher),
) {
    let mut bencher = Bencher {
        mean: Duration::ZERO,
        budget: measurement_budget(),
    };
    f(&mut bencher);
    report(group, id, bencher.mean, throughput);
}

/// A named collection of related benchmarks sharing a throughput setting.
pub struct BenchmarkGroup<'a> {
    name: String,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn throughput(&mut self, throughput: Throughput) {
        self.throughput = Some(throughput);
    }

    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher),
    {
        run_bench(
            Some(&self.name),
            &id.into_benchmark_id(),
            self.throughput,
            f,
        );
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        f: F,
    ) -> &mut Self
    where
        F: FnOnce(&mut Bencher, &I),
    {
        run_bench(Some(&self.name), &id, self.throughput, |b| f(b, input));
        self
    }

    pub fn finish(self) {}
}

/// The benchmark harness entry point.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    #[must_use]
    pub fn configure_from_args(self) -> Self {
        self
    }

    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher),
    {
        run_bench(None, &id.into_benchmark_id(), None, f);
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            throughput: None,
            _criterion: self,
        }
    }

    pub fn final_summary(&mut self) {}
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_surface_runs() {
        std::env::set_var("CRITERION_QUICK", "1");
        let mut c = Criterion::default();
        c.bench_function("trivial", |b| b.iter(|| black_box(1 + 1)));
        let mut group = c.benchmark_group("group");
        group.throughput(Throughput::Elements(10));
        group.bench_with_input(BenchmarkId::new("with_input", 3), &3u32, |b, &x| {
            b.iter(|| black_box(x * 2))
        });
        group.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 16], |v| v.len(), BatchSize::SmallInput)
        });
        group.finish();
    }
}

//! Offline stand-in for the `parking_lot` crate, backed by `std::sync`.
//!
//! This workspace vendors the handful of external crates it uses so that the
//! build never touches a registry. Only the API surface the workspace
//! actually exercises is provided: `Mutex` / `RwLock` with the
//! poison-free locking discipline parking_lot is known for (a poisoned std
//! lock is transparently recovered, matching parking_lot's behaviour of not
//! poisoning at all).

#![forbid(unsafe_code)]

use std::sync::{MutexGuard as StdMutexGuard, RwLockReadGuard, RwLockWriteGuard};

pub type MutexGuard<'a, T> = StdMutexGuard<'a, T>;

/// A mutual-exclusion lock that never poisons.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    #[must_use]
    pub const fn new(value: T) -> Self {
        Self {
            inner: std::sync::Mutex::new(value),
        }
    }

    #[must_use]
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(value) => value,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, recovering from poisoning like parking_lot does.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.inner.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(value) => value,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

/// A reader-writer lock that never poisons.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    #[must_use]
    pub const fn new(value: T) -> Self {
        Self {
            inner: std::sync::RwLock::new(value),
        }
    }

    #[must_use]
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(value) => value,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.inner.read() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.inner.write() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_lock_and_into_inner() {
        let m = Mutex::new(Vec::new());
        m.lock().push(1);
        m.lock().extend([2, 3]);
        assert_eq!(m.into_inner(), vec![1, 2, 3]);
    }

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(7u32);
        assert_eq!(*l.read(), 7);
        *l.write() = 9;
        assert_eq!(l.into_inner(), 9);
    }
}

//! Offline stand-in for `serde_derive`.
//!
//! Generates `Serialize` / `Deserialize` impls against the vendored
//! Value-based `serde` without depending on `syn`/`quote`: the item is
//! parsed with a small hand-written token walker and the impl is emitted as
//! a string and re-parsed. Supported shapes — which is exactly what this
//! workspace uses — are structs with named fields, one-field (newtype)
//! tuple structs, unit structs, and enums whose variants are unit or
//! struct-like. Anything else produces a `compile_error!` naming the
//! unsupported construct.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// The derivable shape of an item.
enum Item {
    NamedStruct { name: String, fields: Vec<String> },
    NewtypeStruct { name: String },
    UnitStruct { name: String },
    Enum { name: String, variants: Vec<Variant> },
}

struct Variant {
    name: String,
    /// `None` for unit variants, field names for struct variants.
    fields: Option<Vec<String>>,
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({:?});", msg).parse().unwrap()
}

/// Cursor over a flat token-tree list.
struct Cursor {
    tokens: Vec<TokenTree>,
    pos: usize,
}

impl Cursor {
    fn new(stream: TokenStream) -> Self {
        Self {
            tokens: stream.into_iter().collect(),
            pos: 0,
        }
    }

    fn peek(&self) -> Option<&TokenTree> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<TokenTree> {
        let tt = self.tokens.get(self.pos).cloned();
        if tt.is_some() {
            self.pos += 1;
        }
        tt
    }

    /// Skips `#[...]` attributes (including doc comments, which reach the
    /// macro in attribute form).
    fn skip_attributes(&mut self) {
        while let Some(TokenTree::Punct(p)) = self.peek() {
            if p.as_char() != '#' {
                break;
            }
            self.pos += 1; // '#'
            if let Some(TokenTree::Group(g)) = self.peek() {
                if g.delimiter() == Delimiter::Bracket {
                    self.pos += 1;
                    continue;
                }
            }
            break;
        }
    }

    /// Skips `pub` / `pub(crate)` / `pub(in ...)` visibility.
    fn skip_visibility(&mut self) {
        if let Some(TokenTree::Ident(id)) = self.peek() {
            if id.to_string() == "pub" {
                self.pos += 1;
                if let Some(TokenTree::Group(g)) = self.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        self.pos += 1;
                    }
                }
            }
        }
    }

    fn expect_ident(&mut self) -> Result<String, String> {
        match self.next() {
            Some(TokenTree::Ident(id)) => Ok(id.to_string()),
            other => Err(format!("expected identifier, found {other:?}")),
        }
    }

    /// Consumes tokens of a type expression up to a top-level `,`,
    /// tracking `<`/`>` nesting so `Vec<(u8, u8)>` is one field type.
    /// Leaves the cursor on the comma (or at the end).
    fn skip_type(&mut self) {
        let mut angle_depth = 0i32;
        while let Some(tt) = self.peek() {
            if let TokenTree::Punct(p) = tt {
                match p.as_char() {
                    '<' => angle_depth += 1,
                    '>' => angle_depth -= 1,
                    ',' if angle_depth == 0 => return,
                    _ => {}
                }
            }
            self.pos += 1;
        }
    }
}

/// Parses `name: Type, ...` field lists from a brace-group body.
fn parse_named_fields(group: TokenStream) -> Result<Vec<String>, String> {
    let mut cursor = Cursor::new(group);
    let mut fields = Vec::new();
    loop {
        cursor.skip_attributes();
        cursor.skip_visibility();
        if cursor.peek().is_none() {
            return Ok(fields);
        }
        fields.push(cursor.expect_ident()?);
        match cursor.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => return Err(format!("expected `:` after field name, found {other:?}")),
        }
        cursor.skip_type();
        match cursor.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => {}
            None => return Ok(fields),
            other => return Err(format!("expected `,` between fields, found {other:?}")),
        }
    }
}

/// Counts top-level comma-separated entries of a parenthesized field list.
fn count_tuple_fields(group: TokenStream) -> usize {
    let mut cursor = Cursor::new(group);
    let mut count = 0;
    loop {
        cursor.skip_attributes();
        cursor.skip_visibility();
        if cursor.peek().is_none() {
            return count;
        }
        count += 1;
        cursor.skip_type();
        if cursor.next().is_none() {
            return count;
        }
    }
}

fn parse_variants(group: TokenStream) -> Result<Vec<Variant>, String> {
    let mut cursor = Cursor::new(group);
    let mut variants = Vec::new();
    loop {
        cursor.skip_attributes();
        if cursor.peek().is_none() {
            return Ok(variants);
        }
        let name = cursor.expect_ident()?;
        let mut fields = None;
        if let Some(TokenTree::Group(g)) = cursor.peek() {
            match g.delimiter() {
                Delimiter::Brace => {
                    fields = Some(parse_named_fields(g.stream())?);
                    cursor.pos += 1;
                }
                Delimiter::Parenthesis => {
                    return Err(format!(
                        "tuple variant `{name}` is not supported by the vendored serde_derive"
                    ));
                }
                _ => {}
            }
        }
        // Skip an explicit discriminant (`= expr`).
        if let Some(TokenTree::Punct(p)) = cursor.peek() {
            if p.as_char() == '=' {
                cursor.pos += 1;
                cursor.skip_type();
            }
        }
        variants.push(Variant { name, fields });
        match cursor.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => {}
            None => return Ok(variants),
            other => return Err(format!("expected `,` between variants, found {other:?}")),
        }
    }
}

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let mut cursor = Cursor::new(input);
    cursor.skip_attributes();
    cursor.skip_visibility();
    let keyword = cursor.expect_ident()?;
    let is_enum = match keyword.as_str() {
        "struct" => false,
        "enum" => true,
        other => return Err(format!("cannot derive for `{other}` items")),
    };
    let name = cursor.expect_ident()?;
    if let Some(TokenTree::Punct(p)) = cursor.peek() {
        if p.as_char() == '<' {
            return Err(format!(
                "generic type `{name}` is not supported by the vendored serde_derive"
            ));
        }
    }
    if is_enum {
        match cursor.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Ok(Item::Enum {
                name,
                variants: parse_variants(g.stream())?,
            }),
            other => Err(format!("expected enum body, found {other:?}")),
        }
    } else {
        match cursor.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Ok(Item::NamedStruct {
                    name,
                    fields: parse_named_fields(g.stream())?,
                })
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                match count_tuple_fields(g.stream()) {
                    1 => Ok(Item::NewtypeStruct { name }),
                    n => Err(format!(
                        "tuple struct `{name}` with {n} fields is not supported \
                         (only newtype structs are)"
                    )),
                }
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Ok(Item::UnitStruct { name }),
            other => Err(format!("expected struct body, found {other:?}")),
        }
    }
}

// ---------------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------------

fn gen_serialize(item: &Item) -> String {
    let (name, body) = match item {
        Item::NamedStruct { name, fields } => {
            let mut body = String::from(
                "let mut fields: ::std::vec::Vec<(::std::string::String, ::serde::Value)> = \
                 ::std::vec::Vec::new();\n",
            );
            for field in fields {
                body.push_str(&format!(
                    "fields.push((::std::string::String::from(\"{field}\"), \
                     ::serde::to_value(&self.{field})));\n"
                ));
            }
            body.push_str("serializer.serialize_value(::serde::Value::Map(fields))");
            (name, body)
        }
        Item::NewtypeStruct { name } => (
            name,
            String::from("serializer.serialize_value(::serde::to_value(&self.0))"),
        ),
        Item::UnitStruct { name } => (
            name,
            String::from("serializer.serialize_value(::serde::Value::Null)"),
        ),
        Item::Enum { name, variants } => {
            let mut arms = String::new();
            for v in variants {
                let vname = &v.name;
                match &v.fields {
                    None => arms.push_str(&format!(
                        "{name}::{vname} => \
                         ::serde::Value::Str(::std::string::String::from(\"{vname}\")),\n"
                    )),
                    Some(fields) => {
                        let bindings = fields.join(", ");
                        let mut pushes = String::new();
                        for field in fields {
                            pushes.push_str(&format!(
                                "fields.push((::std::string::String::from(\"{field}\"), \
                                 ::serde::to_value({field})));\n"
                            ));
                        }
                        arms.push_str(&format!(
                            "{name}::{vname} {{ {bindings} }} => {{\n\
                             let mut fields: ::std::vec::Vec<(::std::string::String, \
                             ::serde::Value)> = ::std::vec::Vec::new();\n\
                             {pushes}\
                             ::serde::Value::Map(::std::vec![(\
                             ::std::string::String::from(\"{vname}\"), \
                             ::serde::Value::Map(fields))])\n\
                             }}\n"
                        ));
                    }
                }
            }
            (
                name,
                format!(
                    "let value = match self {{\n{arms}}};\n\
                     serializer.serialize_value(value)"
                ),
            )
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Serialize for {name} {{\n\
         fn serialize<S: ::serde::Serializer>(&self, serializer: S) \
         -> ::std::result::Result<S::Ok, S::Error> {{\n\
         {body}\n\
         }}\n\
         }}\n"
    )
}

fn gen_field_takes(ty_label: &str, fields: &[String]) -> String {
    let mut takes = String::new();
    for field in fields {
        takes.push_str(&format!(
            "{field}: ::serde::__priv::take_field::<_, D::Error>(\
             &mut map, \"{ty_label}\", \"{field}\")?,\n"
        ));
    }
    takes
}

fn gen_deserialize(item: &Item) -> String {
    let (name, body) = match item {
        Item::NamedStruct { name, fields } => {
            let takes = gen_field_takes(name, fields);
            (
                name,
                format!(
                    "let mut map = ::serde::__priv::expect_map::<D::Error>(\
                     ::serde::Deserializer::take_value(deserializer)?, \"{name}\")?;\n\
                     let _ = &mut map;\n\
                     ::std::result::Result::Ok({name} {{\n{takes}}})"
                ),
            )
        }
        Item::NewtypeStruct { name } => (
            name,
            format!(
                "::std::result::Result::Ok({name}(::serde::de::from_value::<_, D::Error>(\
                 ::serde::Deserializer::take_value(deserializer)?)?))"
            ),
        ),
        Item::UnitStruct { name } => (
            name,
            format!(
                "::serde::Deserializer::take_value(deserializer)?;\n\
                 ::std::result::Result::Ok({name})"
            ),
        ),
        Item::Enum { name, variants } => {
            let unit: Vec<&Variant> = variants.iter().filter(|v| v.fields.is_none()).collect();
            let structy: Vec<&Variant> = variants.iter().filter(|v| v.fields.is_some()).collect();

            let mut arms = String::new();
            if !unit.is_empty() {
                let mut unit_arms = String::new();
                for v in &unit {
                    let vname = &v.name;
                    unit_arms.push_str(&format!(
                        "\"{vname}\" => ::std::result::Result::Ok({name}::{vname}),\n"
                    ));
                }
                arms.push_str(&format!(
                    "::serde::Value::Str(s) => match s.as_str() {{\n\
                     {unit_arms}\
                     other => ::std::result::Result::Err(\
                     <D::Error as ::serde::de::Error>::custom(::std::format!(\
                     \"unknown unit variant `{{}}` of `{name}`\", other))),\n\
                     }},\n"
                ));
            }
            if !structy.is_empty() {
                let mut variant_arms = String::new();
                for v in &structy {
                    let vname = &v.name;
                    let fields = v.fields.as_ref().expect("struct variant");
                    let label = format!("{name}::{vname}");
                    let takes = gen_field_takes(&label, fields);
                    variant_arms.push_str(&format!(
                        "\"{vname}\" => {{\n\
                         let mut map = ::serde::__priv::expect_map::<D::Error>(\
                         inner, \"{label}\")?;\n\
                         let _ = &mut map;\n\
                         ::std::result::Result::Ok({name}::{vname} {{\n{takes}}})\n\
                         }}\n"
                    ));
                }
                arms.push_str(&format!(
                    "::serde::Value::Map(mut entries) => {{\n\
                     let (variant, inner) = match entries.pop() {{\n\
                     ::std::option::Option::Some(kv) if entries.is_empty() => kv,\n\
                     _ => return ::std::result::Result::Err(\
                     <D::Error as ::serde::de::Error>::custom(\
                     \"expected a map with exactly one variant key for `{name}`\")),\n\
                     }};\n\
                     match variant.as_str() {{\n\
                     {variant_arms}\
                     other => ::std::result::Result::Err(\
                     <D::Error as ::serde::de::Error>::custom(::std::format!(\
                     \"unknown struct variant `{{}}` of `{name}`\", other))),\n\
                     }}\n\
                     }},\n"
                ));
            }
            (
                name,
                format!(
                    "match ::serde::Deserializer::take_value(deserializer)? {{\n\
                     {arms}\
                     other => ::std::result::Result::Err(\
                     <D::Error as ::serde::de::Error>::custom(::std::format!(\
                     \"invalid type for enum `{name}`: found {{}}\", other.kind()))),\n\
                     }}"
                ),
            )
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl<'de> ::serde::Deserialize<'de> for {name} {{\n\
         fn deserialize<D: ::serde::Deserializer<'de>>(deserializer: D) \
         -> ::std::result::Result<Self, D::Error> {{\n\
         {body}\n\
         }}\n\
         }}\n"
    )
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    match parse_item(input) {
        Ok(item) => gen_serialize(&item)
            .parse()
            .expect("generated Serialize impl must parse"),
        Err(msg) => compile_error(&msg),
    }
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    match parse_item(input) {
        Ok(item) => gen_deserialize(&item)
            .parse()
            .expect("generated Deserialize impl must parse"),
        Err(msg) => compile_error(&msg),
    }
}

//! Offline stand-in for the `proptest` crate.
//!
//! Provides the macro and strategy surface this workspace uses —
//! `proptest! { #![proptest_config(..)] #[test] fn case(x in strategy) {..} }`,
//! `any::<T>()`, integer ranges, tuples, `prop::collection::vec`, and
//! `prop_map` — driven by a deterministic per-test RNG. Unlike real
//! proptest there is no shrinking: a failing case panics with the
//! generated inputs left to the assertion message. Case seeds derive from
//! the test name, so failures reproduce exactly on re-run.

#![forbid(unsafe_code)]

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

pub mod test_runner {
    /// Configuration accepted by `proptest_config`.
    #[derive(Debug, Clone)]
    pub struct Config {
        pub cases: u32,
    }

    impl Default for Config {
        fn default() -> Self {
            Self { cases: 256 }
        }
    }

    impl Config {
        #[must_use]
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    /// Deterministic xoshiro256** generator seeded from the test name.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        s: [u64; 4],
    }

    impl TestRng {
        #[must_use]
        pub fn for_test(test_name: &str) -> Self {
            // FNV-1a over the test name gives a stable per-test seed.
            let mut hash = 0xcbf2_9ce4_8422_2325u64;
            for byte in test_name.bytes() {
                hash ^= u64::from(byte);
                hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
            }
            Self::from_seed(hash)
        }

        #[must_use]
        pub fn from_seed(seed: u64) -> Self {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for word in &mut s {
                *word = splitmix64(&mut sm);
            }
            if s == [0; 4] {
                s = [0x9e37_79b9_7f4a_7c15, 1, 2, 3];
            }
            Self { s }
        }

        pub fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }

        /// Uniform value in `[0, bound)`.
        pub fn below(&mut self, bound: u64) -> u64 {
            debug_assert!(bound > 0);
            ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
        }
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

use test_runner::TestRng;

/// A generator of values for property tests.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// Strategy adaptor produced by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy that always yields a clone of one value.
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical whole-domain strategy.
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($ty:ty),*) => {$(
        impl Arbitrary for $ty {
            #[allow(clippy::cast_possible_truncation, clippy::cast_possible_wrap)]
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $ty
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        // Finite values only, spanning several magnitudes.
        let mantissa = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        let exp = (rng.below(61) as i32) - 30;
        (mantissa - 0.5) * 2f64.powi(exp)
    }
}

/// The `any::<T>()` entry point.
#[must_use]
pub fn any<A: Arbitrary>() -> Any<A> {
    Any(PhantomData)
}

pub struct Any<A>(PhantomData<A>);

impl<A: Arbitrary> Strategy for Any<A> {
    type Value = A;

    fn generate(&self, rng: &mut TestRng) -> A {
        A::arbitrary(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($ty:ty),*) => {$(
        impl Strategy for Range<$ty> {
            type Value = $ty;

            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
            fn generate(&self, rng: &mut TestRng) -> $ty {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + i128::from(rng.below(span))) as $ty
            }
        }

        impl Strategy for RangeInclusive<$ty> {
            type Value = $ty;

            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
            fn generate(&self, rng: &mut TestRng) -> $ty {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $ty;
                }
                (lo as i128 + i128::from(rng.below(span + 1))) as $ty
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident . $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::{Range, RangeInclusive};

    /// Inclusive length bounds for collection strategies.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(exact: usize) -> Self {
            Self {
                lo: exact,
                hi: exact,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(range: Range<usize>) -> Self {
            assert!(range.start < range.end, "empty size range");
            Self {
                lo: range.start,
                hi: range.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(range: RangeInclusive<usize>) -> Self {
            assert!(range.start() <= range.end(), "empty size range");
            Self {
                lo: *range.start(),
                hi: *range.end(),
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        #[allow(clippy::cast_possible_truncation)]
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64;
            let len = self.size.lo + rng.below(span + 1) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{any, Arbitrary, Just, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};

    /// Mirror of proptest's `prelude::prop` module namespace.
    pub mod prop {
        pub use crate::collection;
    }
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => { assert_eq!($left, $right) };
    ($left:expr, $right:expr, $($fmt:tt)+) => { assert_eq!($left, $right, $($fmt)+) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => { assert_ne!($left, $right) };
    ($left:expr, $right:expr, $($fmt:tt)+) => { assert_ne!($left, $right, $($fmt)+) };
}

/// Declares deterministic property tests.
///
/// Each `#[test] fn name(arg in strategy, ...) { body }` item expands to a
/// standard test that evaluates its strategies once and runs `body` for
/// `config.cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            ($crate::test_runner::Config::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($config:expr)) => {};
    (($config:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat_param in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::Config = $config;
            let strategies = ($($strat,)+);
            let mut rng = $crate::test_runner::TestRng::for_test(::core::stringify!($name));
            for _ in 0..config.cases {
                let ($($arg,)+) =
                    $crate::Strategy::generate(&strategies, &mut rng);
                $body
            }
        }
        $crate::__proptest_items! { ($config) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_hold(x in 3u8..=9, y in 0usize..4, z in -5i32..5) {
            prop_assert!((3..=9).contains(&x));
            prop_assert!(y < 4);
            prop_assert!((-5..5).contains(&z), "z = {}", z);
        }

        #[test]
        fn vec_and_map_compose(
            v in prop::collection::vec((any::<u32>(), 0u8..=32), 0..20)
                .prop_map(|pairs| pairs.len()),
            exact in prop::collection::vec(any::<u8>(), 16),
        ) {
            prop_assert!(v <= 20);
            prop_assert_eq!(exact.len(), 16);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let s = (any::<u64>(), 0u32..100);
        let mut a = crate::test_runner::TestRng::for_test("fixed");
        let mut b = crate::test_runner::TestRng::for_test("fixed");
        for _ in 0..50 {
            assert_eq!(Strategy::generate(&s, &mut a), Strategy::generate(&s, &mut b));
        }
    }
}

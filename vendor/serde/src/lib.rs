//! Offline stand-in for the `serde` crate.
//!
//! The real serde decouples data structures from data formats through a
//! 29-method serializer abstraction. This workspace only ever converts
//! values to and from JSON trees, so the stand-in pins the data model to a
//! single self-describing [`Value`] type: serializers receive a fully built
//! `Value`, deserializers hand one out. The public trait names and
//! signatures match what in-tree code writes against (`Serialize`,
//! `Serializer::collect_seq`, `Deserializer<'de>`, `de::DeserializeOwned`),
//! so sources compile unchanged against either implementation.

#![forbid(unsafe_code)]

use std::fmt::Display;

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// The self-describing data model everything serializes into.
///
/// Integers keep their signedness class so u64-sized values survive a
/// round trip without going through f64.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    I64(i64),
    U64(u64),
    F64(f64),
    Str(String),
    Seq(Vec<Value>),
    /// Insertion-ordered map (JSON object). Keys are strings.
    Map(Vec<(String, Value)>),
}

impl Value {
    /// A short human-readable name for error messages.
    #[must_use]
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "boolean",
            Value::I64(_) | Value::U64(_) | Value::F64(_) => "number",
            Value::Str(_) => "string",
            Value::Seq(_) => "sequence",
            Value::Map(_) => "map",
        }
    }
}

pub mod ser {
    use std::fmt::Display;

    /// Errors produced while serializing.
    pub trait Error: Sized {
        fn custom<T: Display>(msg: T) -> Self;
    }
}

/// A data format that can consume the [`Value`] data model.
pub trait Serializer: Sized {
    type Ok;
    type Error: ser::Error;

    /// Consumes a fully built value tree.
    ///
    /// # Errors
    /// Format-specific (e.g. unrepresentable values).
    fn serialize_value(self, value: Value) -> Result<Self::Ok, Self::Error>;

    /// Serializes a sequence from an iterator, mirroring serde's
    /// `Serializer::collect_seq` convenience.
    ///
    /// # Errors
    /// Propagates `serialize_value` errors.
    fn collect_seq<I>(self, iter: I) -> Result<Self::Ok, Self::Error>
    where
        I: IntoIterator,
        I::Item: Serialize,
    {
        let items = iter.into_iter().map(|item| to_value(&item)).collect();
        self.serialize_value(Value::Seq(items))
    }
}

/// A value that can be converted into the [`Value`] data model.
pub trait Serialize {
    /// # Errors
    /// Propagates serializer errors.
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error>;
}

/// Infallible serializer that just yields the value tree.
struct ValueCollector;

/// Error type for [`ValueCollector`]; never actually constructed by the
/// collector itself, but `ser::Error::custom` must be able to build one.
struct NeverError;

impl ser::Error for NeverError {
    fn custom<T: Display>(_msg: T) -> Self {
        NeverError
    }
}

impl Serializer for ValueCollector {
    type Ok = Value;
    type Error = NeverError;

    fn serialize_value(self, value: Value) -> Result<Value, NeverError> {
        Ok(value)
    }
}

/// Converts any serializable value into a [`Value`] tree.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Value {
    match value.serialize(ValueCollector) {
        Ok(v) => v,
        Err(NeverError) => unreachable!("ValueCollector is infallible"),
    }
}

pub mod de {
    use super::{Deserialize, Deserializer, Value};
    use std::fmt::Display;
    use std::marker::PhantomData;

    /// Errors produced while deserializing.
    pub trait Error: Sized {
        fn custom<T: Display>(msg: T) -> Self;
    }

    /// A value deserializable without borrowing from the input.
    pub trait DeserializeOwned: for<'de> Deserialize<'de> {}
    impl<T> DeserializeOwned for T where T: for<'de> Deserialize<'de> {}

    /// Adapter that lets an owned [`Value`] act as a `Deserializer` with a
    /// caller-chosen error type, so container impls can recurse while
    /// keeping the outer deserializer's error.
    pub struct ValueDeserializer<'de, E> {
        value: Value,
        marker: PhantomData<fn(&'de ()) -> E>,
    }

    impl<'de, E: Error> ValueDeserializer<'de, E> {
        #[must_use]
        pub fn new(value: Value) -> Self {
            Self {
                value,
                marker: PhantomData,
            }
        }
    }

    impl<'de, E: Error> Deserializer<'de> for ValueDeserializer<'de, E> {
        type Error = E;

        fn take_value(self) -> Result<Value, E> {
            Ok(self.value)
        }
    }

    /// Deserializes a `T` out of an owned [`Value`] with error type `E`.
    ///
    /// # Errors
    /// Whatever `T::deserialize` reports.
    pub fn from_value<'de, T: Deserialize<'de>, E: Error>(value: Value) -> Result<T, E> {
        T::deserialize(ValueDeserializer::<E>::new(value))
    }
}

/// A data format that can produce the [`Value`] data model.
pub trait Deserializer<'de>: Sized {
    type Error: de::Error;

    /// Yields the complete input as a value tree.
    ///
    /// # Errors
    /// Format-specific (e.g. syntax errors surfaced lazily).
    fn take_value(self) -> Result<Value, Self::Error>;
}

/// A value constructible from the [`Value`] data model.
pub trait Deserialize<'de>: Sized {
    /// # Errors
    /// Reports type mismatches and invalid data via the deserializer's
    /// error type.
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error>;
}

/// Support routines for `serde_derive`-generated code. Not a public API.
#[doc(hidden)]
pub mod __priv {
    use super::de::{from_value, Error};
    use super::{Deserialize, Value};

    /// Unwraps a `Value::Map`, or reports what was found instead.
    ///
    /// # Errors
    /// When the value is not a map.
    pub fn expect_map<E: Error>(value: Value, ty: &str) -> Result<Vec<(String, Value)>, E> {
        match value {
            Value::Map(entries) => Ok(entries),
            other => Err(E::custom(format!(
                "invalid type for `{ty}`: expected map, found {}",
                other.kind()
            ))),
        }
    }

    /// Removes and deserializes one named field from a struct map.
    ///
    /// # Errors
    /// When the field is missing or its value has the wrong shape.
    pub fn take_field<'de, T: Deserialize<'de>, E: Error>(
        map: &mut Vec<(String, Value)>,
        ty: &str,
        field: &str,
    ) -> Result<T, E> {
        match map.iter().position(|(k, _)| k == field) {
            Some(idx) => from_value(map.swap_remove(idx).1),
            None => Err(E::custom(format!("missing field `{field}` in `{ty}`"))),
        }
    }
}

// ---------------------------------------------------------------------------
// Serialize impls for std types
// ---------------------------------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(serializer)
    }
}

/// A [`Value`] is already in the data model; serializing one is the
/// identity (what lets hand-built JSON trees pass through
/// `serde_json::to_string_pretty` unchanged).
impl Serialize for Value {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_value(self.clone())
    }
}

macro_rules! serialize_as {
    ($variant:ident: $($ty:ty),*) => {$(
        impl Serialize for $ty {
            #[allow(trivial_numeric_casts, clippy::cast_lossless)]
            fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                serializer.serialize_value(Value::$variant((*self).into()))
            }
        }
    )*};
}

serialize_as!(U64: u8, u16, u32, u64);
serialize_as!(I64: i8, i16, i32, i64);
serialize_as!(F64: f32, f64);
serialize_as!(Bool: bool);

impl Serialize for usize {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_value(Value::U64(*self as u64))
    }
}

impl Serialize for isize {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_value(Value::I64(*self as i64))
    }
}

impl Serialize for str {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_value(Value::Str(self.to_string()))
    }
}

impl Serialize for String {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_value(Value::Str(self.clone()))
    }
}

impl Serialize for char {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_value(Value::Str(self.to_string()))
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        match self {
            Some(inner) => serializer.serialize_value(to_value(inner)),
            None => serializer.serialize_value(Value::Null),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.collect_seq(self.iter())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.collect_seq(self.iter())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.collect_seq(self.iter())
    }
}

macro_rules! serialize_tuple {
    ($(($($name:ident . $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                serializer.serialize_value(Value::Seq(vec![$(to_value(&self.$idx)),+]))
            }
        }
    )*};
}

serialize_tuple! {
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
}

// ---------------------------------------------------------------------------
// Deserialize impls for std types
// ---------------------------------------------------------------------------

use de::Error as DeError;

macro_rules! deserialize_uint {
    ($($ty:ty),*) => {$(
        impl<'de> Deserialize<'de> for $ty {
            fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
                let value = deserializer.take_value()?;
                let wide: u64 = match value {
                    Value::U64(n) => n,
                    Value::I64(n) if n >= 0 => n as u64,
                    #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
                    Value::F64(f) if f >= 0.0 && f.fract() == 0.0 && f <= u64::MAX as f64 => {
                        f as u64
                    }
                    other => {
                        return Err(D::Error::custom(format!(
                            "invalid type: expected unsigned integer, found {}",
                            other.kind()
                        )))
                    }
                };
                <$ty>::try_from(wide).map_err(|_| {
                    D::Error::custom(format!(
                        "integer {wide} out of range for {}",
                        stringify!($ty)
                    ))
                })
            }
        }
    )*};
}

deserialize_uint!(u8, u16, u32, u64, usize);

macro_rules! deserialize_int {
    ($($ty:ty),*) => {$(
        impl<'de> Deserialize<'de> for $ty {
            fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
                let value = deserializer.take_value()?;
                let wide: i64 = match value {
                    Value::I64(n) => n,
                    Value::U64(n) => i64::try_from(n).map_err(|_| {
                        D::Error::custom(format!("integer {n} out of range for i64"))
                    })?,
                    #[allow(clippy::cast_possible_truncation)]
                    Value::F64(f) if f.fract() == 0.0 && f.abs() <= i64::MAX as f64 => f as i64,
                    other => {
                        return Err(D::Error::custom(format!(
                            "invalid type: expected integer, found {}",
                            other.kind()
                        )))
                    }
                };
                <$ty>::try_from(wide).map_err(|_| {
                    D::Error::custom(format!(
                        "integer {wide} out of range for {}",
                        stringify!($ty)
                    ))
                })
            }
        }
    )*};
}

deserialize_int!(i8, i16, i32, i64, isize);

impl<'de> Deserialize<'de> for f64 {
    #[allow(clippy::cast_precision_loss)]
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.take_value()? {
            Value::F64(f) => Ok(f),
            Value::U64(n) => Ok(n as f64),
            Value::I64(n) => Ok(n as f64),
            other => Err(D::Error::custom(format!(
                "invalid type: expected number, found {}",
                other.kind()
            ))),
        }
    }
}

impl<'de> Deserialize<'de> for f32 {
    #[allow(clippy::cast_possible_truncation)]
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        f64::deserialize(deserializer).map(|f| f as f32)
    }
}

impl<'de> Deserialize<'de> for bool {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.take_value()? {
            Value::Bool(b) => Ok(b),
            other => Err(D::Error::custom(format!(
                "invalid type: expected boolean, found {}",
                other.kind()
            ))),
        }
    }
}

impl<'de> Deserialize<'de> for String {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.take_value()? {
            Value::Str(s) => Ok(s),
            other => Err(D::Error::custom(format!(
                "invalid type: expected string, found {}",
                other.kind()
            ))),
        }
    }
}

impl<'de> Deserialize<'de> for char {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let s = String::deserialize(deserializer)?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(D::Error::custom("expected a single-character string")),
        }
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.take_value()? {
            Value::Null => Ok(None),
            value => de::from_value(value).map(Some),
        }
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.take_value()? {
            Value::Seq(items) => items.into_iter().map(de::from_value).collect(),
            other => Err(D::Error::custom(format!(
                "invalid type: expected sequence, found {}",
                other.kind()
            ))),
        }
    }
}

macro_rules! deserialize_tuple {
    ($(($len:literal: $($name:ident),+))*) => {$(
        impl<'de, $($name: Deserialize<'de>),+> Deserialize<'de> for ($($name,)+) {
            fn deserialize<De: Deserializer<'de>>(deserializer: De) -> Result<Self, De::Error> {
                match deserializer.take_value()? {
                    Value::Seq(items) if items.len() == $len => {
                        let mut iter = items.into_iter();
                        Ok(($({
                            let item: $name = de::from_value(
                                iter.next().expect("length checked"),
                            )?;
                            item
                        },)+))
                    }
                    Value::Seq(items) => Err(De::Error::custom(format!(
                        "expected a sequence of length {}, found length {}",
                        $len,
                        items.len()
                    ))),
                    other => Err(De::Error::custom(format!(
                        "invalid type: expected sequence, found {}",
                        other.kind()
                    ))),
                }
            }
        }
    )*};
}

deserialize_tuple! {
    (2: A, B)
    (3: A, B, C)
    (4: A, B, C, D)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn to_value_primitives() {
        assert_eq!(to_value(&42u32), Value::U64(42));
        assert_eq!(to_value(&-3i64), Value::I64(-3));
        assert_eq!(to_value(&1.5f64), Value::F64(1.5));
        assert_eq!(to_value(&true), Value::Bool(true));
        assert_eq!(to_value("hi"), Value::Str("hi".into()));
        assert_eq!(to_value(&None::<u8>), Value::Null);
        assert_eq!(
            to_value(&vec![1u8, 2]),
            Value::Seq(vec![Value::U64(1), Value::U64(2)])
        );
    }

    #[derive(Debug)]
    struct TestError(String);
    impl de::Error for TestError {
        fn custom<T: Display>(msg: T) -> Self {
            TestError(msg.to_string())
        }
    }

    #[test]
    fn from_value_round_trips() {
        let v = to_value(&vec![(1u8, 2.5f64), (3, 4.0)]);
        let back: Vec<(u8, f64)> = de::from_value::<_, TestError>(v).unwrap();
        assert_eq!(back, vec![(1, 2.5), (3, 4.0)]);

        let opt: Option<Vec<f64>> = de::from_value::<_, TestError>(Value::Null).unwrap();
        assert_eq!(opt, None);

        let err = de::from_value::<u8, TestError>(Value::U64(300)).unwrap_err();
        assert!(err.0.contains("out of range"), "{}", err.0);
    }
}

//! Offline stand-in for the `crossbeam` crate, covering the scoped-thread
//! API (`crossbeam::thread::scope`) on top of `std::thread::scope` and
//! the FIFO channel API (`crossbeam::channel`) on top of
//! `std::sync::mpsc`.
//!
//! Semantics preserved from crossbeam:
//! - `scope` returns `Err` (instead of panicking) when a spawned thread
//!   panics and the panic would otherwise propagate out of the scope.
//! - spawn closures receive a scope handle so nested spawns are possible.
//! - channels are FIFO per sender (the order-preserving property the
//!   lookup service relies on); `bounded(cap)` blocks producers at
//!   capacity; receivers disconnect cleanly when all senders drop.

pub mod thread {
    use std::panic::{catch_unwind, AssertUnwindSafe};

    /// The payload of a panicked scoped thread.
    pub type Result<T> = std::result::Result<T, Box<dyn std::any::Any + Send + 'static>>;

    /// Handle for spawning threads inside a [`scope`] call.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Clone for Scope<'scope, 'env> {
        fn clone(&self) -> Self {
            *self
        }
    }

    impl<'scope, 'env> Copy for Scope<'scope, 'env> {}

    /// Handle to join a single scoped thread.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<T> ScopedJoinHandle<'_, T> {
        /// Waits for the thread to finish, returning its result.
        ///
        /// # Errors
        /// Returns the panic payload if the thread panicked.
        pub fn join(self) -> Result<T> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread. The closure receives the scope handle,
        /// mirroring crossbeam's signature (callers commonly write
        /// `scope.spawn(move |_| ...)`).
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let handle = *self;
            ScopedJoinHandle {
                inner: self.inner.spawn(move || f(&handle)),
            }
        }
    }

    /// Creates a scope in which threads borrowing from the environment can
    /// be spawned; all spawned threads are joined before this returns.
    ///
    /// # Errors
    /// Returns `Err` with the panic payload if the closure or any
    /// unjoined spawned thread panicked.
    pub fn scope<'env, F, R>(f: F) -> Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        catch_unwind(AssertUnwindSafe(|| {
            std::thread::scope(|s| f(&Scope { inner: s }))
        }))
    }
}

pub use thread::scope;

pub mod channel {
    //! FIFO channels mirroring `crossbeam::channel`'s construction and
    //! blocking semantics, backed by `std::sync::mpsc`.

    use std::sync::mpsc;

    pub use std::sync::mpsc::{RecvError, SendError, TryRecvError, TrySendError};

    /// The sending half of a channel. Clonable (the underlying std
    /// channel is MPSC, a superset of what crossbeam guarantees).
    pub struct Sender<T>(SenderKind<T>);

    enum SenderKind<T> {
        Bounded(mpsc::SyncSender<T>),
        Unbounded(mpsc::Sender<T>),
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender(match &self.0 {
                SenderKind::Bounded(s) => SenderKind::Bounded(s.clone()),
                SenderKind::Unbounded(s) => SenderKind::Unbounded(s.clone()),
            })
        }
    }

    impl<T> Sender<T> {
        /// Sends a message, blocking while a bounded channel is full.
        ///
        /// # Errors
        /// Returns the message back if the receiver disconnected.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            match &self.0 {
                SenderKind::Bounded(s) => s.send(msg),
                SenderKind::Unbounded(s) => s.send(msg),
            }
        }

        /// Non-blocking send.
        ///
        /// # Errors
        /// `Full` when a bounded channel is at capacity (unbounded
        /// channels are never full), `Disconnected` when the receiver
        /// dropped; the message is returned either way.
        pub fn try_send(&self, msg: T) -> Result<(), TrySendError<T>> {
            match &self.0 {
                SenderKind::Bounded(s) => s.try_send(msg),
                SenderKind::Unbounded(s) => s
                    .send(msg)
                    .map_err(|SendError(msg)| TrySendError::Disconnected(msg)),
            }
        }
    }

    /// The receiving half of a channel.
    pub struct Receiver<T>(mpsc::Receiver<T>);

    impl<T> Receiver<T> {
        /// Blocks until a message arrives.
        ///
        /// # Errors
        /// Fails once the channel is empty and all senders dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.0.recv()
        }

        /// Non-blocking receive.
        ///
        /// # Errors
        /// `Empty` when no message is ready, `Disconnected` when the
        /// channel is drained and all senders dropped.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.0.try_recv()
        }

        /// Blocking iterator over incoming messages; ends when all
        /// senders disconnect.
        pub fn iter(&self) -> impl Iterator<Item = T> + '_ {
            self.0.iter()
        }
    }

    /// Creates a bounded FIFO channel: sends block once `cap` messages
    /// are queued (`cap = 0` degenerates to capacity 1 here; std has no
    /// rendezvous-free zero-capacity mode and the service never asks for
    /// one).
    #[must_use]
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::sync_channel(cap.max(1));
        (Sender(SenderKind::Bounded(tx)), Receiver(rx))
    }

    /// Creates an unbounded FIFO channel.
    #[must_use]
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender(SenderKind::Unbounded(tx)), Receiver(rx))
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scope_joins_and_collects() {
        let total = std::sync::Mutex::new(0u64);
        let out = crate::thread::scope(|scope| {
            for i in 0..8u64 {
                let total = &total;
                scope.spawn(move |_| {
                    *total.lock().unwrap() += i;
                });
            }
            42
        })
        .expect("no panics");
        assert_eq!(out, 42);
        assert_eq!(*total.lock().unwrap(), 28);
    }

    #[test]
    fn scope_reports_child_panic_as_err() {
        let res = crate::thread::scope(|scope| {
            scope.spawn(|_| panic!("boom"));
        });
        assert!(res.is_err());
    }

    #[test]
    fn channels_preserve_fifo_order_and_disconnect() {
        let (tx, rx) = crate::channel::bounded::<u32>(4);
        let producer = std::thread::spawn(move || {
            for i in 0..100 {
                tx.send(i).unwrap();
            }
        });
        let got: Vec<u32> = rx.iter().collect();
        producer.join().unwrap();
        assert_eq!(got, (0..100).collect::<Vec<_>>());
        assert!(rx.recv().is_err(), "sender dropped → disconnected");

        let (tx, rx) = crate::channel::unbounded::<u32>();
        assert!(matches!(
            rx.try_recv(),
            Err(crate::channel::TryRecvError::Empty)
        ));
        tx.send(7).unwrap();
        assert_eq!(rx.try_recv().unwrap(), 7);
    }

    #[test]
    fn try_send_reports_full_and_disconnected() {
        let (tx, rx) = crate::channel::bounded::<u32>(1);
        tx.try_send(1).unwrap();
        assert!(matches!(
            tx.try_send(2),
            Err(crate::channel::TrySendError::Full(2))
        ));
        drop(rx);
        assert!(matches!(
            tx.try_send(3),
            Err(crate::channel::TrySendError::Disconnected(3))
        ));

        let (tx, rx) = crate::channel::unbounded::<u32>();
        tx.try_send(9).unwrap();
        assert_eq!(rx.try_recv().unwrap(), 9);
    }

    #[test]
    fn join_returns_value() {
        let res = crate::thread::scope(|scope| {
            let h = scope.spawn(|_| 7u32);
            h.join().expect("no panic")
        })
        .expect("scope ok");
        assert_eq!(res, 7);
    }
}

//! Offline stand-in for the `crossbeam` crate, covering the scoped-thread
//! API (`crossbeam::thread::scope`) on top of `std::thread::scope`.
//!
//! Semantics preserved from crossbeam:
//! - `scope` returns `Err` (instead of panicking) when a spawned thread
//!   panics and the panic would otherwise propagate out of the scope.
//! - spawn closures receive a scope handle so nested spawns are possible.

pub mod thread {
    use std::panic::{catch_unwind, AssertUnwindSafe};

    /// The payload of a panicked scoped thread.
    pub type Result<T> = std::result::Result<T, Box<dyn std::any::Any + Send + 'static>>;

    /// Handle for spawning threads inside a [`scope`] call.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Clone for Scope<'scope, 'env> {
        fn clone(&self) -> Self {
            *self
        }
    }

    impl<'scope, 'env> Copy for Scope<'scope, 'env> {}

    /// Handle to join a single scoped thread.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<T> ScopedJoinHandle<'_, T> {
        /// Waits for the thread to finish, returning its result.
        ///
        /// # Errors
        /// Returns the panic payload if the thread panicked.
        pub fn join(self) -> Result<T> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread. The closure receives the scope handle,
        /// mirroring crossbeam's signature (callers commonly write
        /// `scope.spawn(move |_| ...)`).
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let handle = *self;
            ScopedJoinHandle {
                inner: self.inner.spawn(move || f(&handle)),
            }
        }
    }

    /// Creates a scope in which threads borrowing from the environment can
    /// be spawned; all spawned threads are joined before this returns.
    ///
    /// # Errors
    /// Returns `Err` with the panic payload if the closure or any
    /// unjoined spawned thread panicked.
    pub fn scope<'env, F, R>(f: F) -> Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        catch_unwind(AssertUnwindSafe(|| {
            std::thread::scope(|s| f(&Scope { inner: s }))
        }))
    }
}

pub use thread::scope;

#[cfg(test)]
mod tests {
    #[test]
    fn scope_joins_and_collects() {
        let total = std::sync::Mutex::new(0u64);
        let out = crate::thread::scope(|scope| {
            for i in 0..8u64 {
                let total = &total;
                scope.spawn(move |_| {
                    *total.lock().unwrap() += i;
                });
            }
            42
        })
        .expect("no panics");
        assert_eq!(out, 42);
        assert_eq!(*total.lock().unwrap(), 28);
    }

    #[test]
    fn scope_reports_child_panic_as_err() {
        let res = crate::thread::scope(|scope| {
            scope.spawn(|_| panic!("boom"));
        });
        assert!(res.is_err());
    }

    #[test]
    fn join_returns_value() {
        let res = crate::thread::scope(|scope| {
            let h = scope.spawn(|_| 7u32);
            h.join().expect("no panic")
        })
        .expect("scope ok");
        assert_eq!(res, 7);
    }
}

//! Offline stand-in for `serde_json`: serializes the vendored serde
//! [`Value`] model to JSON text and parses JSON text back.
//!
//! Numbers keep their integer/float class on both paths (integers are
//! emitted without a decimal point and parsed into `I64`/`U64`; anything
//! with a fraction or exponent becomes `F64` printed via Rust's
//! shortest-round-trip formatting), so `u64` counters and `f64` metrics
//! both survive a round trip exactly.

#![forbid(unsafe_code)]

use serde::de::DeserializeOwned;
use serde::{Deserializer, Serialize, Serializer, Value};
use std::fmt::{self, Display, Write as _};

/// Error raised by JSON serialization or parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    message: String,
}

impl Error {
    fn new(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
        }
    }
}

impl Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for Error {}

impl serde::ser::Error for Error {
    fn custom<T: Display>(msg: T) -> Self {
        Error::new(msg.to_string())
    }
}

impl serde::de::Error for Error {
    fn custom<T: Display>(msg: T) -> Self {
        Error::new(msg.to_string())
    }
}

/// # Errors
/// Returns an error if the value contains a non-finite float.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &serde::to_value(value), None, 0)?;
    Ok(out)
}

/// # Errors
/// Returns an error if the value contains a non-finite float.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &serde::to_value(value), Some(2), 0)?;
    Ok(out)
}

/// # Errors
/// Returns an error on malformed JSON or a shape mismatch with `T`.
pub fn from_str<T: DeserializeOwned>(input: &str) -> Result<T, Error> {
    let value = parse(input)?;
    T::deserialize(JsonDeserializer { value })
}

struct JsonDeserializer {
    value: Value,
}

impl<'de> Deserializer<'de> for JsonDeserializer {
    type Error = Error;

    fn take_value(self) -> Result<Value, Error> {
        Ok(self.value)
    }
}

/// Serializer wrapper so `serde_json` itself satisfies the `Serializer`
/// trait contract (used indirectly through `serde::to_value`).
pub struct JsonSerializer;

impl Serializer for JsonSerializer {
    type Ok = String;
    type Error = Error;

    fn serialize_value(self, value: Value) -> Result<String, Error> {
        let mut out = String::new();
        write_value(&mut out, &value, None, 0)?;
        Ok(out)
    }
}

// ---------------------------------------------------------------------------
// Printing
// ---------------------------------------------------------------------------

fn write_value(
    out: &mut String,
    value: &Value,
    indent: Option<usize>,
    depth: usize,
) -> Result<(), Error> {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::I64(n) => {
            let _ = write!(out, "{n}");
        }
        Value::U64(n) => {
            let _ = write!(out, "{n}");
        }
        Value::F64(f) => {
            if !f.is_finite() {
                return Err(Error::new("JSON cannot represent a non-finite number"));
            }
            // Rust's shortest-round-trip Display prints whole floats
            // without a fractional part; add ".0" so the value parses
            // back as a float, matching serde_json.
            let text = format!("{f}");
            out.push_str(&text);
            if !text.contains(['.', 'e', 'E']) {
                out.push_str(".0");
            }
        }
        Value::Str(s) => write_string(out, s),
        Value::Seq(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return Ok(());
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1)?;
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Map(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return Ok(());
            }
            out.push('{');
            for (i, (key, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(out, key);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, depth + 1)?;
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
    Ok(())
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

/// Parses a complete JSON document into a [`Value`].
///
/// # Errors
/// Reports the byte offset of the first syntax error.
pub fn parse(input: &str) -> Result<Value, Error> {
    let mut parser = Parser {
        bytes: input.as_bytes(),
        input,
        pos: 0,
    };
    parser.skip_whitespace();
    let value = parser.parse_value(0)?;
    parser.skip_whitespace();
    if parser.pos != parser.bytes.len() {
        return Err(parser.error("trailing characters after JSON document"));
    }
    Ok(value)
}

const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    input: &'a str,
    pos: usize,
}

impl Parser<'_> {
    fn error(&self, msg: &str) -> Error {
        Error::new(format!("{msg} at byte {}", self.pos))
    }

    fn skip_whitespace(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn eat(&mut self, token: &str) -> bool {
        if self.bytes[self.pos..].starts_with(token.as_bytes()) {
            self.pos += token.len();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.bytes.get(self.pos) == Some(&b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(&format!("expected `{}`", b as char)))
        }
    }

    fn parse_value(&mut self, depth: usize) -> Result<Value, Error> {
        if depth > MAX_DEPTH {
            return Err(self.error("recursion limit exceeded"));
        }
        match self.bytes.get(self.pos) {
            None => Err(self.error("unexpected end of input")),
            Some(b'n') => {
                if self.eat("null") {
                    Ok(Value::Null)
                } else {
                    Err(self.error("invalid literal"))
                }
            }
            Some(b't') => {
                if self.eat("true") {
                    Ok(Value::Bool(true))
                } else {
                    Err(self.error("invalid literal"))
                }
            }
            Some(b'f') => {
                if self.eat("false") {
                    Ok(Value::Bool(false))
                } else {
                    Err(self.error("invalid literal"))
                }
            }
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_whitespace();
                if self.bytes.get(self.pos) == Some(&b']') {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                loop {
                    self.skip_whitespace();
                    items.push(self.parse_value(depth + 1)?);
                    self.skip_whitespace();
                    match self.bytes.get(self.pos) {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Seq(items));
                        }
                        _ => return Err(self.error("expected `,` or `]` in array")),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut entries = Vec::new();
                self.skip_whitespace();
                if self.bytes.get(self.pos) == Some(&b'}') {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                loop {
                    self.skip_whitespace();
                    let key = self.parse_string()?;
                    self.skip_whitespace();
                    self.expect(b':')?;
                    self.skip_whitespace();
                    let value = self.parse_value(depth + 1)?;
                    entries.push((key, value));
                    self.skip_whitespace();
                    match self.bytes.get(self.pos) {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Map(entries));
                        }
                        _ => return Err(self.error("expected `,` or `}` in object")),
                    }
                }
            }
            Some(_) => self.parse_number(),
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: advance over the unescaped run.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(&self.input[start..self.pos]);
            match self.bytes.get(self.pos) {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let escape = self.bytes.get(self.pos).copied();
                    self.pos += 1;
                    match escape {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{08}'),
                        Some(b'f') => out.push('\u{0c}'),
                        Some(b'u') => {
                            let code = self.parse_hex4()?;
                            let c = if (0xD800..0xDC00).contains(&code) {
                                // High surrogate: require the low half.
                                if !self.eat("\\u") {
                                    return Err(self.error("unpaired surrogate"));
                                }
                                let low = self.parse_hex4()?;
                                if !(0xDC00..0xE000).contains(&low) {
                                    return Err(self.error("invalid low surrogate"));
                                }
                                let combined =
                                    0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
                                char::from_u32(combined)
                            } else {
                                char::from_u32(code)
                            };
                            match c {
                                Some(c) => out.push(c),
                                None => return Err(self.error("invalid unicode escape")),
                            }
                        }
                        _ => return Err(self.error("invalid escape sequence")),
                    }
                }
                Some(_) => return Err(self.error("control character in string")),
                None => return Err(self.error("unterminated string")),
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.error("truncated unicode escape"));
        }
        let hex = &self.input[self.pos..end];
        let code =
            u32::from_str_radix(hex, 16).map_err(|_| self.error("invalid unicode escape"))?;
        self.pos = end;
        Ok(code)
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = &self.input[start..self.pos];
        if text.is_empty() || text == "-" {
            return Err(self.error("invalid number"));
        }
        if !is_float {
            if text.starts_with('-') {
                if let Ok(n) = text.parse::<i64>() {
                    return Ok(Value::I64(n));
                }
            } else if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::U64(n));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| Error::new(format!("invalid number `{text}` at byte {start}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_scalars_and_containers() {
        let doc = Value::Map(vec![
            ("a".into(), Value::U64(u64::MAX)),
            ("b".into(), Value::I64(-7)),
            ("c".into(), Value::F64(0.1)),
            ("d".into(), Value::F64(2.0)),
            (
                "e".into(),
                Value::Seq(vec![Value::Null, Value::Bool(true), Value::Str("x\"y\n".into())]),
            ),
            ("f".into(), Value::Map(vec![])),
        ]);
        for pretty in [false, true] {
            let mut text = String::new();
            write_value(&mut text, &doc, if pretty { Some(2) } else { None }, 0).unwrap();
            assert_eq!(parse(&text).unwrap(), doc, "pretty={pretty}: {text}");
        }
    }

    #[test]
    fn typed_round_trip() {
        let v = vec![1.5f64, 2.0, -0.25];
        let text = to_string(&v).unwrap();
        let back: Vec<f64> = from_str(&text).unwrap();
        assert_eq!(back, v);

        let pairs: Vec<(u32, String)> = vec![(1, "a".into()), (2, "b".into())];
        let back: Vec<(u32, String)> = from_str(&to_string_pretty(&pairs).unwrap()).unwrap();
        assert_eq!(back, pairs);
    }

    #[test]
    fn whole_floats_stay_floats() {
        let text = to_string(&vec![2.0f64]).unwrap();
        assert_eq!(text, "[2.0]");
        let back: Vec<f64> = from_str(&text).unwrap();
        assert_eq!(back, vec![2.0]);
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in ["", "{", "[1,", "\"abc", "{\"a\":}", "01x", "nul", "[1] 2"] {
            assert!(parse(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn unicode_escapes() {
        let parsed = parse(r#""é😀""#).unwrap();
        assert_eq!(parsed, Value::Str("é😀".into()));
    }
}

//! Offline stand-in for the `rand` crate (0.8-style API surface).
//!
//! Implements exactly what this workspace uses: `Rng::{gen, gen_bool,
//! gen_range}`, `SeedableRng::seed_from_u64` and `rngs::SmallRng`
//! (xoshiro256** seeded through SplitMix64, the same construction rand 0.8
//! uses on 64-bit targets). Streams are deterministic per seed but are not
//! bit-compatible with upstream rand — all in-tree consumers only rely on
//! determinism, not on a specific stream.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Low-level source of randomness.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// A type that can be sampled uniformly from an `RngCore`
/// (the stand-in for `Standard: Distribution<T>`).
pub trait UniformSample: Sized {
    fn sample_from<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_uniform_int {
    ($($ty:ty),*) => {$(
        impl UniformSample for $ty {
            #[allow(clippy::cast_possible_truncation, clippy::cast_lossless)]
            fn sample_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $ty
            }
        }
    )*};
}

impl_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl UniformSample for bool {
    fn sample_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl UniformSample for f64 {
    fn sample_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng.next_u64())
    }
}

impl UniformSample for f32 {
    #[allow(clippy::cast_possible_truncation)]
    fn sample_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng.next_u64()) as f32
    }
}

/// Uniform float in `[0, 1)` from the top 53 bits of a word.
fn unit_f64(word: u64) -> f64 {
    (word >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// A type with a uniform sampler over half-open and closed intervals.
///
/// The single blanket `SampleRange` impl below keys range inference off
/// this trait, matching rand's structure: `gen_range(0..2)` unifies the
/// untyped literal with the surrounding expression's type instead of
/// falling back to `i32`.
pub trait SampleUniform: Sized + PartialOrd {
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($ty:ty => $wide:ty),*) => {$(
        impl SampleUniform for $ty {
            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                let span = (hi as $wide).wrapping_sub(lo as $wide) as u64;
                lo.wrapping_add(bounded_u64(rng, span) as $ty)
            }

            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                let span = (hi as $wide).wrapping_sub(lo as $wide) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $ty;
                }
                lo.wrapping_add(bounded_u64(rng, span + 1) as $ty)
            }
        }
    )*};
}

impl_sample_uniform_int!(
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
    i8 => i64, i16 => i64, i32 => i64, i64 => i64, isize => i64
);

impl SampleUniform for f64 {
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        lo + (hi - lo) * unit_f64(rng.next_u64())
    }

    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        lo + (hi - lo) * unit_f64(rng.next_u64())
    }
}

impl SampleUniform for f32 {
    #[allow(clippy::cast_possible_truncation)]
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        lo + (hi - lo) * unit_f64(rng.next_u64()) as f32
    }

    #[allow(clippy::cast_possible_truncation)]
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        lo + (hi - lo) * unit_f64(rng.next_u64()) as f32
    }
}

/// A range that `Rng::gen_range` can sample from.
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample empty range");
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "cannot sample empty range");
        T::sample_inclusive(rng, lo, hi)
    }
}

/// Uniform value in `[0, bound)` by widening multiply (Lemire's method
/// without the rejection step; the bias is < 2^-32 for all in-tree bounds).
fn bounded_u64<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    ((u128::from(rng.next_u64()) * u128::from(bound)) >> 64) as u64
}

/// User-facing random-value methods, blanket-implemented for every source.
pub trait Rng: RngCore {
    fn gen<T: UniformSample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_from(self)
    }

    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seedable generators (only the `seed_from_u64` entry point is provided).
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// SplitMix64: expands a 64-bit seed into the xoshiro state.
    pub(crate) fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// A small, fast, non-cryptographic generator (xoshiro256**).
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for word in &mut s {
                *word = splitmix64(&mut sm);
            }
            // xoshiro must not start from the all-zero state.
            if s == [0; 4] {
                s = [0x9e37_79b9_7f4a_7c15, 1, 2, 3];
            }
            Self { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1]
                .wrapping_mul(5)
                .rotate_left(7)
                .wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    /// The standard generator; aliased to the same engine in this stand-in.
    pub type StdRng = SmallRng;
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = SmallRng::seed_from_u64(8);
        let first: Vec<u64> = (0..4).map(|_| c.gen()).collect();
        let again: Vec<u64> = (0..4).map(|_| a.gen()).collect();
        assert_ne!(first, again);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(42);
        for _ in 0..10_000 {
            let v = rng.gen_range(0..64u32);
            assert!(v < 64);
            let w = rng.gen_range(16..=24u8);
            assert!((16..=24).contains(&w));
            let f = rng.gen_range(0.0..1.0);
            assert!((0.0..1.0).contains(&f));
            let u = rng.gen_range(0usize..5);
            assert!(u < 5);
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = SmallRng::seed_from_u64(1);
        let hits = (0..20_000).filter(|_| rng.gen_bool(0.25)).count();
        let frac = hits as f64 / 20_000.0;
        assert!((frac - 0.25).abs() < 0.02, "frac {frac}");
    }

    #[test]
    fn full_width_ranges_do_not_overflow() {
        let mut rng = SmallRng::seed_from_u64(3);
        let _ = rng.gen_range(0u64..=u64::MAX);
        let _ = rng.gen_range(i64::MIN..=i64::MAX);
        let v = rng.gen_range(-5i32..5);
        assert!((-5..5).contains(&v));
    }
}
